"""Trace tier: loop-spanning superblocks with cross-call chaining.

The blockjit tier (PR 4) fuses instructions into basic blocks but still
pays a driver round-trip — a list index, a tuple unpack and two window
checks — per retired *block*, and every call ends its block, so
call-heavy code re-enters the dispatch loop on both sides of every
activation.  This module climbs the next rung, in the spirit of trace
compilation and lazy basic-block versioning (Chevalier-Boisvert &
Feeley, VEE 2015): hot block *chains* are compiled into single Python
closures (traces) that

* run many blocks — across loop back-edges and **across calls** — per
  driver dispatch, with the cycle clock spilled/reloaded around each
  call exactly like the fused call blocks do,
* hoist the driver's per-block sample-window / forced-trip checks into
  one conservative check per call-free *segment* (the sum of the
  segment's block costs plus a worst-case branch-penalty allowance),
  side-exiting back to the block table with the entry state whenever
  per-block fidelity might be required, and
* reuse the typeflow facts (PR 6) already established by predecessor
  blocks in the chain, so a trace does not re-evaluate an entry guard
  its dominating chain prefix proved and did not kill.

Fidelity discipline is unchanged from the block tier: the fast path may
*bail out*, never diverge.  Per-block cycle adds are kept as individual
float additions (the bit-exact accounting contract between the step and
block tiers), per-block statistics prologues stay in place so a cold
side exit leaves counters exactly where the block driver would have,
and every side exit returns ``(block_id, entry_cycles)`` so the driver
re-dispatches the block through its ordinary fused/stepped routing.

Chain formation is counting-based, not recording-based: the trace
driver counts retired ``(src_bid, dst_bid)`` edges (plus activation
entries) for a fixed budget of events, then freezes and promotes —
chains follow the hottest successor from each hot back-edge head and,
for call-heavy code with no intra-body loops, from the entry block.
Recording would interleave the bids of recursive inner activations;
counters aggregate them harmlessly.

Sentinel integration (PR 5): every call-free trace also compiles a
``once`` variant (single pass, generic bodies, no demotion/audit
checks) plus a stepped twin that replays the chain through the blocks'
stepped closures; :meth:`repro.supervise.sentinel.DivergenceSentinel.
audit_trace` shadow-executes both from the same entry state and demotes
the whole table — blocks *and* traces — on any mismatch.  Traces whose
chain spans a call are not auditable (same rule as call blocks), and a
demoted or storm-disabled code object drops its traces with its blocks.

Degradation ladder (PR 8, :mod:`repro.machine.continuations`): the
trace tier only runs at the ladder's full rung — the executor routes
``code._tier_rung >= 1`` ("no-trace" and below) straight to the block
or step driver, and a rung descent drops ``code._traces`` with the
blocks, so a storming function sheds this tier first instead of losing
everything at once.

``REPRO_TRACEJIT=0`` / ``EngineConfig(tracejit=False)`` falls back to
the two-tier block executor.  ``REPRO_TRACEJIT_BUDGET`` (edge events
before promotion), ``REPRO_TRACEJIT_HOT`` (edge heat threshold) and
``REPRO_TRACEJIT_ENTRY`` (activation count that arms an entry-anchored
trace) tune formation; tests pin them small so traces form in smoke
runs.
"""

from __future__ import annotations

import os
from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

from ..isa.semantics import fused_block_edges
from ..jit.codegen import THIS_REG
from .blockjit import (
    _COMPILED_SOURCES,
    K_B,
    K_BCC,
    K_CALL_DYN,
    K_CALL_JS,
    K_CALL_RT,
    K_DEOPT,
    K_JSLDRSMI,
    K_RET,
    _BlockCompiler,
    compile_blocks,
)

if TYPE_CHECKING:
    from ..jit.codegen import CodeObject
    from .blockjit import BlockTable
    from .executor import Executor

_CALL_KINDS = frozenset({K_CALL_JS, K_CALL_DYN, K_CALL_RT})

#: hard caps, well above anything the suite forms: a chain longer than
#: MAX_CHAIN blocks stops growing; a table keeps at most MAX_TRACES.
MAX_CHAIN = 24
MAX_TRACES = 10


def default_tracejit() -> bool:
    """Process-wide default for the trace tier (REPRO_TRACEJIT)."""
    return os.environ.get("REPRO_TRACEJIT", "1").lower() not in (
        "0", "false", "off", "no",
    )


def _env_int(name: str, default: int) -> int:
    try:
        value = int(os.environ.get(name, ""))
    except ValueError:
        return default
    return value if value > 0 else default


class _ChainAbort(Exception):
    """A candidate chain cannot be compiled faithfully; skip it."""


class TraceInfo:
    """One compiled trace: the hot chain plus its closure variants."""

    __slots__ = ("head", "chain", "cyclic", "looping", "once",
                 "stepped_once", "auditable", "bound", "n_calls",
                 "guards_elided")

    def __init__(self, head: int, chain: List[int], cyclic: bool) -> None:
        self.head = head
        self.chain = chain
        self.cyclic = cyclic
        self.looping = None      #: the real anchor closure
        self.once = None         #: single-pass generic variant (audits)
        self.stepped_once = None  #: stepped twin of ``once`` (audits)
        self.auditable = False
        self.bound = 0.0         #: entry-segment cycle bound
        self.n_calls = 0         #: call-ending blocks chained across
        self.guards_elided = 0   #: chain-redundant guards dropped (static)


class TraceTable:
    """Edge counters, promotion state and compiled traces of one code
    object, bound (like its :class:`BlockTable`) to one executor."""

    __slots__ = ("executor", "code", "table", "anchors", "traces",
                 "edge_counts", "entries", "trace_entries", "counting",
                 "promoted", "disabled", "budget", "dem", "hot_edge",
                 "hot_entry")

    def __init__(self, code: "CodeObject", table: "BlockTable",
                 executor: "Executor") -> None:
        self.executor = executor
        self.code = code
        self.table = table
        #: per-bid anchor: the looping trace closure, or None.  The
        #: driver consults this list on every block dispatch.
        self.anchors: List[object] = [None] * len(table.spans)
        self.traces: Dict[int, TraceInfo] = {}
        #: (src_bid, dst_bid) -> retired-edge count while counting
        self.edge_counts: Dict[Tuple[int, int], int] = {}
        self.entries = 0        #: activations observed while counting
        self.trace_entries = 0  #: times any trace closure was entered
        self.counting = True
        self.promoted = False
        self.disabled = False
        #: one-cell demotion flag bound into every trace closure's
        #: globals: flipping it makes in-flight cyclic traces side-exit
        #: at their next segment check.
        self.dem = [False]
        self.budget = _env_int("REPRO_TRACEJIT_BUDGET", 4096)
        self.hot_edge = _env_int("REPRO_TRACEJIT_HOT", 24)
        self.hot_entry = _env_int("REPRO_TRACEJIT_ENTRY", 64)

    def disable(self) -> None:
        """Drop every trace, including for loops already inside one.

        Called by :meth:`BlockTable.demote` (sentinel divergence) — the
        ``dem`` flag reaches closures already running, clearing the
        anchors stops new entries, and ``disabled`` stops re-promotion.
        """
        self.disabled = True
        self.counting = False
        self.dem[0] = True
        self.anchors[:] = [None] * len(self.anchors)

    # -- promotion -------------------------------------------------------

    def promote(self) -> None:
        """Freeze counting and compile hot chains (idempotent)."""
        if self.promoted or self.disabled:
            return
        self.promoted = True
        self.counting = False
        table = self.table
        if table.demoted or table.flags_live:
            return
        # Hottest successor per source block, deterministically (higher
        # count wins; ties break towards the smaller block id).
        best: Dict[int, Tuple[int, int]] = {}
        for (src, dst), count in sorted(self.edge_counts.items()):
            got = best.get(src)
            if got is None or count > got[0]:
                best[src] = (count, dst)
        heads: List[Tuple[int, bool]] = []
        taken = set()
        hot_back_edges = sorted(
            ((count, src, dst) for (src, dst), count in
             self.edge_counts.items()
             if dst <= src and count >= self.hot_edge),
            key=lambda item: (-item[0], item[1], item[2]),
        )
        for _count, _src, dst in hot_back_edges:
            if dst not in taken:
                heads.append((dst, False))
                taken.add(dst)
        if self.entries >= self.hot_entry and 0 not in taken:
            heads.append((0, False))  # call-heavy: anchor at entry
            taken.add(0)
        # Post-call resume blocks: a hot edge out of a call-ending block
        # anchors a trace exactly where the call returns, so the resumed
        # path runs chained (possibly across further calls) instead of
        # round-tripping through the table.  Secondary to loop/entry
        # heads: skipped when an earlier chain already covers the block.
        decoded = self.code._decoded
        spans = table.spans
        resume_heads = sorted(
            ((count, src, dst) for (src, dst), count in
             self.edge_counts.items()
             if count >= self.hot_edge and dst < len(spans)
             and decoded[spans[src][1] - 1][0] in _CALL_KINDS),
            key=lambda item: (-item[0], item[1], item[2]),
        )
        for _count, _src, dst in resume_heads:
            if dst not in taken:
                heads.append((dst, True))
                taken.add(dst)
        if not heads:
            return
        legal = fused_block_edges(self.code.instrs)
        compiler = _TraceCompiler(self.code, self.executor, table, self)
        sources: List[str] = []
        pending: List[Tuple[TraceInfo, bool]] = []
        covered = set()
        for head, secondary in heads:
            if len(pending) >= MAX_TRACES:
                break
            if self.anchors[head] is not None:
                continue
            if secondary and head in covered:
                continue
            chain, cyclic = self._grow(head, best, legal)
            if len(chain) < 2 and not cyclic:
                continue
            try:
                src_l, src_o, info = compiler.compile_trace(
                    head, chain, cyclic
                )
            except _ChainAbort:
                continue
            sources.append(src_l)
            auditable = info.n_calls == 0 and all(
                table.auditable[b] for b in chain
            )
            if auditable:
                sources.append(src_o)
            pending.append((info, auditable))
            covered.update(chain)
        if not pending:
            return
        source = "\n".join(sources)
        compiled = _COMPILED_SOURCES.get(source)
        if compiled is None:
            compiled = _COMPILED_SOURCES[source] = compile(
                source, "<tracejit>", "exec"
            )
        glb = compiler.glb
        exec(compiled, glb)  # noqa: S102 - generated from decoded instrs
        for info, auditable in pending:
            info.looping = glb.pop(f"_trace_l{info.head}")
            if auditable:
                info.once = glb.pop(f"_trace_o{info.head}")
                info.stepped_once = _make_stepped_once(
                    self.executor, table.driver, info.chain, info.bound
                )
                info.auditable = True
            self.traces[info.head] = info
            self.anchors[info.head] = info.looping

    def _grow(self, head: int, best: Dict[int, Tuple[int, int]],
              legal) -> Tuple[List[int], bool]:
        """Follow hottest successors from ``head``; True when the chain
        closes back on its head (a loop-spanning trace)."""
        chain = [head]
        seen = {head}
        bid = head
        while len(chain) < MAX_CHAIN:
            got = best.get(bid)
            if got is None or got[0] < self.hot_edge:
                break
            nxt = got[1]
            if (bid, nxt) not in legal:
                break
            if nxt == head:
                return chain, True
            if nxt in seen:
                break
            chain.append(nxt)
            seen.add(nxt)
            bid = nxt
        return chain, False


def _make_stepped_once(ex: "Executor", driver, chain: List[int],
                       bound: float):
    """Stepped twin of a trace's ``once`` variant: the same single
    entry-segment check, then the chain replayed through the blocks'
    stepped closures (the per-instruction reference), early-exiting the
    moment control leaves the chain."""
    head = chain[0]
    last = len(chain) - 1

    def _stepped_once(regs, fregs, frame, special, heap, cycles):
        if cycles + bound >= ex._next_sample or ex.forced_deopt_trips > 0:
            return (head, cycles)
        bid = head
        for pos, chained in enumerate(chain):
            bid, cycles = driver[chained][2](
                regs, fregs, frame, special, heap, cycles
            )
            if pos < last and bid != chain[pos + 1]:
                return (bid, cycles)
        return (bid, cycles)

    return _stepped_once


def _chain_guard_sets(code: "CodeObject", table: "BlockTable",
                      chain: List[int]):
    """Per-position guard facts a trace must still evaluate.

    Walks the chain with an *alive* fact set: a block's hoisted entry
    guards join it once evaluated, and any instruction that redefines a
    fact's registers — or clobbers the heap, for heap-dependent facts —
    kills it (the same kill rule typeflow's own stability analysis
    uses).  Chains are straight-line by construction, so the position-
    based analysis is valid on every loop iteration.
    """
    from ..analysis.typeflow import _HEAP_FACTS, _fact_regs
    from ..isa.semantics import abstract_transfer_of, effect_of

    plans = table.typed_plans
    alive: set = set()
    out: List[Tuple] = []
    elided = 0
    for bid in chain:
        plan = plans.get(bid)
        if plan is None:
            out.append(())
        else:
            evaluated = tuple(f for f in plan.guards if f not in alive)
            elided += len(plan.guards) - len(evaluated)
            alive.update(plan.guards)
            out.append(evaluated)
        start, end = table.spans[bid]
        for pc in range(start, end):
            if not alive:
                break
            instr = code.instrs[pc]
            defs = effect_of(instr).int_defs
            kills_heap = abstract_transfer_of(instr).kills_heap
            doomed = [
                f for f in alive
                if (set(_fact_regs(f)) & defs)
                or (kills_heap and f[0] in _HEAP_FACTS)
            ]
            for f in doomed:
                alive.discard(f)
    return out, elided


def _version_chain_plan(ctx, table: "BlockTable", chain: List[int],
                        cyclic: bool):
    """Version-aware chain analysis: traces *stitch versions*.

    When the LBBV tier is active the trace inherits its chaining rule:
    walk the chain's actual edges with the typeflow transfer function,
    starting from the head's converged entry facts (which hold on every
    entry, including a cyclic trace's back edge, because the static
    must-analysis already met over that edge).  A position's hoisted
    guard is dropped when the propagated state *establishes* its fact —
    the same legality predicate as a guard-free chained version edge —
    and a position with no static plan gains a guard-free version plan
    wherever the edge state proves its site (elision the per-block meet
    could never justify).  Per-position facts derive only from earlier
    positions of the same iteration plus the head's all-paths entry
    state, so cyclic chains stay sound on every iteration.

    Returns ``(evaluated-guards per position, elided count, plan per
    position)``; the caller uses it in place of the alive-set analysis.
    """
    plans = table.typed_plans
    state = frozenset(ctx.static_entry.get(chain[0], frozenset()))
    out: List[Tuple] = []
    pos_plans: List[object] = []
    elided = 0
    n = len(chain)
    for pos, bid in enumerate(chain):
        plan = plans.get(bid)
        if plan is None:
            plan = ctx.plan_for(bid, state)  # guard-free or None
            out.append(())
            entry = state
        else:
            evaluated = tuple(
                f for f in plan.guards if not ctx.establishes(state, (f,))
            )
            elided += len(plan.guards) - len(evaluated)
            out.append(evaluated)
            entry = frozenset(state | set(plan.guards))
        pos_plans.append(plan)
        if pos + 1 < n:
            nxt: Optional[int] = chain[pos + 1]
        elif cyclic:
            nxt = chain[0]
        else:
            break
        succ_states = [
            s for succ, s in ctx.out_states(bid, entry) if succ == nxt
        ]
        if not succ_states:
            state = frozenset()
        else:
            state = succ_states[0]
            for s in succ_states[1:]:
                state = state & s
    return out, elided, pos_plans


class _TraceCompiler(_BlockCompiler):
    """Generates trace closures by reusing the block compiler's per-kind
    emission, guard construction and statistics prologues, so chained
    code is statement-identical to the fused blocks it replaces."""

    def __init__(self, code: "CodeObject", executor: "Executor",
                 table: "BlockTable", tt: TraceTable) -> None:
        super().__init__(code, executor)
        self.table = table
        self.block_of = table.block_of
        self.n_blocks = len(table.spans)
        self.flags_live = False  # flags-live tables are never traced
        self.plans = dict(table.typed_plans)
        self.glb["dem"] = tt.dem
        self.audited = executor._audit is not None
        if self.audited:
            self.glb["aud"] = executor._audit

    # -- trace assembly --------------------------------------------------

    def compile_trace(self, head: int, chain: List[int],
                      cyclic: bool) -> Tuple[str, str, TraceInfo]:
        info = TraceInfo(head, list(chain), cyclic)
        decoded = self.decoded
        spans = self.table.spans
        seg_starts = {0}
        for pos in range(1, len(chain)):
            prev_end = spans[chain[pos - 1]][1]
            if decoded[prev_end - 1][0] in _CALL_KINDS:
                seg_starts.add(pos)
        info.n_calls = sum(
            1 for bid in chain
            if decoded[spans[bid][1] - 1][0] in _CALL_KINDS
        )
        seg_bounds: Dict[int, float] = {}
        penalty = self.mispredict + self.taken_extra
        for seg in sorted(seg_starts):
            bound = 1.0  # float-ordering safety margin; only ever makes
            pos = seg    # the check side-exit early, never late
            while pos < len(chain) and (pos == seg or pos not in seg_starts):
                block = self.table.blocks[chain[pos]]
                bound += block.total_cost + block.n_branches * penalty
                pos += 1
            seg_bounds[seg] = bound
        info.bound = seg_bounds[0]
        versions = getattr(self.code, "_versions", None)
        if (
            versions is not None
            and versions.active
            and not versions.disabled
        ):
            # Stitch versions: edge-state chain analysis inherits the
            # LBBV tier's guard-free chaining (and its extra site
            # elisions) inside the trace.
            eval_guards, info.guards_elided, pos_plans = _version_chain_plan(
                versions.ctx, self.table, chain, cyclic
            )
        else:
            eval_guards, info.guards_elided = _chain_guard_sets(
                self.code, self.table, chain
            )
            pos_plans = [self.plans.get(bid) for bid in chain]
        src_l = self._assemble_trace(
            head, chain, cyclic, once=False, eval_guards=eval_guards,
            pos_plans=pos_plans, seg_starts=seg_starts,
            seg_bounds=seg_bounds,
        )
        src_o = self._assemble_trace(
            head, chain, cyclic, once=True, eval_guards=eval_guards,
            pos_plans=pos_plans, seg_starts=seg_starts,
            seg_bounds=seg_bounds,
        )
        return src_l, src_o, info

    def _assemble_trace(self, head: int, chain: List[int], cyclic: bool,
                        once: bool, eval_guards, pos_plans, seg_starts,
                        seg_bounds) -> str:
        lines: List[str] = []
        n = len(chain)
        for pos, bid in enumerate(chain):
            start, end = self.table.spans[bid]
            block = self.table.blocks[bid]
            tail = pos == n - 1
            if pos in seg_starts:
                cond = (
                    f"cycles + {seg_bounds[pos]!r} >= ex._next_sample"
                    " or ex.forced_deopt_trips > 0"
                )
                if not once:
                    cond += " or dem[0]"
                    if self.audited:
                        cond += " or stats.instructions >= aud.due"
                lines.append(f"if {cond}:")
                lines.append(f"    return ({bid}, cycles)")
            # The once variant runs generic bodies: its stepped twin
            # replays the (generic) stepped closures, and typed-vs-
            # generic equivalence is already audited block-by-block.
            plan = None if once else pos_plans[pos]
            if plan is not None:
                evaluated = eval_guards[pos]
                for fact in evaluated:
                    setup, fcond = self._guard_test(fact)
                    lines.extend(setup)
                    lines.append(f"if {fcond}:")
                    # Entry-state side exit: the driver re-dispatches the
                    # block, whose own guard does the tstat accounting.
                    lines.append(f"    return ({bid}, cycles)")
                if evaluated:
                    lines.append(f"tstat[3] += {len(evaluated)}")
            lines.append(f"cycles = cycles + {block.total_cost!r}")
            lines.extend(self._stats_prologue(block))
            actions = dict(plan.actions) if plan is not None else {}
            if tail:
                if cyclic:
                    next_bid: Optional[int] = head
                    jump: Optional[str] = (
                        f"return ({head}, cycles)" if once else "continue"
                    )
                else:
                    next_bid = None
                    jump = None
            else:
                next_bid = chain[pos + 1]
                jump = None
            for pc in range(start, end - 1):
                if plan is not None and pc == plan.site_pc:
                    raise _ChainAbort("elided site is not block-final")
                action = actions.get(pc)
                if action is not None and action[0] == "skip":
                    continue
                if action is not None and action[0] == "const":
                    lines.append(
                        f"regs[{action[1]}] = {self._lit(action[2])}"
                    )
                    continue
                lines.extend(self._emit(pc, end, False))
            lines.extend(self._chain_term(
                end - 1, end, plan, actions, next_bid, jump,
                linear_tail=(tail and not cyclic),
            ))
        name = f"_trace_{'o' if once else 'l'}{head}"
        src = [f"def {name}(regs, fregs, frame, special, heap, cycles):"]
        if cyclic and not once:
            src.append("    while True:")
            indent = "        "
        else:
            indent = "    "
        src.extend(indent + line for line in lines)
        return "\n".join(src) + "\n"

    def _chain_term(self, pc: int, end: int, plan, actions,
                    next_bid: Optional[int], jump: Optional[str],
                    linear_tail: bool) -> List[str]:
        """Emit a chained block's terminator.

        Mid-chain (and at a cyclic tail) the hot direction must reach
        ``next_bid``: returns are stripped or restructured so control
        falls through into the next chained block (or ``jump``s back to
        the head), while every cold direction side-exits with the exact
        state the block driver expects.  A linear tail keeps the block
        compiler's standalone emission verbatim.
        """
        last_kind = self.decoded[pc][0]
        if linear_tail:
            if plan is not None and pc == plan.site_pc:
                return self._emit_elided_site(pc, plan)
            action = actions.get(pc)
            if action is not None and action[0] == "skip":
                return [self._ret(self._target_bid(end))]
            if action is not None and action[0] == "const":
                return [
                    f"regs[{action[1]}] = {self._lit(action[2])}",
                    self._ret(self._target_bid(end)),
                ]
            out = self._emit(pc, end, False)
            if last_kind not in (K_BCC, K_B, K_RET, K_DEOPT, K_JSLDRSMI,
                                 K_CALL_JS, K_CALL_DYN, K_CALL_RT):
                out.append(self._ret(self._target_bid(end)))
            return out
        assert next_bid is not None
        if plan is not None and pc == plan.site_pc:
            return self._strip_ret(
                self._emit_elided_site(pc, plan), next_bid, jump
            )
        action = actions.get(pc)
        if action is not None and action[0] in ("skip", "const"):
            if self._target_bid(end) != next_bid:
                raise _ChainAbort("fall-through leaves the chain")
            out = []
            if action[0] == "const":
                out.append(f"regs[{action[1]}] = {self._lit(action[2])}")
            if jump is not None:
                out.append(jump)
            return out
        if last_kind == K_BCC:
            return self._chain_bcc(pc, next_bid, jump)
        if last_kind in (K_RET, K_DEOPT):
            raise _ChainAbort("RET/DEOPT cannot continue a chain")
        out = self._emit(pc, end, False)
        if last_kind in (K_B, K_CALL_JS, K_CALL_DYN, K_CALL_RT,
                         K_JSLDRSMI):
            return self._strip_ret(out, next_bid, jump)
        if self._target_bid(end) != next_bid:
            raise _ChainAbort("fall-through leaves the chain")
        if jump is not None:
            out.append(jump)
        return out

    def _strip_ret(self, out: List[str], next_bid: int,
                   jump: Optional[str]) -> List[str]:
        expected = f"return ({next_bid}, cycles)"
        if not out or out[-1] != expected:
            raise _ChainAbort("hot path does not reach the next block")
        out = out[:-1]
        if jump is not None:
            out.append(jump)
        return out

    def _chain_bcc(self, pc: int, next_bid: int,
                   jump: Optional[str]) -> List[str]:
        """A conditional branch inside a chain: the hot direction falls
        through (or jumps back to the head), the cold one side-exits.
        Statement-for-statement the same predictor updates, counter
        bumps and cycle adds — in the same order — as the fused block's
        emission; only the control structure is inverted."""
        from .blockjit import _CC_EXPR

        decoded = self.decoded[pc]
        instr = decoded[7]
        taken_bid = self._target_bid(decoded[4])
        ft_bid = self._target_bid(pc + 1)
        if next_bid == taken_bid:
            hot_taken = True
        elif next_bid == ft_bid:
            hot_taken = False
        else:
            raise _ChainAbort("branch does not reach the next block")
        out = [
            f"taken = {_CC_EXPR[int(instr.cc)]}",
            "_h = pred.history",
            f"_i = ({pc} ^ _h) & {self.pmask}",
            "_t = ptable[_i]",
            "pred.predictions += 1",
        ]
        taken_body = [
            f"pred.history = ((_h << 1) | 1) & {self.pmask}",
            "if _t < 3:",
            "    ptable[_i] = _t + 1",
            "if _t < 2:",
            "    pred.mispredictions += 1",
            "    stats.mispredictions += 1",
            f"    cycles += {self.mispredict!r}",
            "stats.taken_branches += 1",
            f"cycles += {self.taken_extra!r}",
        ]
        nottaken_body = [
            f"pred.history = (_h << 1) & {self.pmask}",
            "if _t > 0:",
            "    ptable[_i] = _t - 1",
            "if _t >= 2:",
            "    pred.mispredictions += 1",
            "    stats.mispredictions += 1",
            f"    cycles += {self.mispredict!r}",
        ]
        if hot_taken:
            out.append("if not taken:")
            out.extend("    " + line for line in nottaken_body)
            out.append(f"    return ({ft_bid}, cycles)")
            out.extend(taken_body)
        else:
            out.append("if taken:")
            out.extend("    " + line for line in taken_body)
            out.append(f"    return ({taken_bid}, cycles)")
            out.extend(nottaken_body)
        if jump is not None:
            out.append(jump)
        return out


# -- the trace-aware driver ----------------------------------------------


def run_traced(ex: "Executor", code: "CodeObject", args, this_word: int):
    """Three-tier dispatch: traces where anchored, blocks elsewhere.

    Structurally the block driver (:meth:`Executor._run_blocks`) with a
    per-dispatch anchor lookup; after *any* trace exit at least one
    block runs through the ordinary block path before anchors are
    consulted again, so a trace that immediately side-exits (sample
    window closing in, pending trips, demotion) cannot livelock the
    driver.  While the edge budget lasts, block-path transitions feed
    the ``(src, dst)`` counters that chain formation consumes.
    """
    table = code._blocks
    if table is None or table.executor is not ex:
        table = code._blocks = compile_blocks(code, ex)
    if table.flags_live or table.demoted:
        # Flag-threading ABI (documented trace/audit limitation) or an
        # already-demoted table: the two-tier driver handles both.
        return ex._run_blocks(code, args, this_word)
    tt = code._traces
    if tt is None or tt.executor is not ex or tt.table is not table:
        tt = code._traces = TraceTable(code, table, ex)
        table.traces = tt
    if tt.disabled:
        return ex._run_blocks(code, args, this_word)
    versions = code._versions
    if ex.lbbv and (versions is None or versions.table is not table):
        from .lbbv import attach_versions

        versions = attach_versions(code, table, ex)
    # Version driver entries live past the anchor range; ``vmap``
    # translates them back to base block ids for anchor lookup and edge
    # counting, so trace formation sees the same base CFG either way.
    vmap = versions.base_of if versions is not None else None
    regs: List[int] = [0] * code.target.gpr_count
    fregs: List[float] = [0.0] * code.target.fpr_count
    frame: List[object] = [0] * max(1, code.stack_slots)
    special = [0, 0, 0]
    for index, arg in enumerate(args):
        regs[index] = arg
    regs[THIS_REG] = this_word
    heap_words = ex.heap.words
    blocks = table.driver
    anchors = tt.anchors
    n_anchor = len(anchors)
    local_cycles = ex.cycles
    bid = 0
    counting = tt.counting
    ec = tt.edge_counts
    if counting:
        tt.entries += 1
    audit = ex._audit
    if audit is not None:
        auditable = table.auditable
        stats = ex.stats
        due = audit.due
        while True:
            tr = anchors[bid] if bid < n_anchor else None
            if tr is not None:
                if stats.instructions >= due:
                    due = audit.due
                    if stats.instructions >= due:
                        info = tt.traces.get(bid)
                        if (info is not None and info.auditable
                                and ex.forced_deopt_trips == 0
                                and local_cycles + info.bound
                                < ex._next_sample):
                            audit.audit_trace(
                                ex, code, table, tt, info, regs, fregs,
                                frame, special, local_cycles,
                            )
                            due = audit.due = (
                                stats.instructions + audit.next_interval()
                            )
                    tr = anchors[bid]  # the audit may have demoted us
                if tr is not None:
                    tt.trace_entries += 1
                    bid, local_cycles = tr(
                        regs, fregs, frame, special, heap_words,
                        local_cycles,
                    )
                    if bid < 0:
                        return ex.ret_value
            total_cost, fused, stepped = blocks[bid]
            exit_cycles = local_cycles + total_cost
            if (exit_cycles >= ex._next_sample
                    or ex.forced_deopt_trips > 0):
                nbid, local_cycles = stepped(
                    regs, fregs, frame, special, heap_words, local_cycles,
                )
            else:
                if stats.instructions >= due and auditable[bid]:
                    due = audit.due
                    if stats.instructions >= due:
                        audit.audit_block(
                            ex, code, table, bid, regs, fregs, frame,
                            special, local_cycles,
                        )
                        due = audit.due = (
                            stats.instructions + audit.next_interval()
                        )
                        if table.demoted:
                            nbid, local_cycles = stepped(
                                regs, fregs, frame, special, heap_words,
                                local_cycles,
                            )
                            if nbid < 0:
                                return ex.ret_value
                            bid = nbid
                            continue
                nbid, local_cycles = fused(
                    regs, fregs, frame, special, heap_words, exit_cycles,
                )
            if nbid < 0:
                return ex.ret_value
            if counting:
                if vmap is not None and nbid < len(vmap):
                    key = (vmap[bid], vmap[nbid])
                else:
                    key = (bid, nbid)
                ec[key] = ec.get(key, 0) + 1
                tt.budget -= 1
                if tt.budget <= 0:
                    tt.promote()
                    counting = False
            bid = nbid
    while True:
        tr = anchors[bid] if bid < n_anchor else None
        if tr is not None:
            tt.trace_entries += 1
            bid, local_cycles = tr(
                regs, fregs, frame, special, heap_words, local_cycles,
            )
            if bid < 0:
                return ex.ret_value
        total_cost, fused, stepped = blocks[bid]
        exit_cycles = local_cycles + total_cost
        if exit_cycles >= ex._next_sample or ex.forced_deopt_trips > 0:
            nbid, local_cycles = stepped(
                regs, fregs, frame, special, heap_words, local_cycles,
            )
        else:
            nbid, local_cycles = fused(
                regs, fregs, frame, special, heap_words, exit_cycles,
            )
        if nbid < 0:
            return ex.ret_value
        if counting:
            if vmap is not None and nbid < len(vmap):
                key = (vmap[bid], vmap[nbid])
            else:
                key = (bid, nbid)
            ec[key] = ec.get(key, 0) + 1
            tt.budget -= 1
            if tt.budget <= 0:
                tt.promote()
                counting = False
        bid = nbid
