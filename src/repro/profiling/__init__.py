"""perf-style profiling: PC sampling and check attribution."""

from .annotate import annotated_listing
from .attribution import (
    AttributionResult,
    attribute_samples,
    static_check_density,
    truth_check_pcs,
    window_check_pcs,
)
from .sampler import PCSampler, attach_sampler, window_straddles_tick

__all__ = [
    "AttributionResult",
    "PCSampler",
    "annotated_listing",
    "attach_sampler",
    "attribute_samples",
    "static_check_density",
    "truth_check_pcs",
    "window_check_pcs",
    "window_straddles_tick",
]
