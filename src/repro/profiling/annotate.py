"""Annotated assembly listings with sample counts (the paper's Fig. 3).

Combines the pretty-printed machine code with per-pc sample counts and the
window-heuristic check assignment, producing listings like::

     123 |   42: ldr x20, [x19, #2]        <- check (OUT_OF_BOUNDS)
      87 |   43: cmp x13, x20              <- check (OUT_OF_BOUNDS)
       5 |   44: b.hs deopt_57             <- deopt branch
"""

from __future__ import annotations

from typing import Dict, Optional

from ..isa.asmprint import format_instr
from ..isa.base import MOp
from ..jit.codegen import CodeObject
from .attribution import truth_check_pcs, window_check_pcs
from .sampler import PCSampler


def annotated_listing(
    code: CodeObject,
    sampler: Optional[PCSampler] = None,
    method: str = "window",
) -> str:
    """Render ``code`` with sample counts and check annotations."""
    samples: Dict[int, int] = {}
    if sampler is not None:
        samples = sampler.samples_by_code().get(code, {})
    if method == "window":
        assignment = window_check_pcs(code, code.target.check_window)
    else:
        assignment = truth_check_pcs(code, count_shared=True)
    lines = [
        f"-- {code.shared.name} [{code.target.name}]"
        f"  ({sum(samples.values())} samples) --",
        f"{'samples':>8} | instruction",
    ]
    for pc, instr in enumerate(code.instrs):
        count = samples.get(pc, 0)
        text = format_instr(instr, pc)
        marker = ""
        kind = assignment.get(pc)
        if kind is not None:
            if instr.is_deopt_branch or instr.op == MOp.DEOPT:
                marker = f"   <- deopt branch ({kind.name})"
            else:
                marker = f"   <- check ({kind.name})"
        lines.append(f"{count:8d} | {text}{marker}")
    return "\n".join(lines)
