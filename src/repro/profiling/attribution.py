"""Attribution of PC samples to deoptimization checks.

Implements both estimators:

* the paper's **window heuristic** (Section III-A): an instruction belongs
  to a check if it *is* a deopt branch, or lies within ``window``
  instructions before one (1 on x64, 2 on ARM64).  "Identifying which
  instructions are part of the check ... is not straightforward"; the
  window is a pragmatic approximation that can both overcount (unrelated
  neighbours) and undercount (RISC checks longer than the window);
* **ground truth** from compiler provenance: every emitted instruction
  carries the check id it belongs to.  ``shared`` instructions (e.g. the
  ``adds`` of a checked add, which performs real work *and* computes the
  overflow flag) can be counted either way — the same ambiguity the paper
  discusses.

Both return overheads as a fraction of *total* samples, matching "the
ratio between the PC samples identified as part of a check and the total
number of collected PC samples".
"""

from __future__ import annotations

from collections import defaultdict
from typing import DefaultDict, Dict, Optional

from ..isa.base import MOp
from ..jit.checks import CheckGroup, CheckKind, group_of
from ..jit.codegen import CodeObject
from .sampler import PCSampler


def window_check_pcs(code: CodeObject, window: int) -> Dict[int, CheckKind]:
    """pc -> check kind, per the window heuristic.

    Deopt branches are identified the way the paper does: "deoptimization
    paths always jump to a specific region at the end of a compiled
    function", i.e. by their branch target, not by compiler metadata.
    """
    stub_pcs = {
        pc for pc, instr in enumerate(code.instrs) if instr.op == MOp.DEOPT
    }
    assignment: Dict[int, CheckKind] = {}
    for pc, instr in enumerate(code.instrs):
        is_deopt_jump = (
            instr.op == MOp.BCC and instr.target in stub_pcs
        ) or instr.op == MOp.DEOPT
        if not is_deopt_jump:
            continue
        stub = instr.target if instr.op == MOp.BCC else pc
        kind = code.deopt_points[code.instrs[stub].imm].kind  # type: ignore[index]
        assignment[pc] = kind
        # The preceding `window` instructions are counted as check work.
        back = pc - 1
        taken = 0
        while back >= 0 and taken < window:
            previous = code.instrs[back]
            if previous.op in (MOp.B, MOp.BCC, MOp.RET, MOp.DEOPT):
                break  # don't cross control flow
            assignment.setdefault(back, kind)
            taken += 1
            back -= 1
    return assignment


def truth_check_pcs(
    code: CodeObject, count_shared: bool = False
) -> Dict[int, CheckKind]:
    """pc -> check kind from compiler provenance (ground truth).

    ``count_shared`` controls whether dual-purpose instructions (condition
    computation fused with main-line work) count as check overhead.
    """
    assignment: Dict[int, CheckKind] = {}
    for pc, instr in enumerate(code.instrs):
        if instr.op == MOp.DEOPT:
            continue
        if instr.check_id < 0:
            continue
        if instr.shared_with_main and not count_shared:
            continue
        point = code.deopt_points.get(instr.check_id)
        if point is not None:
            assignment[pc] = point.kind
    return assignment


class AttributionResult:
    """Sample counts attributed to checks, by kind and group."""

    def __init__(self, total_samples: int) -> None:
        self.total_samples = total_samples
        self.check_samples = 0
        self.by_kind: DefaultDict[CheckKind, int] = defaultdict(int)
        self.jit_samples = 0

    def add(self, kind: Optional[CheckKind], count: int) -> None:
        self.jit_samples += count
        if kind is not None:
            self.check_samples += count
            self.by_kind[kind] += count

    @property
    def overhead(self) -> float:
        """Check overhead as a fraction of all samples (paper's metric)."""
        if self.total_samples == 0:
            return 0.0
        return self.check_samples / self.total_samples

    @property
    def jit_share(self) -> float:
        if self.total_samples == 0:
            return 0.0
        return self.jit_samples / self.total_samples

    def by_group(self) -> Dict[CheckGroup, float]:
        if self.total_samples == 0:
            return {}
        grouped: DefaultDict[CheckGroup, int] = defaultdict(int)
        for kind, count in self.by_kind.items():
            grouped[group_of(kind)] += count
        return {g: c / self.total_samples for g, c in grouped.items()}

    @property
    def estimated_speedup(self) -> float:
        """(1 - overhead)^-1, the paper's conversion for Fig. 8/9."""
        return 1.0 / (1.0 - min(self.overhead, 0.999))


def attribute_samples(
    sampler: PCSampler,
    method: str = "window",
    window: Optional[int] = None,
    count_shared: bool = False,
) -> AttributionResult:
    """Attribute all samples in ``sampler`` to checks.

    method: "window" (the paper's heuristic; window defaults to the
    target's per-ISA value) or "truth" (compiler provenance).
    """
    result = AttributionResult(sampler.total_samples)
    for code, pcs in sampler.samples_by_code().items():
        if method == "window":
            w = window if window is not None else code.target.check_window
            assignment = window_check_pcs(code, w)
        elif method == "truth":
            assignment = truth_check_pcs(code, count_shared=count_shared)
        else:
            raise ValueError(f"unknown attribution method {method!r}")
        for pc, count in pcs.items():
            result.add(assignment.get(pc), count)
    return result


def static_check_density(code: CodeObject) -> float:
    """Checks emitted per 100 instructions (Fig. 1's metric).

    Counted over the function body (deopt stubs excluded), one check =
    one deopt point.
    """
    body = code.body_instruction_count()
    if body == 0:
        return 0.0
    return 100.0 * len(code.deopt_points) / body
