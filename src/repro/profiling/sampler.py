"""perf-style PC sampling over simulated execution.

The paper's first overhead-estimation method (Section III-A) samples the
program counter and counts the samples that land on instructions belonging
to deoptimization checks.  Our sampler is driven by the simulated cycle
clock: every ``period`` cycles it records where execution currently is —
inside a JIT code object (at which pc), or elsewhere (interpreter,
builtins, GC), mirroring perf's whole-process sampling.
"""

from __future__ import annotations

from collections import defaultdict
from typing import DefaultDict, Dict, Tuple

from ..jit.codegen import CodeObject


def window_straddles_tick(next_due: float, window_end: float) -> bool:
    """Does a sample tick land inside a cycle window ending at
    ``window_end``?

    This is the contract between the sampler and the block-compiled
    executor (:mod:`repro.machine.blockjit`): a fused block whose exit
    cycle count stays strictly below the next sample due point
    (:meth:`repro.machine.executor.Executor.next_sample_due`) cannot
    contain a tick — per-instruction cycle counts within a block are
    non-negative partial sums of the block total, and float addition of
    non-negative terms is weakly monotonic, so no interior instruction
    can reach the due point if the block's last one does not.  Blocks
    that may straddle a tick must run the per-instruction stepped tier so
    the sample is attributed to the exact pc the step loop would charge.
    """
    return window_end >= next_due


class PCSampler:
    """Accumulates PC samples, keyed by (code object, pc)."""

    def __init__(self) -> None:
        #: samples per (id(code), pc); keeps the code object alive
        self.jit_samples: DefaultDict[Tuple[int, int], int] = defaultdict(int)
        self._code_by_id: Dict[int, CodeObject] = {}
        self.other_samples = 0
        self.total_samples = 0

    # Executor-facing API -------------------------------------------------

    def record_jit(self, code: CodeObject, pc: int) -> None:
        self.jit_samples[(id(code), pc)] += 1
        self._code_by_id[id(code)] = code
        self.total_samples += 1

    def record_other(self) -> None:
        self.other_samples += 1
        self.total_samples += 1

    # Queries --------------------------------------------------------------

    def jit_sample_count(self) -> int:
        return self.total_samples - self.other_samples

    def samples_by_code(self) -> Dict[CodeObject, Dict[int, int]]:
        per_code: Dict[CodeObject, Dict[int, int]] = {}
        for (code_id, pc), count in self.jit_samples.items():
            code = self._code_by_id[code_id]
            per_code.setdefault(code, {})[pc] = count
        return per_code


def attach_sampler(engine, period: float = 467.0) -> PCSampler:
    """Install a sampler on an engine; returns it.

    The default period is an odd number of cycles so samples do not phase-
    lock with loop bodies (the same reason perf uses non-round frequencies).
    """
    sampler = PCSampler()
    engine.executor.set_sampling(sampler, period)
    return sampler
