"""perf-style PC sampling over simulated execution.

The paper's first overhead-estimation method (Section III-A) samples the
program counter and counts the samples that land on instructions belonging
to deoptimization checks.  Our sampler is driven by the simulated cycle
clock: every ``period`` cycles it records where execution currently is —
inside a JIT code object (at which pc), or elsewhere (interpreter,
builtins, GC), mirroring perf's whole-process sampling.
"""

from __future__ import annotations

from collections import defaultdict
from typing import DefaultDict, Dict, Tuple

from ..jit.codegen import CodeObject


class PCSampler:
    """Accumulates PC samples, keyed by (code object, pc)."""

    def __init__(self) -> None:
        #: samples per (id(code), pc); keeps the code object alive
        self.jit_samples: DefaultDict[Tuple[int, int], int] = defaultdict(int)
        self._code_by_id: Dict[int, CodeObject] = {}
        self.other_samples = 0
        self.total_samples = 0

    # Executor-facing API -------------------------------------------------

    def record_jit(self, code: CodeObject, pc: int) -> None:
        self.jit_samples[(id(code), pc)] += 1
        self._code_by_id[id(code)] = code
        self.total_samples += 1

    def record_other(self) -> None:
        self.other_samples += 1
        self.total_samples += 1

    # Queries --------------------------------------------------------------

    def jit_sample_count(self) -> int:
        return self.total_samples - self.other_samples

    def samples_by_code(self) -> Dict[CodeObject, Dict[int, int]]:
        per_code: Dict[CodeObject, Dict[int, int]] = {}
        for (code_id, pc), count in self.jit_samples.items():
            code = self._code_by_id[code_id]
            per_code.setdefault(code, {})[pc] = count
        return per_code


def attach_sampler(engine, period: float = 467.0) -> PCSampler:
    """Install a sampler on an engine; returns it.

    The default period is an odd number of cycles so samples do not phase-
    lock with loop bodies (the same reason perf uses non-round frequencies).
    """
    sampler = PCSampler()
    engine.executor.set_sampling(sampler, period)
    return sampler
