"""Irregexp-lite backtracking regular-expression engine."""

from .engine import MatchResult, Regex, RegexSyntaxError, compile_pattern

__all__ = ["MatchResult", "Regex", "RegexSyntaxError", "compile_pattern"]
