"""Irregexp-lite: a small backtracking regular-expression engine.

V8 executes regular expressions in Irregexp, *outside* JIT-compiled
JavaScript code; the paper's Fig. 4 shows that regex-heavy benchmarks
consequently carry almost no deoptimization-check overhead.  Our engine
plays the same role: it runs as a builtin, its work is charged as builtin
cycles, and no checks are emitted for it.

Supported syntax: literals, ``.``, character classes (ranges, negation),
escapes (``\\d \\D \\w \\W \\s \\S``, ``\\b`` word boundary, escaped
punctuation), anchors ``^ $``, quantifiers ``* + ? {n} {n,} {n,m}`` with
lazy variants, alternation ``|``, capturing and ``(?:`` non-capturing
groups.
"""

from __future__ import annotations

from typing import List, Optional, Tuple


class RegexSyntaxError(Exception):
    pass


# --- pattern AST -----------------------------------------------------------


class _Node:
    __slots__ = ()


class _Literal(_Node):
    __slots__ = ("char",)

    def __init__(self, char: str) -> None:
        self.char = char


class _AnyChar(_Node):
    __slots__ = ()


class _CharClass(_Node):
    __slots__ = ("ranges", "negated")

    def __init__(self, ranges: List[Tuple[str, str]], negated: bool) -> None:
        self.ranges = ranges
        self.negated = negated

    def matches(self, char: str) -> bool:
        inside = any(lo <= char <= hi for lo, hi in self.ranges)
        return inside != self.negated


class _Sequence(_Node):
    __slots__ = ("items",)

    def __init__(self, items: List[_Node]) -> None:
        self.items = items


class _Alternation(_Node):
    __slots__ = ("options",)

    def __init__(self, options: List[_Node]) -> None:
        self.options = options


class _Repeat(_Node):
    __slots__ = ("item", "minimum", "maximum", "lazy")

    def __init__(self, item: _Node, minimum: int, maximum: Optional[int], lazy: bool) -> None:
        self.item = item
        self.minimum = minimum
        self.maximum = maximum
        self.lazy = lazy


class _Group(_Node):
    __slots__ = ("item", "index")

    def __init__(self, item: _Node, index: Optional[int]) -> None:
        self.item = item
        self.index = index  # None for non-capturing


class _Anchor(_Node):
    __slots__ = ("kind",)

    def __init__(self, kind: str) -> None:
        self.kind = kind  # "^", "$", "b", "B"


_CLASS_SHORTHANDS = {
    "d": [("0", "9")],
    "w": [("a", "z"), ("A", "Z"), ("0", "9"), ("_", "_")],
    "s": [(" ", " "), ("\t", "\t"), ("\n", "\n"), ("\r", "\r"), ("\f", "\f"), ("\v", "\v")],
}

_ESCAPE_LITERALS = {
    "n": "\n",
    "t": "\t",
    "r": "\r",
    "f": "\f",
    "v": "\v",
    "0": "\0",
}


class _PatternParser:
    def __init__(self, pattern: str) -> None:
        self.pattern = pattern
        self.pos = 0
        self.group_count = 0

    def parse(self) -> _Node:
        node = self._parse_alternation()
        if self.pos != len(self.pattern):
            raise RegexSyntaxError(f"unexpected {self.pattern[self.pos]!r} at {self.pos}")
        return node

    def _peek(self) -> str:
        return self.pattern[self.pos] if self.pos < len(self.pattern) else ""

    def _parse_alternation(self) -> _Node:
        options = [self._parse_sequence()]
        while self._peek() == "|":
            self.pos += 1
            options.append(self._parse_sequence())
        return options[0] if len(options) == 1 else _Alternation(options)

    def _parse_sequence(self) -> _Node:
        items: List[_Node] = []
        while self._peek() not in ("", "|", ")"):
            items.append(self._parse_quantified())
        return _Sequence(items)

    def _parse_quantified(self) -> _Node:
        atom = self._parse_atom()
        char = self._peek()
        minimum: int
        maximum: Optional[int]
        if char == "*":
            minimum, maximum = 0, None
        elif char == "+":
            minimum, maximum = 1, None
        elif char == "?":
            minimum, maximum = 0, 1
        elif char == "{":
            saved = self.pos
            parsed = self._try_parse_braces()
            if parsed is None:
                self.pos = saved
                return atom
            minimum, maximum = parsed
            lazy = self._peek() == "?"
            if lazy:
                self.pos += 1
            return _Repeat(atom, minimum, maximum, lazy)
        else:
            return atom
        self.pos += 1
        lazy = self._peek() == "?"
        if lazy:
            self.pos += 1
        return _Repeat(atom, minimum, maximum, lazy)

    def _try_parse_braces(self) -> Optional[Tuple[int, Optional[int]]]:
        self.pos += 1  # consume "{"
        start = self.pos
        while self._peek().isdigit():
            self.pos += 1
        if self.pos == start:
            return None
        minimum = int(self.pattern[start : self.pos])
        if self._peek() == "}":
            self.pos += 1
            return minimum, minimum
        if self._peek() != ",":
            return None
        self.pos += 1
        if self._peek() == "}":
            self.pos += 1
            return minimum, None
        start = self.pos
        while self._peek().isdigit():
            self.pos += 1
        if self.pos == start or self._peek() != "}":
            return None
        maximum = int(self.pattern[start : self.pos])
        self.pos += 1
        return minimum, maximum

    def _parse_atom(self) -> _Node:
        char = self._peek()
        if char == "(":
            self.pos += 1
            capturing = True
            if self.pattern.startswith("?:", self.pos):
                self.pos += 2
                capturing = False
            index: Optional[int] = None
            if capturing:
                self.group_count += 1
                index = self.group_count
            inner = self._parse_alternation()
            if self._peek() != ")":
                raise RegexSyntaxError("unbalanced parenthesis")
            self.pos += 1
            return _Group(inner, index)
        if char == "[":
            return self._parse_class()
        if char == ".":
            self.pos += 1
            return _AnyChar()
        if char == "^":
            self.pos += 1
            return _Anchor("^")
        if char == "$":
            self.pos += 1
            return _Anchor("$")
        if char == "\\":
            return self._parse_escape()
        if char in ")|*+?":
            raise RegexSyntaxError(f"unexpected {char!r} at {self.pos}")
        self.pos += 1
        return _Literal(char)

    def _parse_escape(self) -> _Node:
        self.pos += 1
        char = self._peek()
        if not char:
            raise RegexSyntaxError("trailing backslash")
        self.pos += 1
        lower = char.lower()
        if lower in _CLASS_SHORTHANDS and char.isalpha():
            ranges = _CLASS_SHORTHANDS[lower]
            return _CharClass(list(ranges), negated=char.isupper())
        if char == "b":
            return _Anchor("b")
        if char == "B":
            return _Anchor("B")
        if char in _ESCAPE_LITERALS:
            return _Literal(_ESCAPE_LITERALS[char])
        if char == "x":
            digits = self.pattern[self.pos : self.pos + 2]
            self.pos += 2
            return _Literal(chr(int(digits, 16)))
        if char == "u":
            digits = self.pattern[self.pos : self.pos + 4]
            self.pos += 4
            return _Literal(chr(int(digits, 16)))
        return _Literal(char)

    def _parse_class(self) -> _CharClass:
        self.pos += 1  # consume "["
        negated = self._peek() == "^"
        if negated:
            self.pos += 1
        ranges: List[Tuple[str, str]] = []
        while self._peek() != "]":
            if not self._peek():
                raise RegexSyntaxError("unterminated character class")
            char = self._peek()
            if char == "\\":
                self.pos += 1
                escape = self._peek()
                self.pos += 1
                lower = escape.lower()
                if lower in _CLASS_SHORTHANDS and escape.isalpha():
                    if escape.isupper():
                        raise RegexSyntaxError("negated shorthand inside class unsupported")
                    ranges.extend(_CLASS_SHORTHANDS[lower])
                    continue
                char = _ESCAPE_LITERALS.get(escape, escape)
            else:
                self.pos += 1
            if self._peek() == "-" and self.pos + 1 < len(self.pattern) and self.pattern[self.pos + 1] != "]":
                self.pos += 1
                end = self._peek()
                if end == "\\":
                    self.pos += 1
                    end = _ESCAPE_LITERALS.get(self._peek(), self._peek())
                self.pos += 1
                ranges.append((char, end))
            else:
                ranges.append((char, char))
        self.pos += 1  # consume "]"
        return _CharClass(ranges, negated)


def _is_word(char: str) -> bool:
    return char.isalnum() or char == "_"


class MatchResult:
    """Result of a successful match: full span plus capture groups."""

    def __init__(self, text: str, start: int, end: int, groups: List[Optional[Tuple[int, int]]]):
        self.text = text
        self.start = start
        self.end = end
        self._groups = groups

    @property
    def matched(self) -> str:
        return self.text[self.start : self.end]

    def group(self, index: int) -> Optional[str]:
        if index == 0:
            return self.matched
        span = self._groups[index - 1] if index - 1 < len(self._groups) else None
        return None if span is None else self.text[span[0] : span[1]]

    @property
    def group_count(self) -> int:
        return len(self._groups)


class Regex:
    """A compiled pattern.  Flags: ``i`` (ignore case), ``g`` (global),
    ``m`` (multiline anchors)."""

    def __init__(self, pattern: str, flags: str = "") -> None:
        self.pattern = pattern
        self.flags = flags
        self.ignore_case = "i" in flags
        self.is_global = "g" in flags
        self.multiline = "m" in flags
        parser = _PatternParser(pattern)
        self.root = parser.parse()
        self.group_count = parser.group_count
        self.last_index = 0
        #: Characters examined during matching (drives builtin cycle cost).
        self.steps = 0

    # -- matching ----------------------------------------------------------

    def search(self, text: str, start: int = 0) -> Optional[MatchResult]:
        if self.ignore_case:
            haystack = text.lower()
        else:
            haystack = text
        for begin in range(start, len(text) + 1):
            groups: List[Optional[Tuple[int, int]]] = [None] * self.group_count
            end = self._match_node(self.root, haystack, begin, groups, lambda pos, g: pos)
            if end is not None:
                return MatchResult(text, begin, end, groups)
        return None

    def test(self, text: str) -> bool:
        return self.search(text) is not None

    def exec(self, text: str) -> Optional[MatchResult]:
        start = self.last_index if self.is_global else 0
        if start > len(text):
            self.last_index = 0
            return None
        result = self.search(text, start)
        if result is None:
            self.last_index = 0
            return None
        if self.is_global:
            self.last_index = result.end if result.end > result.start else result.end + 1
        return result

    def find_all(self, text: str) -> List[MatchResult]:
        results: List[MatchResult] = []
        position = 0
        while position <= len(text):
            result = self.search(text, position)
            if result is None:
                break
            results.append(result)
            position = result.end if result.end > result.start else result.end + 1
        return results

    def replace(self, text: str, replacement: str, replace_all: Optional[bool] = None) -> str:
        if replace_all is None:
            replace_all = self.is_global
        pieces: List[str] = []
        position = 0
        while position <= len(text):
            result = self.search(text, position)
            if result is None:
                break
            pieces.append(text[position : result.start])
            pieces.append(self._expand(replacement, result))
            position = result.end if result.end > result.start else result.end + 1
            if result.end == result.start and result.start < len(text):
                pieces.append(text[result.start])
            if not replace_all:
                break
        pieces.append(text[position:])
        return "".join(pieces)

    def _expand(self, replacement: str, result: MatchResult) -> str:
        out: List[str] = []
        i = 0
        while i < len(replacement):
            char = replacement[i]
            if char == "$" and i + 1 < len(replacement):
                nxt = replacement[i + 1]
                if nxt.isdigit():
                    out.append(result.group(int(nxt)) or "")
                    i += 2
                    continue
                if nxt == "&":
                    out.append(result.matched)
                    i += 2
                    continue
            out.append(char)
            i += 1
        return "".join(out)

    # -- recursive backtracking matcher -------------------------------------

    def _match_node(self, node: _Node, text: str, pos: int, groups, cont):
        self.steps += 1
        if isinstance(node, _Sequence):
            return self._match_sequence(node.items, 0, text, pos, groups, cont)
        if isinstance(node, _Literal):
            char = node.char.lower() if self.ignore_case else node.char
            if pos < len(text) and text[pos] == char:
                return cont(pos + 1, groups)
            return None
        if isinstance(node, _AnyChar):
            if pos < len(text) and text[pos] != "\n":
                return cont(pos + 1, groups)
            return None
        if isinstance(node, _CharClass):
            if pos < len(text) and node.matches(text[pos]):
                return cont(pos + 1, groups)
            return None
        if isinstance(node, _Anchor):
            if node.kind == "^":
                ok = pos == 0 or (self.multiline and text[pos - 1] == "\n")
            elif node.kind == "$":
                ok = pos == len(text) or (self.multiline and text[pos] == "\n")
            else:
                before = _is_word(text[pos - 1]) if pos > 0 else False
                after = _is_word(text[pos]) if pos < len(text) else False
                at_boundary = before != after
                ok = at_boundary if node.kind == "b" else not at_boundary
            return cont(pos, groups) if ok else None
        if isinstance(node, _Group):
            if node.index is None:
                return self._match_node(node.item, text, pos, groups, cont)
            start = pos
            index = node.index - 1

            def close(end_pos: int, inner_groups):
                saved = inner_groups[index]
                inner_groups[index] = (start, end_pos)
                result = cont(end_pos, inner_groups)
                if result is None:
                    inner_groups[index] = saved
                return result

            return self._match_node(node.item, text, pos, groups, close)
        if isinstance(node, _Alternation):
            for option in node.options:
                result = self._match_node(option, text, pos, groups, cont)
                if result is not None:
                    return result
            return None
        if isinstance(node, _Repeat):
            return self._match_repeat(node, text, pos, groups, cont, 0)
        raise AssertionError(f"unknown node {node!r}")

    def _match_sequence(self, items, index, text, pos, groups, cont):
        if index == len(items):
            return cont(pos, groups)

        def step(next_pos, next_groups):
            return self._match_sequence(items, index + 1, text, next_pos, next_groups, cont)

        return self._match_node(items[index], text, pos, groups, step)

    def _match_repeat(self, node: _Repeat, text, pos, groups, cont, count):
        maximum = node.maximum if node.maximum is not None else len(text) - pos + count + 1

        def try_more():
            if count >= maximum:
                return None

            def step(next_pos, next_groups):
                if next_pos == pos and count >= node.minimum:
                    return None  # zero-width progress guard
                return self._match_repeat(node, text, next_pos, next_groups, cont, count + 1)

            return self._match_node(node.item, text, pos, groups, step)

        def try_finish():
            if count >= node.minimum:
                return cont(pos, groups)
            return None

        if node.lazy:
            return try_finish() or try_more()
        return try_more() or try_finish()


def compile_pattern(pattern: str, flags: str = "") -> Regex:
    """Compile a pattern string into a :class:`Regex`."""
    return Regex(pattern, flags)
