"""Speculation fault injection and crash-tolerant measurement.

The paper's cost model (Sections III–IV) assumes that deoptimization is a
*correct* graceful-degradation path: a failed check reconstructs the
interpreter frame and execution continues with identical semantics.
Flückiger et al. show this transfer of state is exactly where speculative
JITs go wrong, and *Deoptless* motivates handling repeated deopts
gracefully instead of thrashing.  This package tests both properties on
the live engine:

* :mod:`~repro.resilience.faults` — deterministic, seedable
  :class:`FaultPlan`\\ s that perturb live benchmark state between
  iterations (SMI→double boxing, hidden-class transitions, elements-kind
  generalization, call-target rebinding, assumption invalidation, and
  forced spurious deopts);
* :mod:`~repro.resilience.oracle` — a differential oracle asserting the
  post-deopt results and heap are bitwise-identical to a pure-interpreter
  run under the same fault plan;
* ``python -m repro.resilience`` — the chaos CLI sweeping the injector
  across the whole suite on both ISAs.

Grid-level resilience (per-cell timeouts, crashed-worker retry,
quarantine, ``--keep-going``) lives in :mod:`repro.exec`.
"""

from .faults import Fault, FaultInjector, FaultKind, FaultPlan, plan_for
from .oracle import ChaosOutcome, canonical_value, differential_run, snapshot_globals

__all__ = [
    "ChaosOutcome",
    "Fault",
    "FaultInjector",
    "FaultKind",
    "FaultPlan",
    "canonical_value",
    "differential_run",
    "plan_for",
    "snapshot_globals",
]
