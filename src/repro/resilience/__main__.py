"""Chaos CLI: sweep the speculation fault injector across the suite.

Runs every benchmark under its canonical :func:`~repro.resilience.faults.plan_for`
fault plan on every requested ISA, and checks the differential oracle —
post-fault results and heap must be bitwise-identical to a pure-interpreter
run under the same plan.

    python -m repro.resilience                 # full sweep, arm64 + x64
    python -m repro.resilience --smoke         # quick CI slice
    python -m repro.resilience --benchmark FIB --seed 3 --iterations 50
    python -m repro.resilience --corpus        # include fuzz-corpus programs
    python -m repro.resilience fuzz --count 200 --jobs 4   # the fuzz fleet

Exit code 0 when every cell recovers and matches; 1 otherwise.
"""

from __future__ import annotations

import argparse
import sys
from concurrent.futures import ProcessPoolExecutor
from typing import List, Tuple

from ..suite.spec import all_benchmarks
from .oracle import ChaosOutcome, differential_run

#: fast slice exercising every fault kind across categories (CI smoke job)
SMOKE_BENCHMARKS = ("FIB", "NBODY", "SPMV-CSR-SMI", "CRC32", "JSONLIKE", "RICH")


def _run_case(case: Tuple[str, str, int, int]) -> ChaosOutcome:
    benchmark, target, seed, iterations = case
    return differential_run(benchmark, target, seed=seed, iterations=iterations)


def _format_row(out: ChaosOutcome) -> str:
    verdict = "ok" if out.ok else "FAIL"
    return (
        f"{out.benchmark:<16} {out.target:<6} {verdict:<5} "
        f"eager={out.eager_deopts:<3} lazy={out.lazy_deopts:<3} "
        f"disp={out.continuation_dispatches:<3} "
        f"storms={out.storms_detected} reopt<={out.max_reopt_count} "
        f"faults={len(out.faults_applied)}"
    )


def main(argv: List[str] | None = None) -> int:
    argv = list(sys.argv[1:]) if argv is None else list(argv)
    if argv and argv[0] == "fuzz":
        from ..fuzz.cli import fuzz_main

        return fuzz_main(argv[1:])
    parser = argparse.ArgumentParser(
        prog="python -m repro.resilience",
        description="speculation fault-injection sweep with differential oracle",
    )
    parser.add_argument(
        "--benchmark", action="append", default=None,
        help="benchmark name (repeatable; default: whole suite)",
    )
    parser.add_argument(
        "--targets", nargs="+", default=["arm64", "x64"], help="ISAs to sweep"
    )
    parser.add_argument("--seed", type=int, default=0, help="plan seed")
    parser.add_argument(
        "--iterations", type=int, default=30, help="iterations per run"
    )
    parser.add_argument(
        "--jobs", type=int, default=1, help="parallel worker processes"
    )
    parser.add_argument(
        "--smoke", action="store_true",
        help=f"quick slice ({len(SMOKE_BENCHMARKS)} benchmarks, fewer iterations)",
    )
    parser.add_argument(
        "--corpus", action="store_true",
        help="also sweep every fuzz-corpus program (results/corpus/)",
    )
    parser.add_argument(
        "--verbose", action="store_true", help="print applied faults per cell"
    )
    args = parser.parse_args(argv)

    if args.benchmark:
        names = list(args.benchmark)
    elif args.smoke:
        names = list(SMOKE_BENCHMARKS)
    else:
        names = [spec.name for spec in all_benchmarks()]
    if args.corpus:
        from ..fuzz.corpus import load_corpus

        names.extend(entry.name for entry in load_corpus())
    iterations = min(args.iterations, 16) if args.smoke else args.iterations

    cases = [
        (name, target, args.seed, iterations)
        for name in names
        for target in args.targets
    ]
    print(
        f"chaos sweep: {len(names)} benchmark(s) x {len(args.targets)} "
        f"target(s), seed={args.seed}, {iterations} iterations"
    )

    if args.jobs > 1:
        with ProcessPoolExecutor(max_workers=args.jobs) as pool:
            outcomes = list(pool.map(_run_case, cases))
    else:
        outcomes = [_run_case(case) for case in cases]

    failures: List[ChaosOutcome] = []
    no_deopt: List[ChaosOutcome] = []
    for out in outcomes:
        print(_format_row(out))
        if args.verbose:
            for iteration, kind, detail in out.faults_applied:
                print(f"    @{iteration:<3} {kind}: {detail}")
        if not out.ok:
            failures.append(out)
        elif out.eager_deopts == 0:
            no_deopt.append(out)

    total = len(outcomes)
    print(
        f"\n{total - len(failures)}/{total} cells recovered with "
        f"interpreter-identical results"
    )
    if no_deopt:
        # The two anchored TRIP_CHECK faults should force eager deopts in
        # any cell whose optimized code runs; a zero here means the plan
        # never engaged speculation and the cell proved nothing.
        print(f"warning: {len(no_deopt)} cell(s) saw no eager deopt:")
        for out in no_deopt:
            print(f"  {out.benchmark} [{out.target}]")
    for out in failures:
        print(f"\nFAIL {out.benchmark} [{out.target}] seed={out.seed}")
        if out.error:
            print(f"  error: {out.error}")
        for line in out.mismatches:
            print(f"  mismatch: {line}")
        for iteration, kind, detail in out.faults_applied:
            print(f"  fault @{iteration}: {kind}: {detail}")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
