"""Deterministic speculation-fault injection.

A :class:`FaultPlan` schedules a handful of :class:`Fault`\\ s at fixed
iteration boundaries; :class:`FaultInjector` applies them to a live
:class:`~repro.engine.Engine` through ``BenchmarkRunner.run(injector=...)``.

Every fault is **value-preserving by construction**: it perturbs machine
representations, hidden classes, or speculation state, never the numbers a
benchmark computes.  Applied to two engines whose guest-visible state is
identical, a fault makes identical changes in both — which is what lets
the differential oracle demand bitwise-identical results from an optimized
run and a pure-interpreter run under the same plan.  The taxonomy:

``TRIP_CHECK``
    Arm the executor so the next executed deopt branch is taken even
    though its condition holds (a *spurious* eager deopt).  This is the
    purest state-transfer test: the machine state at the checkpoint is
    valid, and the materialized interpreter frame must reproduce it
    exactly.  No-op in an interpreter-only engine.
``BOX_SMI_GLOBAL``
    Replace an SMI-valued global with a HeapNumber of the same value:
    code specialized on SMI feedback hits NOT_A_SMI.
``SHAPE_SHIFT``
    Add a fresh property to a live object global: hidden-class transition,
    destabilizing the old map (WRONG_MAP / dependency invalidation).
``ELEMENTS_TRANSITION``
    Re-store an SMI array's first element as a boxed double of the same
    value: PACKED_SMI → PACKED_DOUBLE generalization.
``POLY_CALL``
    Rebind a function-valued global to a *fresh* closure over the same
    SharedFunction: monomorphic call sites embedding the canonical closure
    word hit WRONG_CALL_TARGET; call semantics are unchanged.
``INVALIDATE_CODE``
    Destabilize every map that live optimized code depends on (falling
    back to direct invalidation when code has no map dependencies):
    assumptions die while code is off-stack, forcing lazy deopts at the
    next invocation.  No-op in an interpreter-only engine.
``CONTINUATION_FLIP``
    Arm one or two forced guard flips at dispatch points: each lands as
    a spurious deopt that the deoptless tier re-dispatches into a
    specialized continuation (repro.machine.continuations), exercising
    the OSR state transfer instead of the bailout path.  Equivalent to
    ``TRIP_CHECK`` when continuations are off.
``POISON_VARIANT``
    Poison the next few continuation-variant lookups: the cached variant
    is treated as lost and lazily recompiled mid-dispatch.  The dispatch
    still succeeds — only the lookup/compile machinery is stressed.
    No-op when continuations are off.
``REDISPATCH_LOOP``
    Arm a forced re-dispatch loop: after every dispatched continuation
    the same guard is flipped again, so dispatches chain until the
    cycle-budget breaker refuses further re-dispatch and the classic
    bailout path terminates the loop (the livelock-freedom proof).
    Equivalent to ``TRIP_CHECK`` when continuations are off.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from enum import Enum
from typing import Dict, List, Tuple

from ..suite.runner import stable_seed
from ..values.heap import HeapError
from ..values.maps import ElementsKind, InstanceType
from ..values.tagged import is_smi, pointer_untag, smi_untag

#: mixed into every plan seed so chaos streams are independent of the
#: benchmark-noise streams that also key off stable_seed()
_PLAN_SALT = 0x5EEDFA117


class FaultKind(Enum):
    TRIP_CHECK = "trip-check"
    BOX_SMI_GLOBAL = "box-smi-global"
    SHAPE_SHIFT = "shape-shift"
    ELEMENTS_TRANSITION = "elements-transition"
    POLY_CALL = "poly-call"
    INVALIDATE_CODE = "invalidate-code"
    CONTINUATION_FLIP = "continuation-flip"
    POISON_VARIANT = "poison-variant-lookup"
    REDISPATCH_LOOP = "redispatch-loop"


@dataclass(frozen=True)
class Fault:
    """One scheduled perturbation: *kind* applied before iteration *iteration*."""

    iteration: int
    kind: FaultKind
    #: disambiguates target selection when one iteration carries several
    #: faults of the same kind
    salt: int = 0


@dataclass(frozen=True)
class FaultPlan:
    """A deterministic, seedable schedule of faults for one benchmark."""

    benchmark: str
    seed: int
    faults: Tuple[Fault, ...]

    def describe(self) -> str:
        parts = ", ".join(f"{f.kind.value}@{f.iteration}" for f in self.faults)
        return f"plan[{self.benchmark} seed={self.seed}]({parts})"


def plan_for(benchmark: str, seed: int, iterations: int) -> FaultPlan:
    """Build the canonical chaos plan for one benchmark run.

    Two forced check trips anchor the plan (one after warm-up, one late),
    guaranteeing at least one eager deopt whenever optimized code with
    deopt branches runs at all; two to four further faults are drawn from
    the perturbation taxonomy at rng-chosen iterations.  Same arguments →
    same plan, in any process.
    """
    rng = random.Random((stable_seed(benchmark) ^ _PLAN_SALT) * 2654435761 + seed)
    first_trip = max(2, iterations // 3)
    second_trip = max(first_trip + 1, (2 * iterations) // 3)
    faults: List[Fault] = [
        Fault(first_trip, FaultKind.TRIP_CHECK),
        Fault(second_trip, FaultKind.TRIP_CHECK, salt=1),
    ]
    others = [
        FaultKind.BOX_SMI_GLOBAL,
        FaultKind.SHAPE_SHIFT,
        FaultKind.ELEMENTS_TRANSITION,
        FaultKind.POLY_CALL,
        FaultKind.INVALIDATE_CODE,
        FaultKind.CONTINUATION_FLIP,
        FaultKind.POISON_VARIANT,
        FaultKind.REDISPATCH_LOOP,
    ]
    for salt in range(rng.randint(2, 4)):
        kind = rng.choice(others)
        iteration = rng.randint(1, max(1, iterations - 1))
        faults.append(Fault(iteration, kind, salt=salt + 2))
    faults.sort(key=lambda f: (f.iteration, f.kind.value, f.salt))
    return FaultPlan(benchmark, seed, tuple(faults))


class FaultInjector:
    """Applies a :class:`FaultPlan` to a live engine between iterations.

    Target selection draws only on the plan (not on Python object
    identity) and on guest-visible heap state, so two engines in identical
    states make identical choices — the property the differential oracle
    relies on.  ``applied`` records ``(iteration, kind, detail)`` triples
    for reporting.
    """

    def __init__(self, plan: FaultPlan) -> None:
        self.plan = plan
        self._by_iteration: Dict[int, List[Fault]] = {}
        for fault in plan.faults:
            self._by_iteration.setdefault(fault.iteration, []).append(fault)
        self.applied: List[Tuple[int, str, str]] = []

    def before_iteration(self, engine, iteration: int) -> None:
        for fault in self._by_iteration.get(iteration, ()):
            detail = self._apply(engine, fault)
            self.applied.append((iteration, fault.kind.value, detail))

    # ------------------------------------------------------------------

    def _rng(self, fault: Fault) -> random.Random:
        return random.Random(
            (stable_seed(self.plan.benchmark) ^ _PLAN_SALT)
            * 1000003
            + self.plan.seed * 7919
            + fault.iteration * 31
            + fault.salt
        )

    def _apply(self, engine, fault: Fault) -> str:
        handler = {
            FaultKind.TRIP_CHECK: self._trip_check,
            FaultKind.BOX_SMI_GLOBAL: self._box_smi_global,
            FaultKind.SHAPE_SHIFT: self._shape_shift,
            FaultKind.ELEMENTS_TRANSITION: self._elements_transition,
            FaultKind.POLY_CALL: self._poly_call,
            FaultKind.INVALIDATE_CODE: self._invalidate_code,
            FaultKind.CONTINUATION_FLIP: self._continuation_flip,
            FaultKind.POISON_VARIANT: self._poison_variant,
            FaultKind.REDISPATCH_LOOP: self._redispatch_loop,
        }[fault.kind]
        return handler(engine, fault)

    def _globals_of_type(self, engine, predicate) -> List[str]:
        names = []
        for name in engine.user_global_names():
            word = engine.get_global_word(name)
            if word is not None and predicate(engine, word):
                names.append(name)
        return names

    # -- fault implementations ------------------------------------------

    def _trip_check(self, engine, fault: Fault) -> str:
        engine.executor.forced_deopt_trips += 1
        return "armed 1 forced deopt-branch trip"

    def _continuation_flip(self, engine, fault: Fault) -> str:
        trips = 1 + self._rng(fault).randrange(2)
        engine.executor.forced_deopt_trips += trips
        return f"armed {trips} forced guard flip(s) at dispatch points"

    def _poison_variant(self, engine, fault: Fault) -> str:
        table = getattr(engine, "continuations", None)
        if table is None:
            return "no-op (continuation dispatch off)"
        misses = 1 + self._rng(fault).randrange(3)
        table.poison_misses += misses
        return f"poisoned the next {misses} continuation-variant lookup(s)"

    def _redispatch_loop(self, engine, fault: Fault) -> str:
        table = getattr(engine, "continuations", None)
        engine.executor.forced_deopt_trips += 1
        if table is None:
            return "armed 1 forced trip (continuation dispatch off)"
        rearms = 6 + self._rng(fault).randrange(6)
        table.loop_armed += rearms
        return (
            f"armed a forced re-dispatch loop ({rearms} guard re-arms; "
            "the cycle-budget breaker must terminate it)"
        )

    def _box_smi_global(self, engine, fault: Fault) -> str:
        candidates = self._globals_of_type(
            engine, lambda e, w: is_smi(w)
        )
        if not candidates:
            return "no-op (no SMI-valued globals)"
        name = self._rng(fault).choice(sorted(candidates))
        word = engine.get_global_word(name)
        value = smi_untag(word)
        engine.set_global_word(name, engine.heap.alloc_number(float(value)))
        return f"boxed global {name!r} (= {value})"

    def _shape_shift(self, engine, fault: Fault) -> str:
        def is_plain_object(e, w):
            if is_smi(w):
                return False
            itype = e.heap.map_of(pointer_untag(w)).instance_type
            return (
                itype == InstanceType.JS_OBJECT and e.regex_from_word(w) is None
            )

        candidates = self._globals_of_type(engine, is_plain_object)
        if not candidates:
            return "no-op (no object globals)"
        name = self._rng(fault).choice(sorted(candidates))
        word = engine.get_global_word(name)
        prop = f"__chaos{fault.iteration}_{fault.salt}"
        try:
            engine.heap.object_set_property(word, prop, engine.heap.to_word(1))
        except HeapError:
            # Object at in-object capacity: the transition is impossible in
            # both engines alike, so skipping preserves parity.
            return f"no-op (global {name!r} at property capacity)"
        return f"added property {prop!r} to global {name!r} (map transition)"

    def _elements_transition(self, engine, fault: Fault) -> str:
        def is_smi_array(e, w):
            if is_smi(w):
                return False
            addr = pointer_untag(w)
            a_map = e.heap.map_of(addr)
            return (
                a_map.instance_type == InstanceType.JS_ARRAY
                and a_map.elements_kind == ElementsKind.PACKED_SMI
                and e.heap.array_length(w) > 0
            )

        candidates = self._globals_of_type(engine, is_smi_array)
        if not candidates:
            return "no-op (no packed-SMI array globals)"
        name = self._rng(fault).choice(sorted(candidates))
        word = engine.get_global_word(name)
        element = engine.heap.array_get(word, 0)
        value = smi_untag(element)
        engine.heap.array_set(word, 0, engine.heap.alloc_number(float(value)))
        return f"generalized elements of global {name!r} (SMI -> double)"

    def _poly_call(self, engine, fault: Fault) -> str:
        def is_user_function(e, w):
            index = e.shared_index_of_function(w)
            return index >= 0 and e.functions[index].info is not None

        candidates = self._globals_of_type(engine, is_user_function)
        if not candidates:
            return "no-op (no function globals)"
        name = self._rng(fault).choice(sorted(candidates))
        word = engine.get_global_word(name)
        index = engine.shared_index_of_function(word)
        engine.set_global_word(name, engine.heap.alloc_function(index))
        return f"rebound global {name!r} to a fresh closure (same function)"

    def _invalidate_code(self, engine, fault: Fault) -> str:
        codes = [f.code for f in engine.functions if f.code is not None]
        if not codes:
            return "no-op (no optimized code live)"
        maps = set()
        for code in codes:
            maps.update(code.map_dependencies)
        if maps:
            for a_map in sorted(maps, key=id):
                a_map.destabilize()
            return f"destabilized {len(maps)} depended-on map(s)"
        for code in codes:
            code.invalidated = True
        return f"invalidated {len(codes)} code object(s) directly"
