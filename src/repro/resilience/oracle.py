"""Differential oracle: the executor ladder as an N-way tier matrix.

Deoptimization is only correct if it is *invisible*: a run that tiers up,
speculates, takes injected faults, deopts and re-optimizes must produce
exactly the results of an interpreter-only run under the same fault plan.
:func:`differential_run` executes the classic pairwise comparison
(optimized vs. pure interpreter); :func:`matrix_run` generalizes it to
the full :data:`EXECUTOR_LADDER` — pure interpreter, optimizer with
every machine executor off, blockjit, +typed blocks, +traces, +lbbv
versions, and everything with deoptless dispatch — with a per-tier
:class:`ChaosOutcome` breakdown.  Both compare

* every iteration's ``run()`` result,
* a canonical snapshot of all user-defined globals after the run, and
* (matrix only) the eager-deopt event stream across the tiers that
  share the classic bailout discipline — ``opt`` through ``lbbv`` are
  bit-identical by construction, while ``deoptless`` keeps optimized
  code installed on trips so its stream may legitimately differ

under a **bitwise** notion of equality for numbers: values are compared as
IEEE-754 bit patterns (so ``-0.0 != 0.0`` and NaN payloads must agree),
while the SMI/HeapNumber *representation* split — which legitimately
differs between tiers — is normalized away by converting through double.
"""

from __future__ import annotations

import dataclasses
import struct
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from ..engine import Engine, EngineConfig
from ..jit.checks import DeoptCategory, category_of
from ..suite.runner import BenchmarkRunner, NoiseModel, RunResult
from ..suite.spec import BenchmarkSpec, get_benchmark
from ..values.maps import InstanceType
from ..values.tagged import is_smi, pointer_untag, smi_untag
from .faults import FaultInjector, FaultPlan

#: cap on mismatch details carried back to the caller/CLI
_MAX_MISMATCHES = 5

#: tamper(tier_name, values) -> possibly-corrupted values (seeded faults)
ValueTamper = Callable[[str, List[object]], List[object]]


def canonical_value(value: object) -> str:
    """Canonical text form of a Python-level guest value.

    Numbers collapse to their double bit pattern (bitwise comparison that
    is agnostic to the SMI/boxed split); containers canonicalize
    recursively.
    """
    if value is None:
        return "u"
    if isinstance(value, bool):
        return "b:1" if value else "b:0"
    if isinstance(value, (int, float)):
        return "d:" + struct.pack("<d", float(value)).hex()
    if isinstance(value, str):
        return "s:" + value
    if isinstance(value, list):
        return "[" + ",".join(canonical_value(v) for v in value) + "]"
    if isinstance(value, dict):
        return (
            "{"
            + ",".join(
                f"{k}=" + canonical_value(value[k]) for k in sorted(value)
            )
            + "}"
        )
    return "?:" + repr(value)


def _canonical_word(engine: Engine, word: int, depth: int, seen: frozenset) -> str:
    """Canonicalize a tagged heap word without leaking heap addresses."""
    heap = engine.heap
    if is_smi(word):
        return "d:" + struct.pack("<d", float(smi_untag(word))).hex()
    addr = pointer_untag(word)
    if depth > 6 or addr in seen:
        return "..."
    itype = heap.map_of(addr).instance_type
    if itype == InstanceType.JS_FUNCTION:
        index = engine.shared_index_of_function(word)
        return f"fn:{engine.functions[index].name}"
    if itype == InstanceType.JS_ARRAY:
        seen = seen | {addr}
        return (
            "["
            + ",".join(
                _canonical_word(engine, heap.array_get(word, i), depth + 1, seen)
                for i in range(heap.array_length(word))
            )
            + "]"
        )
    if itype == InstanceType.JS_OBJECT:
        seen = seen | {addr}
        offsets = heap.map_of(addr).property_offsets
        return (
            "{"
            + ",".join(
                f"{name}="
                + _canonical_word(
                    engine, heap.read(addr, offsets[name]), depth + 1, seen
                )
                for name in sorted(offsets)
            )
            + "}"
        )
    return canonical_value(heap.to_python(word))


def snapshot_globals(engine: Engine) -> Dict[str, str]:
    """Canonical form of every user-defined global (post-run heap state).

    Names are visited in sorted order so the snapshot — and any diff or
    serialization derived from it — is byte-stable across processes and
    PYTHONHASHSEED values, not dependent on definition/insertion order.
    """
    out: Dict[str, str] = {}
    for name in sorted(engine.user_global_names()):
        word = engine.get_global_word(name)
        assert word is not None
        out[name] = _canonical_word(engine, word, 0, frozenset())
    return out


@dataclass(frozen=True)
class TierSpec:
    """One rung of the executor ladder as an engine-config transform.

    ``None`` flags defer to the base config (and its REPRO_* env
    defaults); explicit booleans pin the executor on or off so a ladder
    run is insensitive to the ambient environment.
    """

    name: str
    #: participates in cross-tier deopt-stream comparison?  True for the
    #: tiers sharing the classic bailout discipline (bit-identical eager
    #: deopt streams by construction); False for the interpreter (which
    #: never deopts) and for deoptless dispatch (which absorbs trips
    #: instead of bailing, legitimately changing the stream).
    compare_deopts: bool = True
    optimizer: bool = True
    blockjit: Optional[bool] = None
    typed_blocks: Optional[bool] = None
    tracejit: Optional[bool] = None
    lbbv: Optional[bool] = None
    continuations: Optional[bool] = None

    def apply(self, base: EngineConfig) -> EngineConfig:
        overrides: Dict[str, object] = {"enable_optimizer": self.optimizer}
        for flag in ("blockjit", "typed_blocks", "tracejit", "lbbv", "continuations"):
            value = getattr(self, flag)
            if value is not None:
                overrides[flag] = value
        return dataclasses.replace(base, **overrides)  # type: ignore[arg-type]


#: The full executor ladder, weakest to strongest speculation.  Feature
#: dependencies (typed requires blockjit; lbbv requires blockjit+typed)
#: are satisfied by construction of each rung.
EXECUTOR_LADDER: Tuple[TierSpec, ...] = (
    TierSpec("interp", compare_deopts=False, optimizer=False,
             blockjit=False, typed_blocks=False, tracejit=False,
             lbbv=False, continuations=False),
    TierSpec("opt", blockjit=False, typed_blocks=False, tracejit=False,
             lbbv=False, continuations=False),
    TierSpec("block", blockjit=True, typed_blocks=False, tracejit=False,
             lbbv=False, continuations=False),
    TierSpec("typed", blockjit=True, typed_blocks=True, tracejit=False,
             lbbv=False, continuations=False),
    TierSpec("trace", blockjit=True, typed_blocks=True, tracejit=True,
             lbbv=False, continuations=False),
    TierSpec("lbbv", blockjit=True, typed_blocks=True, tracejit=True,
             lbbv=True, continuations=False),
    TierSpec("deoptless", compare_deopts=False, blockjit=True,
             typed_blocks=True, tracejit=True, lbbv=True, continuations=True),
)

#: name -> TierSpec lookup for CLI --targets parsing
LADDER_BY_NAME: Dict[str, TierSpec] = {tier.name: tier for tier in EXECUTOR_LADDER}


@dataclass
class ChaosOutcome:
    """One benchmark × target × plan chaos verdict."""

    benchmark: str
    target: str
    seed: int
    ok: bool
    eager_deopts: int
    lazy_deopts: int
    storms_detected: int
    max_reopt_count: int
    #: deoptless re-dispatches (repro.machine.continuations) — trips the
    #: engine absorbed without abandoning optimized execution
    continuation_dispatches: int = 0
    faults_applied: List[Tuple[int, str, str]] = field(default_factory=list)
    mismatches: List[str] = field(default_factory=list)
    error: Optional[str] = None
    resilience: Dict[str, object] = field(default_factory=dict)

    @property
    def recovered(self) -> bool:
        """Did the optimized run survive every injected fault?"""
        return self.error is None


def _chaos_run(
    spec: BenchmarkSpec,
    config: EngineConfig,
    plan: FaultPlan,
    iterations: int,
) -> Tuple[RunResult, Engine, FaultInjector]:
    runner = BenchmarkRunner(spec, config, NoiseModel(enabled=False))
    injector = FaultInjector(plan)
    result = runner.run(
        iterations=iterations, injector=injector, collect_values=True
    )
    assert runner.last_engine is not None
    return result, runner.last_engine, injector


def _capture_oracle_bundle(
    benchmark: str,
    target: str,
    plan: "FaultPlan",
    iterations: int,
    mismatches: Optional[List[str]] = None,
    error: Optional[str] = None,
) -> None:
    """Crash-forensics record for an oracle failure: the fault plan plus
    benchmark/seed is everything ``repro.supervise replay`` needs to
    re-run the differential comparison deterministically."""
    from ..supervise.bundles import capture_bundle, serialize_plan

    capture_bundle("oracle-failure", {
        "benchmark": benchmark,
        "target": target,
        "iterations": iterations,
        "seed": plan.seed,
        "fault_plan": serialize_plan(plan),
        "mismatches": list(mismatches or []),
        "error": error,
    })


def resolve_benchmark(name: str) -> BenchmarkSpec:
    """Suite benchmark by name, falling back to the fuzz corpus.

    Lets every chaos entry point (CLI sweep, replay, grid cells) address
    graduated ``FZ-<seed>`` programs exactly like suite members.
    """
    try:
        return get_benchmark(name)
    except KeyError:
        from ..fuzz.corpus import corpus_benchmark

        spec = corpus_benchmark(name)
        if spec is None:
            raise KeyError(name) from None
        return spec


def differential_run(
    benchmark: str,
    target: str,
    plan: Optional[FaultPlan] = None,
    seed: int = 0,
    iterations: int = 30,
) -> ChaosOutcome:
    """Run one benchmark under a fault plan on the optimizing engine and on
    the interpreter, and compare bitwise."""
    from .faults import plan_for

    spec = resolve_benchmark(benchmark)
    if plan is None:
        plan = plan_for(benchmark, seed, iterations)

    try:
        opt_result, opt_engine, injector = _chaos_run(
            spec, EngineConfig(target=target), plan, iterations
        )
    except Exception as failure:  # recovery failure IS the signal here
        _capture_oracle_bundle(
            benchmark, target, plan, iterations,
            error=f"{type(failure).__name__}: {failure}",
        )
        return ChaosOutcome(
            benchmark,
            target,
            plan.seed,
            ok=False,
            eager_deopts=0,
            lazy_deopts=0,
            storms_detected=0,
            max_reopt_count=0,
            error=f"{type(failure).__name__}: {failure}",
        )
    ref_result, ref_engine, _ = _chaos_run(
        spec,
        EngineConfig(target=target, enable_optimizer=False),
        plan,
        iterations,
    )

    mismatches: List[str] = []
    assert opt_result.values is not None and ref_result.values is not None
    for index, (got, want) in enumerate(zip(opt_result.values, ref_result.values)):
        if canonical_value(got) != canonical_value(want):
            mismatches.append(
                f"iteration {index}: optimized {got!r} != interpreter {want!r}"
            )
            if len(mismatches) >= _MAX_MISMATCHES:
                break
    if len(mismatches) < _MAX_MISMATCHES:
        opt_heap = snapshot_globals(opt_engine)
        ref_heap = snapshot_globals(ref_engine)
        for name in sorted(set(opt_heap) | set(ref_heap)):
            if opt_heap.get(name) != ref_heap.get(name):
                mismatches.append(f"global {name!r} diverged post-run")
                if len(mismatches) >= _MAX_MISMATCHES:
                    break

    if mismatches:
        _capture_oracle_bundle(
            benchmark, target, plan, iterations, mismatches=mismatches
        )
    stats = opt_engine.resilience_stats()
    eager = sum(
        1
        for event in opt_engine.deopt_events
        if category_of(event.kind) != DeoptCategory.SOFT
    )
    return ChaosOutcome(
        benchmark,
        target,
        plan.seed,
        ok=not mismatches,
        eager_deopts=eager,
        lazy_deopts=opt_engine.lazy_deopts,
        storms_detected=opt_engine.storms_detected,
        max_reopt_count=int(stats["max_reopt_count"]),  # type: ignore[arg-type]
        continuation_dispatches=int(
            stats["continuation_dispatches"]  # type: ignore[arg-type]
        ),
        faults_applied=list(injector.applied),
        mismatches=mismatches,
        resilience=stats,
    )


# ---------------------------------------------------------------------------
# N-way tier matrix
# ---------------------------------------------------------------------------


def deopt_stream(engine: Engine) -> List[Tuple[int, str, str, int, int]]:
    """Canonical eager-deopt event stream of a finished run.

    ``(iteration, function, kind, bytecode_pc, check_id)`` per event —
    everything semantically meaningful, nothing timing-dependent (cycle
    counts differ legitimately between executors).
    """
    return [
        (event.iteration, event.function_name, event.kind.name,
         event.bytecode_pc, event.check_id)
        for event in engine.deopt_events
        if category_of(event.kind) != DeoptCategory.SOFT
    ]


@dataclass
class MatrixOutcome:
    """Verdict of one program run through the full executor ladder."""

    benchmark: str
    target: str
    seed: int
    ok: bool
    #: tier name -> per-tier verdict, in ladder order; each tier is
    #: compared against the baseline (first) tier
    tiers: Dict[str, ChaosOutcome]
    #: canonical per-iteration values of the baseline tier
    baseline: str = "interp"

    @property
    def mismatches(self) -> List[str]:
        out: List[str] = []
        for name, outcome in self.tiers.items():
            out.extend(f"[{name}] {m}" for m in outcome.mismatches)
            if outcome.error:
                out.append(f"[{name}] error: {outcome.error}")
        return out


def _compare_streams(
    got: List[Tuple[int, str, str, int, int]],
    want: List[Tuple[int, str, str, int, int]],
    mismatches: List[str],
) -> None:
    if got == want:
        return
    if len(got) != len(want):
        mismatches.append(
            f"deopt stream length {len(got)} != {len(want)}"
        )
    for index, (g, w) in enumerate(zip(got, want)):
        if g != w:
            mismatches.append(f"deopt event {index}: {g!r} != {w!r}")
        if len(mismatches) >= _MAX_MISMATCHES:
            return


def matrix_run(
    spec: BenchmarkSpec,
    target: str = "arm64",
    plan: Optional[FaultPlan] = None,
    iterations: int = 30,
    base_config: Optional[EngineConfig] = None,
    tiers: Tuple[TierSpec, ...] = EXECUTOR_LADDER,
    capture: bool = True,
    tamper: Optional[ValueTamper] = None,
) -> MatrixOutcome:
    """Run ``spec`` through every ladder tier and demand equivalence.

    The first tier is the baseline: every other tier must match its
    per-iteration values and post-run globals snapshot bitwise, and all
    ``compare_deopts`` tiers must additionally agree on the eager-deopt
    event stream among themselves.  Accepts a :class:`BenchmarkSpec`
    directly so generated (unregistered) programs can be run; pass
    ``capture=False`` when the caller owns bundle capture (the fuzz
    oracle records richer ``fuzz-divergence`` bundles instead).

    ``tamper(tier_name, values) -> values`` corrupts a tier's collected
    per-iteration values *before* comparison — the seeded-fault hook
    (REPRO_CHAOS_FUZZ) that proves the divergence→bundle→replay→minimize
    pipeline stays live end to end.
    """
    from .faults import plan_for

    if plan is None:
        plan = plan_for(spec.name, 0, iterations)
    base = base_config or EngineConfig()
    base = dataclasses.replace(base, target=target)

    outcomes: Dict[str, ChaosOutcome] = {}
    baseline_values: Optional[List[object]] = None
    baseline_globals: Optional[Dict[str, str]] = None
    reference_stream: Optional[List[Tuple[int, str, str, int, int]]] = None

    for tier in tiers:
        config = tier.apply(base)
        try:
            result, engine, injector = _chaos_run(spec, config, plan, iterations)
        except Exception as failure:
            outcomes[tier.name] = ChaosOutcome(
                spec.name, target, plan.seed, ok=False,
                eager_deopts=0, lazy_deopts=0, storms_detected=0,
                max_reopt_count=0,
                error=f"{type(failure).__name__}: {failure}",
            )
            continue

        mismatches: List[str] = []
        assert result.values is not None
        values = result.values
        if tamper is not None:
            values = tamper(tier.name, list(values))
        tier_globals = snapshot_globals(engine)
        if baseline_values is None:
            baseline_values = values
            baseline_globals = tier_globals
        else:
            for index, (got, want) in enumerate(
                zip(values, baseline_values)
            ):
                if canonical_value(got) != canonical_value(want):
                    mismatches.append(
                        f"iteration {index}: {got!r} != baseline {want!r}"
                    )
                    if len(mismatches) >= _MAX_MISMATCHES:
                        break
            assert baseline_globals is not None
            if len(mismatches) < _MAX_MISMATCHES:
                for name in sorted(set(tier_globals) | set(baseline_globals)):
                    if tier_globals.get(name) != baseline_globals.get(name):
                        mismatches.append(
                            f"global {name!r} diverged from baseline"
                        )
                        if len(mismatches) >= _MAX_MISMATCHES:
                            break
        if tier.compare_deopts and len(mismatches) < _MAX_MISMATCHES:
            stream = deopt_stream(engine)
            if reference_stream is None:
                reference_stream = stream
            else:
                _compare_streams(stream, reference_stream, mismatches)

        stats = engine.resilience_stats()
        outcomes[tier.name] = ChaosOutcome(
            spec.name, target, plan.seed,
            ok=not mismatches,
            eager_deopts=len(deopt_stream(engine)),
            lazy_deopts=engine.lazy_deopts,
            storms_detected=engine.storms_detected,
            max_reopt_count=int(stats["max_reopt_count"]),  # type: ignore[arg-type]
            continuation_dispatches=int(
                stats["continuation_dispatches"]  # type: ignore[arg-type]
            ),
            faults_applied=list(injector.applied),
            mismatches=mismatches,
            resilience=stats,
        )

    ok = all(outcome.ok and outcome.error is None for outcome in outcomes.values())
    outcome = MatrixOutcome(
        benchmark=spec.name,
        target=target,
        seed=plan.seed,
        ok=ok,
        tiers=outcomes,
        baseline=tiers[0].name if tiers else "interp",
    )
    if not ok and capture:
        _capture_oracle_bundle(
            spec.name, target, plan, iterations,
            mismatches=outcome.mismatches[:_MAX_MISMATCHES],
        )
    return outcome
