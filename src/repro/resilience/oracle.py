"""Differential oracle: faulted optimized run vs. pure-interpreter run.

Deoptimization is only correct if it is *invisible*: a run that tiers up,
speculates, takes injected faults, deopts and re-optimizes must produce
exactly the results of an interpreter-only run under the same fault plan.
:func:`differential_run` executes both and compares

* every iteration's ``run()`` result, and
* a canonical snapshot of all user-defined globals after the run

under a **bitwise** notion of equality for numbers: values are compared as
IEEE-754 bit patterns (so ``-0.0 != 0.0`` and NaN payloads must agree),
while the SMI/HeapNumber *representation* split — which legitimately
differs between tiers — is normalized away by converting through double.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..engine import Engine, EngineConfig
from ..jit.checks import DeoptCategory, category_of
from ..suite.runner import BenchmarkRunner, NoiseModel, RunResult
from ..suite.spec import BenchmarkSpec, get_benchmark
from ..values.maps import InstanceType
from ..values.tagged import is_smi, pointer_untag, smi_untag
from .faults import FaultInjector, FaultPlan

#: cap on mismatch details carried back to the caller/CLI
_MAX_MISMATCHES = 5


def canonical_value(value: object) -> str:
    """Canonical text form of a Python-level guest value.

    Numbers collapse to their double bit pattern (bitwise comparison that
    is agnostic to the SMI/boxed split); containers canonicalize
    recursively.
    """
    if value is None:
        return "u"
    if isinstance(value, bool):
        return "b:1" if value else "b:0"
    if isinstance(value, (int, float)):
        return "d:" + struct.pack("<d", float(value)).hex()
    if isinstance(value, str):
        return "s:" + value
    if isinstance(value, list):
        return "[" + ",".join(canonical_value(v) for v in value) + "]"
    if isinstance(value, dict):
        return (
            "{"
            + ",".join(
                f"{k}=" + canonical_value(value[k]) for k in sorted(value)
            )
            + "}"
        )
    return "?:" + repr(value)


def _canonical_word(engine: Engine, word: int, depth: int, seen: frozenset) -> str:
    """Canonicalize a tagged heap word without leaking heap addresses."""
    heap = engine.heap
    if is_smi(word):
        return "d:" + struct.pack("<d", float(smi_untag(word))).hex()
    addr = pointer_untag(word)
    if depth > 6 or addr in seen:
        return "..."
    itype = heap.map_of(addr).instance_type
    if itype == InstanceType.JS_FUNCTION:
        index = engine.shared_index_of_function(word)
        return f"fn:{engine.functions[index].name}"
    if itype == InstanceType.JS_ARRAY:
        seen = seen | {addr}
        return (
            "["
            + ",".join(
                _canonical_word(engine, heap.array_get(word, i), depth + 1, seen)
                for i in range(heap.array_length(word))
            )
            + "]"
        )
    if itype == InstanceType.JS_OBJECT:
        seen = seen | {addr}
        offsets = heap.map_of(addr).property_offsets
        return (
            "{"
            + ",".join(
                f"{name}="
                + _canonical_word(
                    engine, heap.read(addr, offsets[name]), depth + 1, seen
                )
                for name in sorted(offsets)
            )
            + "}"
        )
    return canonical_value(heap.to_python(word))


def snapshot_globals(engine: Engine) -> Dict[str, str]:
    """Canonical form of every user-defined global (post-run heap state)."""
    out: Dict[str, str] = {}
    for name in engine.user_global_names():
        word = engine.get_global_word(name)
        assert word is not None
        out[name] = _canonical_word(engine, word, 0, frozenset())
    return out


@dataclass
class ChaosOutcome:
    """One benchmark × target × plan chaos verdict."""

    benchmark: str
    target: str
    seed: int
    ok: bool
    eager_deopts: int
    lazy_deopts: int
    storms_detected: int
    max_reopt_count: int
    #: deoptless re-dispatches (repro.machine.continuations) — trips the
    #: engine absorbed without abandoning optimized execution
    continuation_dispatches: int = 0
    faults_applied: List[Tuple[int, str, str]] = field(default_factory=list)
    mismatches: List[str] = field(default_factory=list)
    error: Optional[str] = None
    resilience: Dict[str, object] = field(default_factory=dict)

    @property
    def recovered(self) -> bool:
        """Did the optimized run survive every injected fault?"""
        return self.error is None


def _chaos_run(
    spec: BenchmarkSpec,
    config: EngineConfig,
    plan: FaultPlan,
    iterations: int,
) -> Tuple[RunResult, Engine, FaultInjector]:
    runner = BenchmarkRunner(spec, config, NoiseModel(enabled=False))
    injector = FaultInjector(plan)
    result = runner.run(
        iterations=iterations, injector=injector, collect_values=True
    )
    assert runner.last_engine is not None
    return result, runner.last_engine, injector


def _capture_oracle_bundle(
    benchmark: str,
    target: str,
    plan: "FaultPlan",
    iterations: int,
    mismatches: Optional[List[str]] = None,
    error: Optional[str] = None,
) -> None:
    """Crash-forensics record for an oracle failure: the fault plan plus
    benchmark/seed is everything ``repro.supervise replay`` needs to
    re-run the differential comparison deterministically."""
    from ..supervise.bundles import capture_bundle, serialize_plan

    capture_bundle("oracle-failure", {
        "benchmark": benchmark,
        "target": target,
        "iterations": iterations,
        "seed": plan.seed,
        "fault_plan": serialize_plan(plan),
        "mismatches": list(mismatches or []),
        "error": error,
    })


def differential_run(
    benchmark: str,
    target: str,
    plan: Optional[FaultPlan] = None,
    seed: int = 0,
    iterations: int = 30,
) -> ChaosOutcome:
    """Run one benchmark under a fault plan on the optimizing engine and on
    the interpreter, and compare bitwise."""
    from .faults import plan_for

    spec = get_benchmark(benchmark)
    if plan is None:
        plan = plan_for(benchmark, seed, iterations)

    try:
        opt_result, opt_engine, injector = _chaos_run(
            spec, EngineConfig(target=target), plan, iterations
        )
    except Exception as failure:  # recovery failure IS the signal here
        _capture_oracle_bundle(
            benchmark, target, plan, iterations,
            error=f"{type(failure).__name__}: {failure}",
        )
        return ChaosOutcome(
            benchmark,
            target,
            plan.seed,
            ok=False,
            eager_deopts=0,
            lazy_deopts=0,
            storms_detected=0,
            max_reopt_count=0,
            error=f"{type(failure).__name__}: {failure}",
        )
    ref_result, ref_engine, _ = _chaos_run(
        spec,
        EngineConfig(target=target, enable_optimizer=False),
        plan,
        iterations,
    )

    mismatches: List[str] = []
    assert opt_result.values is not None and ref_result.values is not None
    for index, (got, want) in enumerate(zip(opt_result.values, ref_result.values)):
        if canonical_value(got) != canonical_value(want):
            mismatches.append(
                f"iteration {index}: optimized {got!r} != interpreter {want!r}"
            )
            if len(mismatches) >= _MAX_MISMATCHES:
                break
    if len(mismatches) < _MAX_MISMATCHES:
        opt_heap = snapshot_globals(opt_engine)
        ref_heap = snapshot_globals(ref_engine)
        for name in sorted(set(opt_heap) | set(ref_heap)):
            if opt_heap.get(name) != ref_heap.get(name):
                mismatches.append(f"global {name!r} diverged post-run")
                if len(mismatches) >= _MAX_MISMATCHES:
                    break

    if mismatches:
        _capture_oracle_bundle(
            benchmark, target, plan, iterations, mismatches=mismatches
        )
    stats = opt_engine.resilience_stats()
    eager = sum(
        1
        for event in opt_engine.deopt_events
        if category_of(event.kind) != DeoptCategory.SOFT
    )
    return ChaosOutcome(
        benchmark,
        target,
        plan.seed,
        ok=not mismatches,
        eager_deopts=eager,
        lazy_deopts=opt_engine.lazy_deopts,
        storms_detected=opt_engine.storms_detected,
        max_reopt_count=int(stats["max_reopt_count"]),  # type: ignore[arg-type]
        continuation_dispatches=int(
            stats["continuation_dispatches"]  # type: ignore[arg-type]
        ),
        faults_applied=list(injector.applied),
        mismatches=mismatches,
        resilience=stats,
    )
