"""Statistical analysis toolkit (Section IV of the paper)."""

from .analysis import (
    ALPHA,
    PRACTICAL_THRESHOLD,
    CorrelationResult,
    RegressionResult,
    SignificanceResult,
    bonferroni_alpha,
    bootstrap_interval,
    compare_populations,
    geometric_mean,
    linear_regression,
    pearson_correlation,
    summarize,
)

__all__ = [
    "ALPHA",
    "CorrelationResult",
    "PRACTICAL_THRESHOLD",
    "RegressionResult",
    "SignificanceResult",
    "bonferroni_alpha",
    "bootstrap_interval",
    "compare_populations",
    "geometric_mean",
    "linear_regression",
    "pearson_correlation",
    "summarize",
]
