"""Statistical toolkit for the paper's Section IV analyses.

* OLS linear regression with 95 % confidence intervals and R² (Fig. 9),
* Pearson correlation with the zero-correlation hypothesis test (Fig. 9),
* Wilcoxon signed-rank / rank-sum tests with Bonferroni correction for the
  per-benchmark significance decisions (Fig. 7),
* bootstrap percentile intervals for the error bars,
* the paper's *practical significance* rule: statistically significant
  **and** an effect larger than 2 %.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Tuple

import numpy as np
from scipy import stats as scipy_stats

#: paper Section IV-A: significance level, Bonferroni-adjusted per test count
ALPHA = 0.05
#: paper: "statistically significant performance difference > 2%"
PRACTICAL_THRESHOLD = 0.02


@dataclass
class RegressionResult:
    slope: float
    intercept: float
    r_squared: float
    slope_ci: Tuple[float, float]
    intercept_ci: Tuple[float, float]

    def predict(self, x: float) -> float:
        return self.slope * x + self.intercept


def linear_regression(xs: Sequence[float], ys: Sequence[float]) -> RegressionResult:
    """OLS with 95 % CIs on both coefficients."""
    x = np.asarray(xs, dtype=float)
    y = np.asarray(ys, dtype=float)
    n = len(x)
    if n < 3:
        raise ValueError("need at least 3 points for a regression")
    x_mean = x.mean()
    y_mean = y.mean()
    sxx = float(((x - x_mean) ** 2).sum())
    if sxx == 0:
        raise ValueError("degenerate x values")
    slope = float(((x - x_mean) * (y - y_mean)).sum() / sxx)
    intercept = y_mean - slope * x_mean
    residuals = y - (slope * x + intercept)
    ss_res = float((residuals**2).sum())
    ss_tot = float(((y - y_mean) ** 2).sum())
    r_squared = 1.0 - ss_res / ss_tot if ss_tot > 0 else 1.0
    dof = n - 2
    sigma2 = ss_res / dof if dof > 0 else 0.0
    slope_se = math.sqrt(sigma2 / sxx)
    intercept_se = math.sqrt(sigma2 * (1.0 / n + x_mean**2 / sxx))
    t_crit = float(scipy_stats.t.ppf(0.975, dof)) if dof > 0 else 0.0
    return RegressionResult(
        slope=slope,
        intercept=intercept,
        r_squared=r_squared,
        slope_ci=(slope - t_crit * slope_se, slope + t_crit * slope_se),
        intercept_ci=(
            intercept - t_crit * intercept_se,
            intercept + t_crit * intercept_se,
        ),
    )


@dataclass
class CorrelationResult:
    r: float
    r_squared: float
    p_value: float

    @property
    def significant(self) -> bool:
        return self.p_value < ALPHA


def pearson_correlation(xs: Sequence[float], ys: Sequence[float]) -> CorrelationResult:
    """Pearson r with the p-value of the zero-correlation null hypothesis."""
    r, p = scipy_stats.pearsonr(np.asarray(xs, float), np.asarray(ys, float))
    return CorrelationResult(r=float(r), r_squared=float(r) ** 2, p_value=float(p))


def bonferroni_alpha(test_count: int, alpha: float = ALPHA) -> float:
    """Adjusted per-test significance level (paper Section IV-A)."""
    return alpha / max(1, test_count)


@dataclass
class SignificanceResult:
    p_value: float
    effect: float  # relative difference (mean_a / mean_b - 1)
    statistically_significant: bool
    practically_significant: bool


def compare_populations(
    slower: Sequence[float],
    faster: Sequence[float],
    test_count: int = 1,
    paired: Optional[bool] = None,
) -> SignificanceResult:
    """Paper's per-benchmark test: are the two timing populations different,
    and is the effect > 2 %?

    Uses Wilcoxon signed-rank when paired (equal lengths), rank-sum
    otherwise — the nonparametric choices appropriate for skewed timing
    distributions ([17] in the paper's bibliography).
    """
    a = np.asarray(slower, float)
    b = np.asarray(faster, float)
    if paired is None:
        paired = len(a) == len(b)
    if paired and len(a) == len(b):
        diffs = a - b
        if np.allclose(diffs, 0):
            p_value = 1.0
        else:
            try:
                _stat, p_value = scipy_stats.wilcoxon(a, b)
            except ValueError:
                p_value = 1.0
    else:
        _stat, p_value = scipy_stats.ranksums(a, b)
    mean_b = float(b.mean())
    effect = float(a.mean()) / mean_b - 1.0 if mean_b else 0.0
    adjusted = bonferroni_alpha(test_count)
    statistically = bool(p_value < adjusted)
    return SignificanceResult(
        p_value=float(p_value),
        effect=effect,
        statistically_significant=statistically,
        practically_significant=statistically and abs(effect) > PRACTICAL_THRESHOLD,
    )


def bootstrap_interval(
    values: Sequence[float],
    confidence: float = 0.95,
    resamples: int = 2000,
    seed: int = 12345,
    statistic=None,
) -> Tuple[float, float]:
    """Percentile bootstrap interval for a statistic (default: the mean)."""
    data = list(values)
    if not data:
        return (0.0, 0.0)
    stat = statistic or (lambda xs: sum(xs) / len(xs))
    rng = random.Random(seed)
    estimates = []
    n = len(data)
    for _ in range(resamples):
        sample = [data[rng.randrange(n)] for _ in range(n)]
        estimates.append(stat(sample))
    estimates.sort()
    lo_index = int((1 - confidence) / 2 * resamples)
    hi_index = min(resamples - 1, int((1 + confidence) / 2 * resamples))
    return estimates[lo_index], estimates[hi_index]


def geometric_mean(values: Sequence[float]) -> float:
    vals = [v for v in values if v > 0]
    if not vals:
        return 0.0
    return math.exp(sum(math.log(v) for v in vals) / len(vals))


def summarize(values: Sequence[float]) -> Dict[str, float]:
    """Five-number-ish summary used by the distribution figures (Fig. 14)."""
    arr = np.asarray(list(values), float)
    if arr.size == 0:
        return {k: 0.0 for k in ("mean", "std", "min", "p25", "median", "p75", "max")}
    return {
        "mean": float(arr.mean()),
        "std": float(arr.std(ddof=1)) if arr.size > 1 else 0.0,
        "min": float(arr.min()),
        "p25": float(np.percentile(arr, 25)),
        "median": float(np.percentile(arr, 50)),
        "p75": float(np.percentile(arr, 75)),
        "max": float(arr.max()),
    }
