"""The extended JetStream2-like benchmark suite and its runner."""

from .runner import (
    BenchmarkRunner,
    NoiseModel,
    RunResult,
    compile_benchmark,
    compiled_code_objects,
    determine_removable_kinds,
    run_benchmark,
)
from .spec import (
    CATEGORIES,
    BenchmarkSpec,
    all_benchmarks,
    benchmarks_by_category,
    get_benchmark,
    smi_kernels,
)

__all__ = [
    "BenchmarkRunner",
    "BenchmarkSpec",
    "CATEGORIES",
    "NoiseModel",
    "RunResult",
    "all_benchmarks",
    "benchmarks_by_category",
    "compile_benchmark",
    "compiled_code_objects",
    "determine_removable_kinds",
    "get_benchmark",
    "run_benchmark",
    "smi_kernels",
]
