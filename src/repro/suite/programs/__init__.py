"""Benchmark program sources, one module per category.

Importing a module registers its benchmarks; `repro.suite.spec` imports all
of them lazily on first registry access.
"""
