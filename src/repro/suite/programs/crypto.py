"""Cryptography benchmarks: table-driven AES-like rounds, hashing, CRC32,
and modular exponentiation — high boundary/SMI/overflow check pressure per
the paper's Fig. 4 discussion.
"""

from ..spec import BenchmarkSpec, register

register(
    BenchmarkSpec(
        name="AES2",
        category="Crypto",
        smi_kernel=True,
        description="AES-like substitution/permutation rounds on SMI state",
        expected=None,
        source="""
var sbox = new Array(256);
var state = new Array(16);
var roundKeys = new Array(16 * 11);

function setup() {
  var s = 7;
  for (var i = 0; i < 256; i++) {
    s = (s * 13 + 91) % 256;
    sbox[i] = s;
  }
  for (var j = 0; j < 16; j++) { state[j] = (j * 17 + 3) % 256; }
  for (var k = 0; k < 16 * 11; k++) { roundKeys[k] = (k * 7 + 1) % 256; }
}

function subBytes() {
  for (var i = 0; i < 16; i++) { state[i] = sbox[state[i]]; }
}

function shiftRows() {
  for (var r = 1; r < 4; r++) {
    for (var s = 0; s < r; s++) {
      var t = state[r];
      state[r] = state[r + 4];
      state[r + 4] = state[r + 8];
      state[r + 8] = state[r + 12];
      state[r + 12] = t;
    }
  }
}

function mixColumns() {
  for (var c = 0; c < 4; c++) {
    var a0 = state[c * 4];
    var a1 = state[c * 4 + 1];
    var a2 = state[c * 4 + 2];
    var a3 = state[c * 4 + 3];
    state[c * 4] = (a0 ^ a1 ^ ((a2 << 1) & 255) ^ a3) & 255;
    state[c * 4 + 1] = (a1 ^ a2 ^ ((a3 << 1) & 255) ^ a0) & 255;
    state[c * 4 + 2] = (a2 ^ a3 ^ ((a0 << 1) & 255) ^ a1) & 255;
    state[c * 4 + 3] = (a3 ^ a0 ^ ((a1 << 1) & 255) ^ a2) & 255;
  }
}

function addRoundKey(round) {
  for (var i = 0; i < 16; i++) {
    state[i] = state[i] ^ roundKeys[round * 16 + i];
  }
}

function encryptBlock() {
  addRoundKey(0);
  for (var round = 1; round <= 10; round++) {
    subBytes();
    shiftRows();
    if (round < 10) { mixColumns(); }
    addRoundKey(round);
  }
}

function run() {
  for (var j = 0; j < 16; j++) { state[j] = (j * 17 + 3) % 256; }
  for (var blocks = 0; blocks < 4; blocks++) { encryptBlock(); }
  var check = 0;
  for (var i = 0; i < 16; i++) { check = (check * 31 + state[i]) % 1000003; }
  return check;
}
""",
    )
)

register(
    BenchmarkSpec(
        name="HASH",
        category="Crypto",
        smi_kernel=True,
        description="multiplicative string-hash over an SMI byte array",
        expected=None,
        source="""
var data = new Array(512);

function setup() {
  var s = 3;
  for (var i = 0; i < 512; i++) {
    s = (s * 37 + 11) % 251;
    data[i] = s;
  }
}

function hashRange(from, to) {
  var h = 5381;
  for (var i = from; i < to; i++) {
    h = ((h * 33) ^ data[i]) & 0xffffff;
  }
  return h;
}

function run() {
  var acc = 0;
  acc = acc + hashRange(0, 512);
  acc = acc + hashRange(128, 384);
  acc = acc + hashRange(256, 512);
  return acc & 0xffffff;
}
""",
    )
)

register(
    BenchmarkSpec(
        name="CRC32",
        category="Crypto",
        description="table-driven CRC32 over a byte array (int32 domain)",
        expected=None,
        source="""
var crcTable = new Array(256);
var message = new Array(256);

function setup() {
  for (var n = 0; n < 256; n++) {
    var c = n;
    for (var k = 0; k < 8; k++) {
      if ((c & 1) == 1) { c = (c >>> 1) ^ 0xedb88320; }
      else { c = c >>> 1; }
    }
    crcTable[n] = c | 0;
  }
  var s = 5;
  for (var i = 0; i < 256; i++) {
    s = (s * 29 + 17) % 253;
    message[i] = s;
  }
}

function crc32(from, to) {
  var crc = -1;
  for (var i = from; i < to; i++) {
    crc = (crc >>> 8) ^ crcTable[(crc ^ message[i]) & 255];
  }
  return (crc ^ -1) | 0;
}

function run() {
  return (crc32(0, 256) ^ crc32(64, 192)) & 0xfffffff;
}
""",
    )
)

register(
    BenchmarkSpec(
        name="CRYP",
        category="Crypto",
        description="modular exponentiation (square-and-multiply on SMIs)",
        expected=None,
        source="""
var MOD = 30011;

function modmul(a, b) { return (a * b) % MOD; }

function modpow(base, exponent) {
  var result = 1;
  var b = base % MOD;
  var e = exponent;
  while (e > 0) {
    if ((e & 1) == 1) { result = modmul(result, b); }
    b = modmul(b, b);
    e = e >> 1;
  }
  return result;
}

function setup() { }

function run() {
  var acc = 0;
  for (var i = 1; i < 40; i++) {
    acc = (acc + modpow(2 + i, 65537 + i)) % MOD;
  }
  return acc;
}
""",
    )
)
