"""Mathematical benchmarks (n-body, spectral norm, fluid solve, mandelbrot,
bit kernels, recursion, sieve) — the category the paper finds to carry the
highest check overheads (boundary, SMI and overflow checks, Section III-A).
"""

from ..spec import BenchmarkSpec, register

register(
    BenchmarkSpec(
        name="NBODY",
        category="Mathematical",
        description="planetary n-body simulation over double-typed objects",
        expected=None,
        tolerance=1e-9,
        source="""
var bodies = new Array(5);

function Body(x, y, z, vx, vy, vz, mass) {
  this.x = x; this.y = y; this.z = z;
  this.vx = vx; this.vy = vy; this.vz = vz;
  this.mass = mass;
}

function setup() {
  bodies[0] = new Body(0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 39.47841760435743);
  bodies[1] = new Body(4.841, -1.160, -0.103, 0.606, 2.811, -0.025, 0.0376);
  bodies[2] = new Body(8.343, 4.125, -0.403, -1.010, 1.825, 0.008, 0.0112);
  bodies[3] = new Body(12.894, -15.111, -0.223, 1.082, 0.868, -0.010, 0.0017);
  bodies[4] = new Body(15.379, -25.919, 0.179, 0.979, 0.594, -0.034, 0.0020);
}

function advance(dt) {
  var n = bodies.length;
  for (var i = 0; i < n; i++) {
    var bi = bodies[i];
    for (var j = i + 1; j < n; j++) {
      var bj = bodies[j];
      var dx = bi.x - bj.x;
      var dy = bi.y - bj.y;
      var dz = bi.z - bj.z;
      var d2 = dx * dx + dy * dy + dz * dz;
      var mag = dt / (d2 * Math.sqrt(d2));
      bi.vx = bi.vx - dx * bj.mass * mag;
      bi.vy = bi.vy - dy * bj.mass * mag;
      bi.vz = bi.vz - dz * bj.mass * mag;
      bj.vx = bj.vx + dx * bi.mass * mag;
      bj.vy = bj.vy + dy * bi.mass * mag;
      bj.vz = bj.vz + dz * bi.mass * mag;
    }
  }
  for (var k = 0; k < n; k++) {
    var b = bodies[k];
    b.x = b.x + dt * b.vx;
    b.y = b.y + dt * b.vy;
    b.z = b.z + dt * b.vz;
  }
}

function energy() {
  var e = 0.0;
  var n = bodies.length;
  for (var i = 0; i < n; i++) {
    var bi = bodies[i];
    e = e + 0.5 * bi.mass * (bi.vx * bi.vx + bi.vy * bi.vy + bi.vz * bi.vz);
    for (var j = i + 1; j < n; j++) {
      var bj = bodies[j];
      var dx = bi.x - bj.x;
      var dy = bi.y - bj.y;
      var dz = bi.z - bj.z;
      e = e - bi.mass * bj.mass / Math.sqrt(dx * dx + dy * dy + dz * dz);
    }
  }
  return e;
}

function run() {
  setup();
  for (var s = 0; s < 12; s++) { advance(0.01); }
  return energy();
}
""",
    )
)

register(
    BenchmarkSpec(
        name="SPECTRAL",
        category="Mathematical",
        description="spectral-norm power iteration over doubles",
        expected=None,
        tolerance=1e-9,
        source="""
var SN = 16;
var su = new Array(SN);
var sv = new Array(SN);
var stmp = new Array(SN);

function aEntry(i, j) {
  return 1.0 / ((i + j) * (i + j + 1) * 0.5 + i + 1.0);
}

function multiplyAv(vin, vout) {
  for (var i = 0; i < SN; i++) {
    var acc = 0.0;
    for (var j = 0; j < SN; j++) { acc = acc + aEntry(i, j) * vin[j]; }
    vout[i] = acc;
  }
}

function multiplyAtv(vin, vout) {
  for (var i = 0; i < SN; i++) {
    var acc = 0.0;
    for (var j = 0; j < SN; j++) { acc = acc + aEntry(j, i) * vin[j]; }
    vout[i] = acc;
  }
}

function setup() {
  for (var i = 0; i < SN; i++) { su[i] = 1.0; sv[i] = 0.0; stmp[i] = 0.0; }
}

function run() {
  setup();
  for (var s = 0; s < 2; s++) {
    multiplyAv(su, stmp);
    multiplyAtv(stmp, sv);
    multiplyAv(sv, stmp);
    multiplyAtv(stmp, su);
  }
  var vbv = 0.0;
  var vv = 0.0;
  for (var i = 0; i < SN; i++) {
    vbv = vbv + su[i] * sv[i];
    vv = vv + sv[i] * sv[i];
  }
  return Math.sqrt(vbv / vv);
}
""",
    )
)

register(
    BenchmarkSpec(
        name="NS",
        category="Mathematical",
        description="navier-stokes-lite: Jacobi linear solve on a small grid",
        expected=None,
        tolerance=1e-9,
        source="""
var GN = 12;
var grid = new Array(GN * GN);
var grid0 = new Array(GN * GN);

function setup() {
  for (var i = 0; i < GN * GN; i++) { grid[i] = 0.0; grid0[i] = 0.0; }
  grid0[GN * 5 + 5] = 100.0;
  grid0[GN * 7 + 3] = -40.0;
}

function linSolve(a, c, iters) {
  var inv = 1.0 / c;
  for (var t = 0; t < iters; t++) {
    for (var y = 1; y < GN - 1; y++) {
      for (var x = 1; x < GN - 1; x++) {
        var p = y * GN + x;
        grid[p] = (grid0[p] + a * (grid[p - 1] + grid[p + 1] +
                   grid[p - GN] + grid[p + GN])) * inv;
      }
    }
  }
}

function run() {
  setup();
  linSolve(1.0, 5.0, 6);
  var check = 0.0;
  for (var i = 0; i < GN * GN; i++) { check = check + grid[i] * grid[i]; }
  return check;
}
""",
    )
)

register(
    BenchmarkSpec(
        name="MANDEL",
        category="Mathematical",
        description="mandelbrot escape counting (doubles + SMI counters)",
        expected=None,
        source="""
function setup() { }

function run() {
  var count = 0;
  for (var py = 0; py < 20; py++) {
    for (var px = 0; px < 20; px++) {
      var cr = -2.0 + px * 0.125;
      var ci = -1.25 + py * 0.125;
      var zr = 0.0;
      var zi = 0.0;
      var it = 0;
      while (it < 25 && zr * zr + zi * zi < 4.0) {
        var nzr = zr * zr - zi * zi + cr;
        zi = 2.0 * zr * zi + ci;
        zr = nzr;
        it = it + 1;
      }
      count = count + it;
    }
  }
  return count;
}
""",
    )
)

register(
    BenchmarkSpec(
        name="BITS",
        category="Mathematical",
        description="bit-twiddling kernel (shifts, masks, popcount)",
        expected=None,
        source="""
function setup() { }

function popcount(v) {
  v = v - ((v >> 1) & 0x55555555);
  v = (v & 0x33333333) + ((v >> 2) & 0x33333333);
  return (((v + (v >> 4)) & 0xf0f0f0f) * 0x1010101) >> 24;
}

function run() {
  var acc = 0;
  var x = 0x12345;
  for (var i = 0; i < 300; i++) {
    x = (x ^ (x << 3)) & 0xffffff;
    x = (x ^ (x >> 5)) & 0xffffff;
    acc = (acc + popcount(x)) & 0xffff;
  }
  return acc;
}
""",
    )
)

register(
    BenchmarkSpec(
        name="FIB",
        category="Mathematical",
        description="naive recursion (call-heavy SMI arithmetic)",
        expected=987,
        source="""
function setup() { }

function fib(n) {
  if (n < 2) { return n; }
  return fib(n - 1) + fib(n - 2);
}

function run() { return fib(16); }
""",
    )
)

register(
    BenchmarkSpec(
        name="PRIMES",
        category="Mathematical",
        description="sieve of Eratosthenes (SMI array stores + bounds)",
        expected=78,
        source="""
var LIMIT = 400;
var sieve = new Array(LIMIT);

function setup() { }

function run() {
  for (var i = 0; i < LIMIT; i++) { sieve[i] = 1; }
  sieve[0] = 0;
  sieve[1] = 0;
  for (var p = 2; p * p < LIMIT; p++) {
    if (sieve[p] == 1) {
      for (var m = p * p; m < LIMIT; m = m + p) { sieve[m] = 0; }
    }
  }
  var count = 0;
  for (var k = 0; k < LIMIT; k++) { count = count + sieve[k]; }
  return count;
}
""",
    )
)
