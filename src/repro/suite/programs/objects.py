"""Object-oriented benchmarks (richards-like scheduler, splay-like tree,
raytracer) — property-access heavy, dominated by wrong-map checks, with the
paper noting notably higher ARM64 overheads for this class (RICH)."""

from ..spec import BenchmarkSpec, register

register(
    BenchmarkSpec(
        name="RICH",
        category="Objects",
        description="richards-like task scheduler over uniform-shape objects",
        expected=None,
        source="""
var queueHead = null;
var workDone = 0;
var holdCount = 0;

function Task(id, priority, kind) {
  this.id = id;
  this.priority = priority;
  this.kind = kind;
  this.state = 0;
  this.budget = 3 + (id % 4);
  this.link = null;
}

function enqueue(task) {
  task.link = queueHead;
  queueHead = task;
}

function dequeueHighest() {
  var best = null;
  var node = queueHead;
  while (node != null) {
    if (node.state == 0 && (best == null || node.priority > best.priority)) {
      best = node;
    }
    node = node.link;
  }
  return best;
}

function runTask(task) {
  if (task.kind == 0) {
    workDone = workDone + task.priority;
  } else if (task.kind == 1) {
    workDone = workDone + 2 * task.priority;
    holdCount = holdCount + 1;
  } else {
    workDone = workDone + (task.priority >> 1);
  }
  task.budget = task.budget - 1;
  if (task.budget <= 0) { task.state = 1; }
}

function setup() { }

function run() {
  queueHead = null;
  workDone = 0;
  holdCount = 0;
  for (var i = 0; i < 24; i++) {
    enqueue(new Task(i, (i * 7) % 13, i % 3));
  }
  var steps = 0;
  while (steps < 200) {
    var task = dequeueHighest();
    if (task == null) { break; }
    runTask(task);
    steps = steps + 1;
  }
  return workDone * 1000 + holdCount * 10 + (steps % 10);
}
""",
    )
)

register(
    BenchmarkSpec(
        name="SPLAY",
        category="Objects",
        description="splay-like binary tree: inserts, rotations, lookups",
        expected=None,
        source="""
var root = null;
var sseed = 1;

function srnd(m) {
  sseed = (sseed * 16807) % 2147483647;
  return sseed % m;
}

function TreeNode(key, value) {
  this.key = key;
  this.value = value;
  this.left = null;
  this.right = null;
}

function insert(key, value) {
  if (root == null) {
    root = new TreeNode(key, value);
    return;
  }
  var node = root;
  while (true) {
    if (key < node.key) {
      if (node.left == null) { node.left = new TreeNode(key, value); return; }
      node = node.left;
    } else if (key > node.key) {
      if (node.right == null) { node.right = new TreeNode(key, value); return; }
      node = node.right;
    } else {
      node.value = value;
      return;
    }
  }
}

function rotateRootRight() {
  if (root == null || root.left == null) { return; }
  var pivot = root.left;
  root.left = pivot.right;
  pivot.right = root;
  root = pivot;
}

function find(key) {
  var node = root;
  var depth = 0;
  while (node != null) {
    depth = depth + 1;
    if (key < node.key) { node = node.left; }
    else if (key > node.key) { node = node.right; }
    else { return depth * 1000 + node.value; }
  }
  return -depth;
}

function setup() { }

function run() {
  root = null;
  sseed = 77;
  for (var i = 0; i < 60; i++) {
    insert(srnd(500), i);
    if (i % 8 == 0) { rotateRootRight(); }
  }
  var check = 0;
  sseed = 77;
  for (var j = 0; j < 60; j++) {
    check = (check + find(srnd(500))) & 0xffffff;
  }
  return check;
}
""",
    )
)

register(
    BenchmarkSpec(
        name="RAY",
        category="Objects",
        description="tiny raytracer: vector objects with double fields",
        expected=None,
        tolerance=1e-6,
        source="""
var spheres = new Array(3);

function Vec(x, y, z) { this.x = x; this.y = y; this.z = z; }

function Sphere(cx, cy, cz, r) {
  this.center = new Vec(cx, cy, cz);
  this.radius = r;
}

function dot3(a, b) { return a.x * b.x + a.y * b.y + a.z * b.z; }

function sub3(a, b) { return new Vec(a.x - b.x, a.y - b.y, a.z - b.z); }

function intersect(origin, dir, sphere) {
  var oc = sub3(origin, sphere.center);
  var b = 2.0 * dot3(oc, dir);
  var c = dot3(oc, oc) - sphere.radius * sphere.radius;
  var disc = b * b - 4.0 * c;
  if (disc < 0.0) { return -1.0; }
  var t = (-b - Math.sqrt(disc)) * 0.5;
  return t;
}

function setup() {
  spheres[0] = new Sphere(0.0, 0.0, -5.0, 1.0);
  spheres[1] = new Sphere(1.5, 0.5, -4.0, 0.5);
  spheres[2] = new Sphere(-1.2, -0.4, -6.0, 1.2);
}

function run() {
  var origin = new Vec(0.0, 0.0, 0.0);
  var hits = 0;
  var depthSum = 0.0;
  for (var py = 0; py < 12; py++) {
    for (var px = 0; px < 12; px++) {
      var dx = (px - 6) * 0.15;
      var dy = (py - 6) * 0.15;
      var inv = 1.0 / Math.sqrt(dx * dx + dy * dy + 1.0);
      var dir = new Vec(dx * inv, dy * inv, -inv);
      var nearest = 1000000.0;
      for (var s = 0; s < 3; s++) {
        var t = intersect(origin, dir, spheres[s]);
        if (t > 0.0 && t < nearest) { nearest = t; }
      }
      if (nearest < 1000000.0) {
        hits = hits + 1;
        depthSum = depthSum + nearest;
      }
    }
  }
  return hits * 1000 + Math.floor(depthSum * 100) / 100;
}
""",
    )
)
