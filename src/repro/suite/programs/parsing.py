"""Parsing / language benchmarks (JSON-like scanning, tokenizing, CSV) —
character-code heavy work standing in for JetStream2's code-load and parser
benchmarks (MICL et al.)."""

from ..spec import BenchmarkSpec, register

register(
    BenchmarkSpec(
        name="JSONLIKE",
        category="Parsing",
        description="hand-written scanner over a JSON-like document",
        expected=None,
        source="""
var doc = "";

function setup() {
  doc = "{";
  for (var i = 0; i < 25; i++) {
    if (i > 0) { doc = doc + ","; }
    doc = doc + '"key' + i + '": {"value": ' + (i * 37 % 1000) +
          ', "tags": ["a", "b"], "ok": ' + (i % 2 == 0 ? "true" : "false") + "}";
  }
  doc = doc + "}";
}

function run() {
  var depth = 0;
  var maxDepth = 0;
  var numbers = 0;
  var strings = 0;
  var digitsum = 0;
  var n = doc.length;
  var i = 0;
  while (i < n) {
    var c = doc.charCodeAt(i);
    if (c == 123 || c == 91) {
      depth = depth + 1;
      if (depth > maxDepth) { maxDepth = depth; }
    } else if (c == 125 || c == 93) {
      depth = depth - 1;
    } else if (c == 34) {
      strings = strings + 1;
      i = i + 1;
      while (i < n && doc.charCodeAt(i) != 34) { i = i + 1; }
    } else if (c >= 48 && c <= 57) {
      numbers = numbers + 1;
      while (i + 1 < n) {
        var d = doc.charCodeAt(i + 1);
        if (d < 48 || d > 57) { break; }
        digitsum = digitsum + (d - 48);
        i = i + 1;
      }
    }
    i = i + 1;
  }
  return maxDepth * 1000000 + strings * 10000 + numbers * 100 + (digitsum % 100);
}
""",
    )
)

register(
    BenchmarkSpec(
        name="LEXER",
        category="Parsing",
        description="tokenizer over synthetic source text (MICL stand-in)",
        expected=None,
        source="""
var program = "";

function setup() {
  program = "";
  for (var i = 0; i < 20; i++) {
    program = program + "var x" + i + " = foo" + i + "(a + " + i +
              " * 2); if (x" + i + " >= 10) { y = y - 1; } ";
  }
}

function isAlpha(c) {
  return (c >= 97 && c <= 122) || (c >= 65 && c <= 90) || c == 95;
}

function isDigit(c) { return c >= 48 && c <= 57; }

function run() {
  var idents = 0;
  var numbers = 0;
  var puncts = 0;
  var identChars = 0;
  var n = program.length;
  var i = 0;
  while (i < n) {
    var c = program.charCodeAt(i);
    if (c == 32) {
      i = i + 1;
    } else if (isAlpha(c)) {
      idents = idents + 1;
      while (i < n && (isAlpha(program.charCodeAt(i)) || isDigit(program.charCodeAt(i)))) {
        identChars = identChars + 1;
        i = i + 1;
      }
    } else if (isDigit(c)) {
      numbers = numbers + 1;
      while (i < n && isDigit(program.charCodeAt(i))) { i = i + 1; }
    } else {
      puncts = puncts + 1;
      i = i + 1;
    }
  }
  return idents * 1000000 + numbers * 10000 + (puncts % 100) * 100 + (identChars % 100);
}
""",
    )
)

register(
    BenchmarkSpec(
        name="CSV",
        category="Parsing",
        description="CSV parsing with split + numeric conversion",
        expected=None,
        source="""
var csv = "";

function setup() {
  csv = "id,name,value,score";
  for (var i = 0; i < 30; i++) {
    csv = csv + "\\n" + i + ",row" + i + "," + (i * 13 % 97) + "," + (i * 7 % 31) + "." + (i % 10);
  }
}

function run() {
  var rows = csv.split("\\n");
  var total = 0;
  var scoreSum = 0.0;
  var n = rows.length;
  for (var i = 1; i < n; i++) {
    var cells = rows[i].split(",");
    total = total + parseInt(cells[2], 10);
    scoreSum = scoreSum + parseFloat(cells[3]);
  }
  return total * 1000 + Math.floor(scoreSum);
}
""",
    )
)
