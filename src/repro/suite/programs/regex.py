"""Regular-expression benchmarks.

Per the paper (Section III-A): "Regular Expression benchmarks ... do not
have any significant check overhead ... because most of their computation
is performed by Irregexp, V8's regex engine, and not in JIT-compiled code."
Our Irregexp-lite plays the same role.
"""

from ..spec import BenchmarkSpec, register

register(
    BenchmarkSpec(
        name="REGEX-MATCH",
        category="Regex",
        description="log-line matching with capture groups",
        expected=None,
        source="""
var lines = new Array(40);
var levelRe = null;
var numRe = null;

function setup() {
  var levels = ["INFO", "WARN", "ERROR", "DEBUG"];
  for (var i = 0; i < 40; i++) {
    lines[i] = "2021-06-" + (10 + (i % 19)) + " " + levels[i % 4] +
               " module" + (i % 6) + ": request took " + (i * 13 % 900) + "ms";
  }
  levelRe = new RegExp("(WARN|ERROR) (module\\\\d+)");
  numRe = new RegExp("(\\\\d+)ms");
}

function run() {
  var errors = 0;
  var total = 0;
  for (var i = 0; i < 40; i++) {
    if (levelRe.test(lines[i])) { errors = errors + 1; }
    var m = numRe.exec(lines[i]);
    if (m != null) { total = total + parseInt(m[1], 10); }
  }
  return errors * 100000 + total;
}
""",
    )
)

register(
    BenchmarkSpec(
        name="REGEX-REPLACE",
        category="Regex",
        description="group-referencing replacement over templated text",
        expected=None,
        source="""
var template = "";
var varRe = null;

function setup() {
  template = "";
  for (var i = 0; i < 25; i++) {
    template = template + "Hello {name" + (i % 5) + "}, id={id" + (i % 3) + "}. ";
  }
  varRe = new RegExp("\\\\{(name|id)(\\\\d)\\\\}", "g");
}

function run() {
  var result = template.replace(varRe, "[$1:$2]");
  var check = result.length;
  check = check * 31 + result.indexOf("[id:2]");
  check = check * 31 + (varRe.test(result) ? 1 : 0);
  return check;
}
""",
    )
)
