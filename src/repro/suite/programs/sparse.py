"""Sparse linear-algebra kernels (the paper's six custom benchmarks).

Section II-C: "We add six custom sparse linear algebra kernels used to test
JavaScript performance in memory-intensive computations with many indirect
memory accesses.  One is CSR Sparse matrix-vector multiplication (SpMV),
which we test for different data types (floating-point, large integers and
SMI), to capture the performance difference of type-dependent checks."

These double as the Section V gem5 subset (SPMV, MMUL, IM2COL, SPMM, BLUR,
DP) — computations operating mainly on SMIs.
"""

from ..spec import BenchmarkSpec, register

# Deterministic LCG shared by the generators: Park-Miller with exact
# double-precision arithmetic (16807 * 2^31 < 2^53, so no rounding).
_LCG = """
var seed = 1;
function rnd(m) {
  seed = (seed * 16807) % 2147483647;
  return seed % m;
}
function resetSeed(s) { seed = s; }
"""

register(
    BenchmarkSpec(
        name="SPMV-CSR-SMI",
        category="Sparse",
        smi_kernel=True,
        description="CSR sparse matrix-vector multiply over small integers",
        expected=None,
        source=_LCG
        + """
var N = 48;
var PER_ROW = 4;
var vals = new Array(N * PER_ROW);
var cols = new Array(N * PER_ROW);
var rowp = new Array(N + 1);
var xvec = new Array(N);
var yvec = new Array(N);

function setup() {
  resetSeed(42);
  for (var i = 0; i < N; i++) {
    rowp[i] = i * PER_ROW;
    xvec[i] = rnd(50) + 1;
    yvec[i] = 0;
  }
  rowp[N] = N * PER_ROW;
  for (var k = 0; k < N * PER_ROW; k++) {
    vals[k] = rnd(100) + 1;
    cols[k] = rnd(N);
  }
}

function spmv() {
  var check = 0;
  for (var i = 0; i < N; i++) {
    var acc = 0;
    var end = rowp[i + 1];
    for (var k = rowp[i]; k < end; k++) {
      acc = acc + vals[k] * xvec[cols[k]];
    }
    yvec[i] = acc;
    check = check + acc;
  }
  return check;
}

function run() { return spmv(); }
""",
    )
)

register(
    BenchmarkSpec(
        name="SPMV-CSR-FLOAT",
        category="Sparse",
        description="CSR sparse matrix-vector multiply over doubles",
        expected=None,
        tolerance=1e-6,
        source=_LCG
        + """
var N = 48;
var PER_ROW = 4;
var vals = new Array(N * PER_ROW);
var cols = new Array(N * PER_ROW);
var rowp = new Array(N + 1);
var xvec = new Array(N);
var yvec = new Array(N);

function setup() {
  resetSeed(42);
  for (var i = 0; i < N; i++) {
    rowp[i] = i * PER_ROW;
    xvec[i] = (rnd(50) + 1) * 0.5;
    yvec[i] = 0.0;
  }
  rowp[N] = N * PER_ROW;
  for (var k = 0; k < N * PER_ROW; k++) {
    vals[k] = (rnd(100) + 1) * 0.25;
    cols[k] = rnd(N);
  }
}

function spmv() {
  var check = 0.0;
  for (var i = 0; i < N; i++) {
    var acc = 0.0;
    var end = rowp[i + 1];
    for (var k = rowp[i]; k < end; k++) {
      acc = acc + vals[k] * xvec[cols[k]];
    }
    yvec[i] = acc;
    check = check + acc;
  }
  return check;
}

function run() { return spmv(); }
""",
    )
)

register(
    BenchmarkSpec(
        name="SPMV-CSR-INT",
        category="Sparse",
        description="CSR sparse matrix-vector multiply over large (non-SMI) integers",
        expected=None,
        tolerance=1e-6,
        source=_LCG
        + """
var N = 48;
var PER_ROW = 4;
var BIG = 1200000000;
var vals = new Array(N * PER_ROW);
var cols = new Array(N * PER_ROW);
var rowp = new Array(N + 1);
var xvec = new Array(N);

function setup() {
  resetSeed(42);
  for (var i = 0; i < N; i++) {
    rowp[i] = i * PER_ROW;
    xvec[i] = rnd(50) + 1;
  }
  rowp[N] = N * PER_ROW;
  for (var k = 0; k < N * PER_ROW; k++) {
    vals[k] = BIG + rnd(100);
    cols[k] = rnd(N);
  }
}

function spmv() {
  var check = 0.0;
  for (var i = 0; i < N; i++) {
    var acc = 0.0;
    var end = rowp[i + 1];
    for (var k = rowp[i]; k < end; k++) {
      acc = acc + vals[k] * xvec[cols[k]];
    }
    check = check + acc * 0.000001;
  }
  return check;
}

function run() { return spmv(); }
""",
    )
)

register(
    BenchmarkSpec(
        name="DP",
        category="Sparse",
        smi_kernel=True,
        description="dense dot product over SMIs",
        expected=None,
        source=_LCG
        + """
var N = 256;
var va = new Array(N);
var vb = new Array(N);

function setup() {
  resetSeed(7);
  for (var i = 0; i < N; i++) {
    va[i] = rnd(100) + 1;
    vb[i] = rnd(100) + 1;
  }
}

function dot(a, b) {
  var acc = 1;
  for (var i = 0; i < a.length; i++) {
    acc = acc + a[i] * b[i];
  }
  return acc;
}

function run() { return dot(va, vb); }
""",
    )
)

register(
    BenchmarkSpec(
        name="MMUL",
        category="Sparse",
        smi_kernel=True,
        description="dense matrix multiply (flat arrays) over SMIs",
        expected=None,
        source=_LCG
        + """
var N = 10;
var ma = new Array(N * N);
var mb = new Array(N * N);
var mc = new Array(N * N);

function setup() {
  resetSeed(9);
  for (var i = 0; i < N * N; i++) {
    ma[i] = rnd(20) + 1;
    mb[i] = rnd(20) + 1;
    mc[i] = 0;
  }
}

function mmul() {
  for (var i = 0; i < N; i++) {
    for (var j = 0; j < N; j++) {
      var acc = 0;
      for (var k = 0; k < N; k++) {
        acc = acc + ma[i * N + k] * mb[k * N + j];
      }
      mc[i * N + j] = acc;
    }
  }
  var check = 0;
  for (var t = 0; t < N * N; t++) { check = check + mc[t]; }
  return check;
}

function run() { return mmul(); }
""",
    )
)

register(
    BenchmarkSpec(
        name="SPMM",
        category="Sparse",
        smi_kernel=True,
        description="sparse (CSR) x dense matrix multiply over SMIs",
        expected=None,
        source=_LCG
        + """
var R = 16;
var C = 16;
var K = 8;
var PER_ROW = 4;
var svals = new Array(R * PER_ROW);
var scols = new Array(R * PER_ROW);
var srowp = new Array(R + 1);
var dense = new Array(C * K);
var out = new Array(R * K);

function setup() {
  resetSeed(11);
  for (var i = 0; i < R; i++) { srowp[i] = i * PER_ROW; }
  srowp[R] = R * PER_ROW;
  for (var t = 0; t < R * PER_ROW; t++) {
    svals[t] = rnd(9) + 1;
    scols[t] = rnd(C);
  }
  for (var d = 0; d < C * K; d++) { dense[d] = rnd(7) + 1; }
  for (var o = 0; o < R * K; o++) { out[o] = 0; }
}

function spmm() {
  for (var i = 0; i < R; i++) {
    var start = srowp[i];
    var end = srowp[i + 1];
    for (var j = 0; j < K; j++) {
      var acc = 0;
      for (var k = start; k < end; k++) {
        acc = acc + svals[k] * dense[scols[k] * K + j];
      }
      out[i * K + j] = acc;
    }
  }
  var check = 0;
  for (var t = 0; t < R * K; t++) { check = check + out[t]; }
  return check;
}

function run() { return spmm(); }
""",
    )
)

register(
    BenchmarkSpec(
        name="IM2COL",
        category="Sparse",
        smi_kernel=True,
        description="im2col patch extraction over an SMI image",
        expected=None,
        source=_LCG
        + """
var W = 14;
var H = 14;
var KS = 3;
var OW = W - KS + 1;
var OH = H - KS + 1;
var image = new Array(W * H);
var colsOut = new Array(OW * OH * KS * KS);

function setup() {
  resetSeed(13);
  for (var i = 0; i < W * H; i++) { image[i] = rnd(256); }
  for (var t = 0; t < OW * OH * KS * KS; t++) { colsOut[t] = 0; }
}

function im2col() {
  var idx = 0;
  for (var oy = 0; oy < OH; oy++) {
    for (var ox = 0; ox < OW; ox++) {
      for (var ky = 0; ky < KS; ky++) {
        for (var kx = 0; kx < KS; kx++) {
          colsOut[idx] = image[(oy + ky) * W + (ox + kx)];
          idx = idx + 1;
        }
      }
    }
  }
  var check = 0;
  for (var t = 0; t < idx; t++) { check = check + colsOut[t]; }
  return check;
}

function run() { return im2col(); }
""",
    )
)

register(
    BenchmarkSpec(
        name="BLUR",
        category="Sparse",
        smi_kernel=True,
        description="3x3 integer gaussian blur over an SMI image",
        expected=None,
        source=_LCG
        + """
var BW = 16;
var BH = 16;
var src = new Array(BW * BH);
var dst = new Array(BW * BH);

function setup() {
  resetSeed(17);
  for (var i = 0; i < BW * BH; i++) {
    src[i] = rnd(256);
    dst[i] = 0;
  }
}

function blur() {
  for (var y = 1; y < BH - 1; y++) {
    for (var x = 1; x < BW - 1; x++) {
      var p = y * BW + x;
      var acc =
        src[p - BW - 1] + 2 * src[p - BW] + src[p - BW + 1] +
        2 * src[p - 1] + 4 * src[p] + 2 * src[p + 1] +
        src[p + BW - 1] + 2 * src[p + BW] + src[p + BW + 1];
      dst[p] = acc >> 4;
    }
  }
  var check = 0;
  for (var t = 0; t < BW * BH; t++) { check = check + dst[t]; }
  return check;
}

function run() { return blur(); }
""",
    )
)
