"""String-manipulation benchmarks.

The paper observes these carry *low* check overheads because most of their
work happens inside builtins (string concatenation, split, case mapping),
which contain no deoptimization checks — and Section VII measures builtins
at up to 8 % of execution time here.
"""

from ..spec import BenchmarkSpec, register

register(
    BenchmarkSpec(
        name="STR-SPLIT",
        category="String",
        description="split/join/indexOf over a synthetic word list",
        expected=None,
        source="""
var text = "";

function setup() {
  var words = ["alpha", "beta", "gamma", "delta", "epsilon", "zeta", "eta"];
  text = "";
  for (var i = 0; i < 60; i++) {
    if (i > 0) { text = text + ","; }
    text = text + words[i % 7] + "-" + i;
  }
}

function run() {
  var parts = text.split(",");
  var count = 0;
  var n = parts.length;
  for (var i = 0; i < n; i++) {
    if (parts[i].indexOf("a") >= 0) { count = count + 1; }
  }
  var joined = parts.join(";");
  return count * 1000 + joined.length;
}
""",
    )
)

register(
    BenchmarkSpec(
        name="BASE64",
        category="String",
        description="base64 encoding via charAt/fromCharCode",
        expected=None,
        source="""
var alphabet = "ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789+/";
var payload = new Array(120);

function setup() {
  var s = 9;
  for (var i = 0; i < 120; i++) {
    s = (s * 41 + 7) % 256;
    payload[i] = s;
  }
}

function encode() {
  var out = "";
  for (var i = 0; i + 2 < 120; i = i + 3) {
    var n = (payload[i] << 16) | (payload[i + 1] << 8) | payload[i + 2];
    out = out + alphabet.charAt((n >> 18) & 63) + alphabet.charAt((n >> 12) & 63) +
          alphabet.charAt((n >> 6) & 63) + alphabet.charAt(n & 63);
  }
  return out;
}

function run() {
  var encoded = encode();
  var check = 0;
  var n = encoded.length;
  for (var i = 0; i < n; i = i + 7) {
    check = (check * 31 + encoded.charCodeAt(i)) % 1000003;
  }
  return check;
}
""",
    )
)

register(
    BenchmarkSpec(
        name="STR-BUILD",
        category="String",
        description="string building by repeated concatenation",
        expected=None,
        source="""
function setup() { }

function run() {
  var out = "";
  for (var i = 0; i < 80; i++) {
    out = out + "item" + i + ";";
  }
  var check = out.length;
  check = check * 7 + out.indexOf("item79");
  return check;
}
""",
    )
)

register(
    BenchmarkSpec(
        name="UPPER",
        category="String",
        description="case mapping + character scanning",
        expected=None,
        source="""
var sentence = "";

function setup() {
  sentence = "";
  for (var i = 0; i < 30; i++) {
    sentence = sentence + "the Quick brown Fox jumps over the lazy Dog ";
  }
}

function run() {
  var upper = sentence.toUpperCase();
  var lower = sentence.toLowerCase();
  var check = 0;
  var n = upper.length;
  for (var i = 0; i < n; i = i + 11) {
    check = (check + upper.charCodeAt(i) - lower.charCodeAt(i)) & 0xffff;
  }
  return check + upper.length;
}
""",
    )
)
