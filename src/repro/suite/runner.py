"""Benchmark runner: iterations, repetitions, noise, leftover checks.

Reproduces the paper's measurement protocol (Section II-D): each benchmark
runs for many iterations (1,000 in the paper; scaled down by default) and
the whole process repeats several times (30 in the paper).

Two experimental realities of the paper are modelled explicitly:

* **Noise** — "there is some non-determinism in V8 in how JIT-compilation
  and garbage collection are triggered" (Section IV-A), and the authors
  argue *against* artificially quieting it.  Our simulator is deterministic,
  so per-repetition jitter is injected where V8's nondeterminism lives: the
  tier-up thresholds and the GC cadence vary per repetition, and a small
  multiplicative measurement noise models OS/timer jitter on real hardware.
* **Leftover checks** — removing a check type that actually fires breaks a
  benchmark (16/51 in the paper).  :func:`determine_removable_kinds` runs
  the benchmark once with all checks enabled and withholds every eager
  check kind that fired, exactly the paper's Section III-B.2 procedure.
"""

from __future__ import annotations

import dataclasses
import random
import zlib
from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, FrozenSet, List, Optional, Set, Tuple

from ..engine import Engine, EngineConfig
from ..jit.checks import CheckKind, DeoptCategory, category_of
from .spec import BenchmarkSpec

if TYPE_CHECKING:
    from ..jit.codegen import CodeObject

#: All eager check kinds (candidates for removal).
EAGER_KINDS: FrozenSet[CheckKind] = frozenset(
    kind for kind in CheckKind if category_of(kind) == DeoptCategory.EAGER
)


def stable_seed(name: str) -> int:
    """Process-stable seed digest for a benchmark name.

    ``hash(str)`` is salted per process (PYTHONHASHSEED), so seeding noise
    from it makes results differ across runs and across pool workers.
    CRC32 is stable everywhere and cheap.
    """
    return zlib.crc32(name.encode("utf-8"))


@dataclass
class NoiseModel:
    """Per-repetition nondeterminism injection."""

    enabled: bool = True
    measurement_sigma: float = 0.006  # ~0.6 % multiplicative timer noise
    tierup_jitter: float = 0.35  # +-35 % threshold jitter
    gc_period_choices: Tuple[int, ...] = (13, 17, 23, 29)

    def perturb_config(self, config: EngineConfig, rng: random.Random) -> EngineConfig:
        if not self.enabled:
            return config
        scale = 1.0 + rng.uniform(-self.tierup_jitter, self.tierup_jitter)
        return dataclasses.replace(
            config,
            tierup_invocations=max(2, int(config.tierup_invocations * scale)),
            tierup_backedges=max(100, int(config.tierup_backedges * scale)),
            random_seed=rng.getrandbits(62) | 1,
        )

    def gc_period(self, rng: random.Random) -> int:
        if not self.enabled:
            return 16
        return rng.choice(self.gc_period_choices)

    def iteration_noise(self, rng: random.Random) -> float:
        if not self.enabled:
            return 1.0
        return max(0.5, rng.gauss(1.0, self.measurement_sigma))


@dataclass
class RunResult:
    """Outcome of one repetition of one benchmark configuration."""

    name: str
    target: str
    iterations: int
    #: simulated cycles per iteration (noise applied)
    cycles: List[float]
    result: object
    valid: bool
    #: (iteration, check kind name) per eager deopt event
    deopts: List[Tuple[int, str]]
    #: static stats summed over this benchmark's optimized code objects
    code_stats: Dict[str, int]
    #: hardware-counter deltas over the measured iterations
    hw_stats: Dict[str, int]
    #: cycle buckets at the end of the run
    buckets: Dict[str, float]
    total_cycles: float = 0.0
    #: every iteration's Python-level result (populated only when the
    #: runner is asked to collect them, e.g. by the differential oracle)
    values: Optional[List[object]] = None
    #: deopt/backoff counters (Engine.resilience_stats) at the end of the run
    resilience: Optional[Dict[str, object]] = None

    @property
    def steady_state_cycles(self) -> float:
        """Mean of the last 30 % of iterations."""
        tail = self.cycles[-max(1, len(self.cycles) * 3 // 10):]
        return sum(tail) / len(tail)

    @property
    def total_time(self) -> float:
        return sum(self.cycles)


class BenchmarkRunner:
    """Runs one benchmark under one engine configuration."""

    def __init__(
        self,
        spec: BenchmarkSpec,
        config: Optional[EngineConfig] = None,
        noise: Optional[NoiseModel] = None,
    ) -> None:
        self.spec = spec
        self.config = config or EngineConfig()
        self.noise = noise or NoiseModel(enabled=False)
        #: the engine of the most recent :meth:`run` (chaos harnesses read
        #: deopt counters and heap state off it after the run)
        self.last_engine: Optional[Engine] = None

    def run(
        self,
        iterations: int = 100,
        rep: int = 0,
        reference: object = None,
        injector: object = None,
        collect_values: bool = False,
    ) -> RunResult:
        """One repetition.

        ``injector`` is an optional fault injector (duck-typed: anything
        with ``before_iteration(engine, iteration)``) invoked between
        iterations — see :mod:`repro.resilience.faults`.

        Any escaping engine exception captures a crash bundle
        (:mod:`repro.supervise.bundles`) carrying everything a replay
        needs — benchmark, config, rep, the serialized fault plan — and
        then propagates unchanged.
        """
        import traceback

        # Imported lazily: repro.supervise pulls in repro.exec, whose
        # cells module imports the engine this module already imports.
        from ..supervise.bundles import (
            capture_bundle,
            clear_run_context,
            serialize_plan,
            set_run_context,
        )

        set_run_context(
            benchmark=self.spec.name,
            target=self.config.target,
            iterations=iterations,
            rep=rep,
            noise=self.noise.enabled,
            config={
                "removed_checks": sorted(
                    kind.name for kind in self.config.removed_checks
                ),
                "emit_check_branches": self.config.emit_check_branches,
            },
            fault_plan=serialize_plan(getattr(injector, "plan", None)),
        )
        try:
            return self._run(iterations, rep, reference, injector, collect_values)
        except Exception as failure:
            capture_bundle("engine-exception", {
                "error": f"{type(failure).__name__}: {failure}",
                "error_type": type(failure).__name__,
                "traceback": "".join(
                    traceback.format_exception(
                        type(failure), failure, failure.__traceback__
                    )
                ),
            })
            raise
        finally:
            clear_run_context(
                "benchmark", "target", "iterations", "rep", "noise",
                "config", "fault_plan",
            )

    def _run(
        self,
        iterations: int,
        rep: int,
        reference: object,
        injector: object,
        collect_values: bool,
    ) -> RunResult:
        rng = random.Random((stable_seed(self.spec.name) & 0xFFFFFFF) * 1000003 + rep)
        config = self.noise.perturb_config(self.config, rng)
        engine = Engine(config)
        self.last_engine = engine
        engine.load(self.spec.source)
        engine.call_global("setup")
        gc_period = self.noise.gc_period(rng)

        cycles: List[float] = []
        values: Optional[List[object]] = [] if collect_values else None
        result: object = None
        valid = True
        hw_before = engine.executor.stats.snapshot()
        for iteration in range(iterations):
            engine.current_iteration = iteration
            if injector is not None:
                injector.before_iteration(engine, iteration)
            before = engine.total_cycles
            value = engine.call_global("run")
            if values is not None:
                values.append(value)
            elapsed = (engine.total_cycles - before) * self.noise.iteration_noise(rng)
            if config.gc_between_iterations and iteration % gc_period == gc_period - 1:
                gc_before = engine.total_cycles
                engine.run_gc()
                elapsed += engine.total_cycles - gc_before
            cycles.append(elapsed)
            if iteration == 0:
                result = value
            elif not _consistent(self.spec, value, result):
                valid = False
        if reference is not None and not _consistent(self.spec, result, reference):
            valid = False
        if self.spec.expected is not None and not self.spec.validate(result):
            valid = False
        hw_after = engine.executor.stats.snapshot()

        code_stats = {"body_instructions": 0, "check_instructions": 0, "deopt_branches": 0}
        for shared in engine.functions:
            if shared.code is not None:
                stats = shared.code.check_instruction_stats()
                for key in code_stats:
                    code_stats[key] += stats[key]
        deopts = [
            (event.iteration, event.kind.name)
            for event in engine.deopt_events
            if category_of(event.kind) == DeoptCategory.EAGER
        ]
        return RunResult(
            name=self.spec.name,
            target=config.target,
            iterations=iterations,
            cycles=cycles,
            result=result,
            valid=valid,
            deopts=deopts,
            code_stats=code_stats,
            hw_stats={k: hw_after[k] - hw_before[k] for k in hw_after},
            buckets=dict(engine.buckets),
            total_cycles=engine.total_cycles,
            values=values,
            resilience=engine.resilience_stats(),
        )


def _consistent(spec: BenchmarkSpec, a: object, b: object) -> bool:
    if spec.tolerance:
        try:
            return abs(float(a) - float(b)) <= spec.tolerance * max(1.0, abs(float(b)))  # type: ignore[arg-type]
        except (TypeError, ValueError):
            return a == b
    return a == b


def determine_removable_kinds(
    spec: BenchmarkSpec,
    base_config: Optional[EngineConfig] = None,
    iterations: int = 60,
) -> Tuple[FrozenSet[CheckKind], FrozenSet[CheckKind]]:
    """(removable kinds, leftover kinds) for a benchmark.

    A kind is *leftover* (must stay) when a deopt of that kind fires during
    a fully-checked run — removing it would alter the program's semantics
    (paper Section III-B.2).
    """
    config = base_config or EngineConfig()
    runner = BenchmarkRunner(spec, config, NoiseModel(enabled=False))
    result = runner.run(iterations=iterations)
    fired = frozenset(CheckKind[name] for _it, name in result.deopts)
    leftovers = frozenset(fired & EAGER_KINDS)
    return frozenset(EAGER_KINDS - leftovers), leftovers


def compile_benchmark(
    spec: BenchmarkSpec,
    config: Optional[EngineConfig] = None,
    iterations: int = 40,
) -> Engine:
    """Warm a benchmark until its hot functions are JIT-compiled.

    Returns the engine; the compiled code objects are on
    ``engine.functions[i].code``.  Used by the ``python -m repro.analysis``
    CLI and by analysis tests that need real compiled code without the
    full measurement protocol.
    """
    engine = Engine(config or EngineConfig())
    engine.load(spec.source)
    engine.call_global("setup")
    for iteration in range(iterations):
        engine.current_iteration = iteration
        engine.call_global("run")
    return engine


def compiled_code_objects(engine: Engine) -> List["CodeObject"]:
    """The live optimized code objects of an engine, in function order."""
    return [
        shared.code for shared in engine.functions if shared.code is not None
    ]


def run_benchmark(
    spec: BenchmarkSpec,
    config: Optional[EngineConfig] = None,
    iterations: int = 100,
    reps: int = 1,
    noise: Optional[NoiseModel] = None,
) -> List[RunResult]:
    """Run ``reps`` repetitions; validates cross-repetition consistency."""
    runner = BenchmarkRunner(spec, config, noise)
    results: List[RunResult] = []
    reference: object = None
    for rep in range(reps):
        result = runner.run(iterations=iterations, rep=rep, reference=reference)
        if reference is None:
            reference = result.result
        results.append(result)
    return results
