"""Benchmark specifications and registry.

The suite mirrors the paper's *extended JetStream2*: benchmarks are grouped
"by the language feature they stress (e.g., string manipulation) or by
their application domain (e.g., cryptography)" (Section II-C), plus the six
custom sparse linear-algebra kernels.  WebAssembly benchmarks are excluded
by the paper and have no counterpart here.

Each benchmark is a JS-subset program exposing:

* ``setup()``   — builds the workload data (run once, not timed as an
  iteration),
* ``run()``     — one benchmark iteration, returning a checksum.

``expected`` validates correctness after every configuration run — the
paper validates results too, and this is what detects broken semantics when
checks are removed (the "leftover checks" mechanism).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Union


@dataclass(frozen=True)
class BenchmarkSpec:
    name: str  # short code used in figures, e.g. "SPMV-CSR-SMI"
    category: str  # Mathematical / Crypto / Sparse / String / Regex / Parsing / Objects
    source: str  # JS-subset program text
    expected: Union[int, float, str, None]
    tolerance: float = 0.0  # for float checksums
    #: part of the Section V gem5 subset (SMI-heavy kernels)?
    smi_kernel: bool = False
    description: str = ""

    def validate(self, result: object) -> bool:
        if self.expected is None:
            return True
        if isinstance(self.expected, float) or self.tolerance:
            try:
                return abs(float(result) - float(self.expected)) <= self.tolerance  # type: ignore[arg-type]
            except (TypeError, ValueError):
                return False
        return result == self.expected


CATEGORIES = (
    "Mathematical",
    "Crypto",
    "Sparse",
    "String",
    "Regex",
    "Parsing",
    "Objects",
)

_REGISTRY: Dict[str, BenchmarkSpec] = {}


def register(spec: BenchmarkSpec) -> BenchmarkSpec:
    if spec.name in _REGISTRY:
        raise ValueError(f"duplicate benchmark {spec.name}")
    if spec.category not in CATEGORIES:
        raise ValueError(f"unknown category {spec.category}")
    _REGISTRY[spec.name] = spec
    return spec


def get_benchmark(name: str) -> BenchmarkSpec:
    _ensure_loaded()
    return _REGISTRY[name]


def all_benchmarks() -> List[BenchmarkSpec]:
    _ensure_loaded()
    return sorted(_REGISTRY.values(), key=lambda s: (s.category, s.name))


def benchmarks_by_category(category: str) -> List[BenchmarkSpec]:
    _ensure_loaded()
    return [s for s in all_benchmarks() if s.category == category]


def smi_kernels() -> List[BenchmarkSpec]:
    """The Section V gem5 subset (SMI-heavy kernels)."""
    _ensure_loaded()
    return [s for s in all_benchmarks() if s.smi_kernel]


_loaded = False


def _ensure_loaded() -> None:
    global _loaded
    if _loaded:
        return
    _loaded = True
    from .programs import (  # noqa: F401  (registration side effects)
        crypto,
        mathematical,
        objects,
        parsing,
        regex,
        sparse,
        strings,
    )
