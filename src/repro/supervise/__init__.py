"""Supervision layer: online tier guarding and replayable crash forensics.

Three cooperating pieces (DESIGN.md §10):

* :mod:`repro.supervise.sentinel` — an online divergence sentinel that,
  on a deterministic audit schedule, shadow-executes selected basic
  blocks through both the blockjit fused closure and its stepped twin,
  compares the complete machine state, and demotes a diverging code
  object to the step tier instead of crashing the run;
* :mod:`repro.supervise.bundles` — atomic, content-addressed crash
  report bundles under ``results/crashes/`` for every divergence,
  engine exception, oracle failure, or worker crash;
* :mod:`repro.supervise.replay` — ``python -m repro.supervise replay``
  re-executes a bundle deterministically and ``--minimize`` shrinks it
  to a minimal reproducer.

Kill-safe sweep resume (the WAL) lives next to the scheduler in
:mod:`repro.exec.wal`.
"""

from .bundles import (
    bundle_dir,
    bundles_enabled,
    capture_bundle,
    clear_run_context,
    list_bundles,
    load_bundle,
    set_run_context,
)
from .sentinel import DivergenceSentinel, resolve_audit_interval

__all__ = [
    "DivergenceSentinel",
    "bundle_dir",
    "bundles_enabled",
    "capture_bundle",
    "clear_run_context",
    "list_bundles",
    "load_bundle",
    "resolve_audit_interval",
    "set_run_context",
]
