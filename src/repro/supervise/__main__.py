"""CLI: crash-bundle forensics.

    python -m repro.supervise list
    python -m repro.supervise replay results/crashes/<bundle>.json
    python -m repro.supervise replay <bundle> --minimize
    python -m repro.supervise inject FIB --iterations 12

``list`` shows captured bundles; ``replay`` re-executes one
deterministically (exit 0 when the failure reproduces, 1 when it does
not) and ``--minimize`` shrinks the reproducer to minimal iterations
and fault-plan entries.  ``inject`` is the CI/test driver for the
divergence sentinel: it arms the ``REPRO_CHAOS_AUDIT`` corruption hook,
runs one benchmark under audit, and asserts demotion plus bundle
capture — printing the bundle path on its last stdout line.  With
``--trace`` the corruption lands in a compiled *trace* shadow
(``REPRO_CHAOS_TRACE``) instead, asserting the trace tier demotes too.
With ``--continuation`` the chaos lands in a *continuation dispatch*
audit (``REPRO_CHAOS_CONT``): the run executes under its canonical
fault plan so deopts actually dispatch, the Nth dispatch audit is
forced to report the guard fact as still holding, and the sentinel
must refuse it, poison the function's continuations and capture a
``continuation-divergence`` bundle.  With ``--version`` the corruption
lands in a *block version* audit shadow (``REPRO_CHAOS_LBBV``,
``repro.machine.lbbv``), asserting a version divergence demotes the
whole version table along with its block table.
"""

from __future__ import annotations

import argparse
import os
import sys
from pathlib import Path

from .bundles import bundle_dir, list_bundles, load_bundle


def _cmd_list(args) -> int:
    root = Path(args.bundle_dir) if args.bundle_dir else bundle_dir()
    paths = list_bundles(root)
    if not paths:
        print(f"no crash bundles under {root}")
        return 0
    for path in paths:
        try:
            record = load_bundle(path)
        except (OSError, ValueError) as reason:
            print(f"{path.name}: unreadable ({reason})")
            continue
        benchmark = record.get("benchmark", "?")
        mismatches = record.get("mismatch") or record.get("mismatches") or []
        detail = record.get("error") or ",".join(mismatches[:2])
        print(f"{path.name}: {record.get('kind')} {benchmark}"
              + (f" — {detail}" if detail else ""))
    return 0


def _cmd_replay(args) -> int:
    from .replay import replay_bundle

    path = Path(args.bundle)
    if not path.exists():
        candidate = bundle_dir() / args.bundle
        if candidate.exists():
            path = candidate
        else:
            print(f"no such bundle: {args.bundle}", file=sys.stderr)
            return 2
    result = replay_bundle(path, minimize=args.minimize)
    status = "REPRODUCED" if result.reproduced else "NOT REPRODUCED"
    print(f"{status}: {result.detail}")
    if result.minimized is not None:
        print(f"minimized bundle: {result.minimized}")
    return 0 if result.reproduced else 1


def _cmd_inject(args) -> int:
    # Arm the sentinel and its corruption hook before any engine exists.
    os.environ["REPRO_AUDIT"] = str(args.interval)
    if args.trace:
        # Corrupt a *trace* audit shadow instead of a block one, and
        # drop the promotion thresholds so an auditable trace actually
        # forms within a short CI run.
        os.environ["REPRO_CHAOS_TRACE"] = "corrupt"
        os.environ.setdefault("REPRO_TRACEJIT_BUDGET", "400")
        os.environ.setdefault("REPRO_TRACEJIT_HOT", "8")
        os.environ.setdefault("REPRO_TRACEJIT_ENTRY", "8")
    elif args.continuation:
        os.environ["REPRO_CHAOS_CONT"] = "spurious"
    elif args.version:
        # Corrupt a *block version* audit shadow: requires the lbbv
        # tier on so version slots exist for the audit to land on.
        os.environ["REPRO_CHAOS_LBBV"] = "corrupt"
        os.environ["REPRO_LBBV"] = "1"
    else:
        os.environ["REPRO_CHAOS_AUDIT"] = "corrupt"
    if args.bundle_dir:
        os.environ["REPRO_BUNDLE_DIR"] = args.bundle_dir

    from .bundles import bundle_dir as resolved_bundle_dir
    from ..suite.runner import BenchmarkRunner, NoiseModel
    from ..suite.spec import get_benchmark

    injector = None
    if args.continuation:
        # Continuation audits only run when a deopt is about to
        # dispatch; the benchmark's canonical fault plan forces trips.
        from ..resilience.faults import FaultInjector, plan_for

        injector = FaultInjector(
            plan_for(args.benchmark, 0, args.iterations)
        )

    before = set(list_bundles(resolved_bundle_dir()))
    runner = BenchmarkRunner(get_benchmark(args.benchmark))
    runner.run(iterations=args.iterations, injector=injector)
    engine = runner.last_engine
    assert engine is not None
    sentinel = engine.executor._audit
    if sentinel is None:
        print("sentinel was not armed (blockjit off?)", file=sys.stderr)
        return 1
    if args.continuation:
        if sentinel.cont_audits == 0:
            print(
                "no continuation dispatch was audited (no deopt reached "
                "the dispatch path; raise --iterations)",
                file=sys.stderr,
            )
            return 1
        if not sentinel.cont_demoted:
            print(
                f"chaos did not force a spurious dispatch "
                f"({sentinel.cont_audits} dispatch audits ran)",
                file=sys.stderr,
            )
            return 1
        fresh = [
            path for path in list_bundles(resolved_bundle_dir())
            if path not in before
            and path.name.startswith("continuation-divergence-")
        ]
        if not fresh:
            print(
                "spurious dispatch was refused but no "
                "continuation-divergence bundle was captured",
                file=sys.stderr,
            )
            return 1
        for name, pc in sentinel.cont_demoted:
            print(
                f"refused spurious dispatch in {name or '<anonymous>'} "
                f"at bytecode pc {pc}; continuations poisoned",
                file=sys.stderr,
            )
        print(fresh[-1])
        return 0
    if args.version and sentinel.version_audits == 0:
        print(
            "no version audit ran (no block version was executed under "
            "audit; pick a typed-plan-heavy benchmark such as AES2 or "
            "raise --iterations)",
            file=sys.stderr,
        )
        return 1
    if args.trace and sentinel.trace_audits == 0:
        print(
            "no trace audit ran (no auditable trace formed; pick a "
            "loop-heavy, call-free benchmark such as MANDEL or raise "
            "--iterations)",
            file=sys.stderr,
        )
        return 1
    if not sentinel.demotions:
        print(
            f"chaos corruption did not trigger a demotion "
            f"({sentinel.audits} audits ran; raise --iterations or lower "
            f"--interval)",
            file=sys.stderr,
        )
        return 1
    fresh = [
        path for path in list_bundles(resolved_bundle_dir())
        if path not in before and path.name.startswith("divergence-")
    ]
    if not fresh:
        print("demotion happened but no divergence bundle was captured",
              file=sys.stderr)
        return 1
    for name, block in sentinel.demotions:
        print(f"demoted {name or '<anonymous>'} block {block} "
              f"after audit {sentinel.audits}", file=sys.stderr)
    print(fresh[-1])
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(prog="repro.supervise",
                                     description=__doc__)
    sub = parser.add_subparsers(dest="command", required=True)

    cmd = sub.add_parser("list", help="list captured crash bundles")
    cmd.add_argument("--bundle-dir", default=None)
    cmd.set_defaults(func=_cmd_list)

    cmd = sub.add_parser("replay", help="re-execute one bundle")
    cmd.add_argument("bundle")
    cmd.add_argument("--minimize", action="store_true",
                     help="shrink iterations and fault-plan entries while "
                          "the failure still reproduces")
    cmd.set_defaults(func=_cmd_replay)

    cmd = sub.add_parser(
        "inject",
        help="seed a deliberate fused-tier divergence via REPRO_CHAOS_AUDIT "
             "and assert demotion + bundle capture (CI/test driver)",
    )
    cmd.add_argument("benchmark")
    cmd.add_argument("--iterations", type=int, default=12)
    cmd.add_argument("--interval", type=int, default=25,
                     help="mean audit gap in retired instructions")
    cmd.add_argument("--trace", action="store_true",
                     help="seed the divergence in a compiled *trace* "
                          "shadow (REPRO_CHAOS_TRACE) instead of a fused "
                          "block, asserting trace demotion")
    cmd.add_argument("--continuation", action="store_true",
                     help="seed a spurious continuation dispatch "
                          "(REPRO_CHAOS_CONT) under the benchmark's "
                          "canonical fault plan, asserting refusal, "
                          "poisoning and bundle capture")
    cmd.add_argument("--version", action="store_true",
                     help="seed the divergence in a *block version* "
                          "audit shadow (REPRO_CHAOS_LBBV), asserting "
                          "the version table demotes with its block "
                          "table")
    cmd.add_argument("--bundle-dir", default=None)
    cmd.set_defaults(func=_cmd_inject)

    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
