"""Atomic, content-addressed crash-report bundles.

Any divergence, engine exception, oracle failure, or worker crash in the
grid captures a JSON bundle under ``results/crashes/`` with everything a
later ``python -m repro.supervise replay`` needs to re-execute it
deterministically: benchmark, ISA target, engine config knobs, the
serialized fault plan, seeds, the offending block span, pre/post state
digests, and the traceback.

Bundles are **content-addressed**: the filename embeds a sha256 over the
canonical JSON payload minus volatile fields (capture timestamp), so the
same failure captured twice — or captured again during replay — dedups to
one file and replay can prove reproduction by digest equality.  Writes
are atomic (temp file + ``os.replace``), mirroring the result cache, so
a crashing worker can never leave a torn bundle.

``REPRO_BUNDLE_DIR`` overrides the destination (tests, CI);
``REPRO_BUNDLES=0`` disables capture entirely.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
import time
from pathlib import Path
from typing import Dict, List, Optional

#: bump when the bundle payload layout changes shape
BUNDLE_SCHEMA = 1

#: payload keys excluded from the content address (non-deterministic)
_VOLATILE_KEYS = ("captured_at", "pid")

#: process-wide description of the run in flight, merged into every
#: captured bundle.  Set by BenchmarkRunner.run / compute_cell so a crash
#: deep inside the engine still knows which cell it was serving.
_RUN_CONTEXT: Dict[str, object] = {}


def bundles_enabled() -> bool:
    return os.environ.get("REPRO_BUNDLES", "1").lower() not in (
        "0", "false", "off", "no",
    )


def bundle_dir() -> Path:
    env = os.environ.get("REPRO_BUNDLE_DIR")
    if env:
        return Path(env)
    return Path(__file__).resolve().parents[3] / "results" / "crashes"


def set_run_context(**fields: object) -> None:
    """Merge run-identifying fields into the process-wide context."""
    _RUN_CONTEXT.update(fields)


def clear_run_context(*keys: str) -> None:
    """Drop the named context keys (all of them when none are given)."""
    if not keys:
        _RUN_CONTEXT.clear()
        return
    for key in keys:
        _RUN_CONTEXT.pop(key, None)


def run_context() -> Dict[str, object]:
    return dict(_RUN_CONTEXT)


def serialize_plan(plan: object) -> Optional[Dict[str, object]]:
    """A :class:`repro.resilience.faults.FaultPlan` as plain JSON data."""
    if plan is None:
        return None
    return {
        "benchmark": plan.benchmark,
        "seed": plan.seed,
        "faults": [
            [fault.iteration, fault.kind.value, fault.salt]
            for fault in plan.faults
        ],
    }


def _relevant_env() -> Dict[str, str]:
    """The ``REPRO_*`` knobs that shape execution, for the bundle record."""
    keep = (
        "REPRO_BLOCKJIT", "REPRO_VERIFY", "REPRO_AUDIT", "REPRO_CHAOS_AUDIT",
        "REPRO_CHAOS_EXEC", "REPRO_TRACEJIT", "REPRO_TRACEJIT_BUDGET",
        "REPRO_TRACEJIT_HOT", "REPRO_TRACEJIT_ENTRY", "REPRO_CHAOS_TRACE",
        "REPRO_CONTINUATIONS", "REPRO_CONT_BUDGET", "REPRO_CHAOS_CONT",
        "REPRO_TYPED_BLOCKS", "REPRO_LBBV", "REPRO_CHAOS_LBBV",
        "REPRO_CHAOS_FUZZ",
    )
    return {name: os.environ[name] for name in keep if name in os.environ}


def bundle_digest(payload: Dict[str, object]) -> str:
    """Content address over the canonical payload minus volatile fields."""
    stable = {k: v for k, v in payload.items() if k not in _VOLATILE_KEYS}
    canonical = json.dumps(stable, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def capture_bundle(
    kind: str, payload: Dict[str, object], root: Optional[Path] = None
) -> Optional[Path]:
    """Write one crash bundle; returns its path (or ``None`` if disabled).

    The payload is merged over the process-wide run context; an existing
    bundle with the same content address is left untouched (dedup).
    Capture must never turn a reported failure into a crash, so all I/O
    errors degrade to ``None``.
    """
    if not bundles_enabled():
        return None
    record: Dict[str, object] = {"schema": BUNDLE_SCHEMA, "kind": kind}
    record.update(_RUN_CONTEXT)
    record.setdefault("env", _relevant_env())
    record.update(payload)
    record["captured_at"] = time.strftime("%Y-%m-%dT%H:%M:%S%z")
    record["pid"] = os.getpid()
    digest = bundle_digest(record)
    record["bundle_id"] = f"{kind}-{digest[:12]}"
    directory = Path(root) if root is not None else bundle_dir()
    path = directory / f"{record['bundle_id']}.json"
    try:
        if path.exists():
            return path
        directory.mkdir(parents=True, exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=str(directory), suffix=".tmp")
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                json.dump(record, handle, indent=2, sort_keys=True)
                handle.write("\n")
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
    except OSError:
        return None
    return path


def load_bundle(path: Path) -> Dict[str, object]:
    with open(path, "r", encoding="utf-8") as handle:
        record = json.load(handle)
    if not isinstance(record, dict) or "kind" not in record:
        raise ValueError(f"not a crash bundle: {path}")
    return record


def list_bundles(root: Optional[Path] = None) -> List[Path]:
    directory = Path(root) if root is not None else bundle_dir()
    try:
        return sorted(p for p in directory.iterdir() if p.suffix == ".json")
    except OSError:
        return []
