"""Deterministic re-execution and minimization of crash bundles.

Every bundle kind records enough to rebuild its run exactly — benchmark,
ISA target, engine-config knobs, iteration count, rep, the serialized
fault plan, and the ``REPRO_*`` environment that shaped execution — so
replay is a matter of reconstructing that world and checking that the
same failure happens again:

* ``divergence`` — re-run the benchmark with the recorded audit
  interval (and chaos hook, if one seeded the divergence), capturing
  bundles into a scratch directory; reproduced iff a divergence bundle
  for the same code object, block and mismatch set appears.
* ``continuation-divergence`` — re-run the benchmark under the recorded
  fault plan with the recorded audit environment (``REPRO_AUDIT`` /
  ``REPRO_CHAOS_CONT``); reproduced iff a spurious continuation
  dispatch is refused again at the same code object, check and fact.
* ``engine-exception`` — re-run the benchmark under the recorded fault
  plan; reproduced iff the same exception type escapes.
* ``oracle-failure`` — re-run :func:`repro.resilience.oracle.
  differential_run` under the recorded plan; reproduced iff the oracle
  fails again.
* ``cell-failure`` — re-run the cell in a fresh single-worker process
  pool with the recorded chaos environment; reproduced iff the worker
  crashes, hangs past the watchdog, or raises the recorded error.
* ``fuzz-divergence`` — regenerate the program from the recorded
  generator seed + config, prove the regeneration is byte-identical by
  sha256, and re-run the N-way tier matrix under the recorded
  environment (including ``REPRO_CHAOS_FUZZ`` when a seeded fault
  caused the divergence); reproduced iff the matrix diverges again.

``--minimize`` shrinks the reproducer while it still reproduces: the
iteration count is halved toward the latest fault-plan entry, then each
fault entry is dropped greedily — except ``fuzz-divergence`` bundles,
which are shrunk at the *program* level by the AST minimizer
(:mod:`repro.fuzz.minimize`).  The minimized bundle is captured next
to the original with a ``minimized_from`` back-reference.
"""

from __future__ import annotations

import os
import tempfile
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures import TimeoutError as FutureTimeout
from concurrent.futures.process import BrokenProcessPool
from contextlib import contextmanager
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Tuple

from .bundles import capture_bundle, list_bundles, load_bundle

#: environment keys a replay restores from the bundle record
_ENV_KEYS = (
    "REPRO_BLOCKJIT", "REPRO_VERIFY", "REPRO_AUDIT", "REPRO_CHAOS_AUDIT",
    "REPRO_CHAOS_EXEC", "REPRO_TRACEJIT", "REPRO_TRACEJIT_BUDGET",
    "REPRO_TRACEJIT_HOT", "REPRO_TRACEJIT_ENTRY", "REPRO_CHAOS_TRACE",
    "REPRO_CONTINUATIONS", "REPRO_CONT_BUDGET", "REPRO_CHAOS_CONT",
    "REPRO_TYPED_BLOCKS", "REPRO_LBBV", "REPRO_CHAOS_LBBV",
    "REPRO_CHAOS_FUZZ",
)

#: wall-clock watchdog for cell-failure replays (a recorded hang chaos
#: sleeps for an hour; we call it reproduced long before that)
CELL_REPLAY_TIMEOUT = 60.0


@dataclass
class ReplayResult:
    reproduced: bool
    detail: str
    minimized: Optional[Path] = None


@contextmanager
def _replay_env(record: Dict[str, object], extra: Dict[str, str]):
    """Install the bundle's recorded REPRO_* environment plus overrides."""
    desired: Dict[str, str] = {}
    recorded = record.get("env")
    if isinstance(recorded, dict):
        for key in _ENV_KEYS:
            if key in recorded:
                desired[key] = str(recorded[key])
    desired.update(extra)
    saved: Dict[str, Optional[str]] = {}
    touched = set(_ENV_KEYS) | set(desired) | {
        "REPRO_BUNDLE_DIR", "REPRO_CHAOS_MAIN_PID", "REPRO_BUNDLES",
    }
    for key in touched:
        saved[key] = os.environ.get(key)
        if key in desired:
            os.environ[key] = desired[key]
        else:
            os.environ.pop(key, None)
    try:
        yield
    finally:
        for key, value in saved.items():
            if value is None:
                os.environ.pop(key, None)
            else:
                os.environ[key] = value


def _rebuild_engine_config(record: Dict[str, object]):
    from ..engine import EngineConfig
    from ..jit.checks import CheckKind

    config = record.get("config")
    config = config if isinstance(config, dict) else {}
    removed = frozenset(
        CheckKind[name] for name in config.get("removed_checks", ())
    )
    return EngineConfig(
        target=str(record.get("target", config.get("target", "arm64"))),
        removed_checks=removed,
        emit_check_branches=bool(config.get("emit_check_branches", True)),
    )


def _rebuild_plan(record: Dict[str, object]):
    from ..resilience.faults import Fault, FaultKind, FaultPlan

    data = record.get("fault_plan")
    if not isinstance(data, dict):
        return None
    return FaultPlan(
        benchmark=str(data["benchmark"]),
        seed=int(data["seed"]),  # type: ignore[arg-type]
        faults=tuple(
            Fault(int(it), FaultKind(kind), int(salt))
            for it, kind, salt in data.get("faults", ())
        ),
    )


def _plan_with(plan, faults):
    from ..resilience.faults import FaultPlan

    if plan is None:
        return None
    return FaultPlan(benchmark=plan.benchmark, seed=plan.seed,
                     faults=tuple(faults))


def _run_benchmark(record: Dict[str, object], iterations: int, plan) -> Optional[BaseException]:
    """One replay run of the recorded benchmark; returns the escaping
    exception, if any."""
    from ..resilience.faults import FaultInjector
    from ..suite.runner import BenchmarkRunner, NoiseModel
    from ..suite.spec import get_benchmark

    spec = get_benchmark(str(record["benchmark"]))
    runner = BenchmarkRunner(
        spec,
        _rebuild_engine_config(record),
        NoiseModel(enabled=bool(record.get("noise", True))),
    )
    injector = FaultInjector(plan) if plan is not None else None
    try:
        runner.run(
            iterations=iterations,
            rep=int(record.get("rep", 0)),  # type: ignore[arg-type]
            injector=injector,
        )
    except Exception as failure:
        return failure
    return None


# ----------------------------------------------------------------------
# per-kind reproduction predicates
# ----------------------------------------------------------------------

def _same_divergence(original: Dict[str, object], candidate: Dict[str, object]) -> bool:
    if candidate.get("kind") != "divergence":
        return False
    return all(
        candidate.get(key) == original.get(key)
        for key in ("code", "block", "span", "mismatch")
    )


def _reproduce_divergence(
    record: Dict[str, object], iterations: int, faults
) -> Tuple[bool, Optional[Dict[str, object]]]:
    plan = _rebuild_plan(record)
    if faults is not None:
        plan = _plan_with(plan, faults)
    interval = record.get("audit_interval") or 0
    with tempfile.TemporaryDirectory(prefix="repro-replay-") as scratch:
        extra = {
            "REPRO_AUDIT": str(int(interval)) if int(interval) > 1 else "1",
            "REPRO_BUNDLE_DIR": scratch,
        }
        with _replay_env(record, extra):
            _run_benchmark(record, iterations, plan)
        for path in list_bundles(Path(scratch)):
            candidate = load_bundle(path)
            if _same_divergence(record, candidate):
                return True, candidate
    return False, None


def _same_cont_divergence(
    original: Dict[str, object], candidate: Dict[str, object]
) -> bool:
    if candidate.get("kind") != "continuation-divergence":
        return False
    return all(
        candidate.get(key) == original.get(key)
        for key in ("code", "check_id", "bytecode_pc", "fact")
    )


def _reproduce_cont_divergence(
    record: Dict[str, object], iterations: int, faults
) -> bool:
    plan = _rebuild_plan(record)
    if faults is not None:
        plan = _plan_with(plan, faults)
    with tempfile.TemporaryDirectory(prefix="repro-replay-") as scratch:
        # The recorded env carries REPRO_AUDIT (the sentinel must be
        # armed for dispatch audits to run) and REPRO_CHAOS_CONT (when
        # chaos seeded the spurious trip in the first place).
        with _replay_env(record, {"REPRO_BUNDLE_DIR": scratch}):
            _run_benchmark(record, iterations, plan)
        for path in list_bundles(Path(scratch)):
            if _same_cont_divergence(record, load_bundle(path)):
                return True
    return False


def _reproduce_engine_exception(
    record: Dict[str, object], iterations: int, faults
) -> bool:
    plan = _plan_with(_rebuild_plan(record), faults)
    with tempfile.TemporaryDirectory(prefix="repro-replay-") as scratch:
        with _replay_env(record, {"REPRO_BUNDLE_DIR": scratch}):
            failure = _run_benchmark(record, iterations, plan)
    return (
        failure is not None
        and type(failure).__name__ == record.get("error_type")
    )


def _reproduce_oracle_failure(
    record: Dict[str, object], iterations: int, faults
) -> bool:
    from ..resilience.oracle import differential_run

    plan = _plan_with(_rebuild_plan(record), faults)
    with tempfile.TemporaryDirectory(prefix="repro-replay-") as scratch:
        with _replay_env(record, {"REPRO_BUNDLE_DIR": scratch}):
            outcome = differential_run(
                str(record["benchmark"]),
                str(record["target"]),
                plan=plan,
                seed=int(record.get("seed", 0)),  # type: ignore[arg-type]
                iterations=iterations,
            )
    return not outcome.ok


def _reproduce_cell_failure(record: Dict[str, object]) -> Tuple[bool, str]:
    from ..exec.cells import RunCell, compute_cell

    data = record.get("cell")
    if not isinstance(data, dict):
        return False, "bundle has no cell record"
    cell = RunCell(
        kind=str(data["kind"]),
        benchmark=str(data["benchmark"]),
        target=str(data["target"]),
        iterations=int(data["iterations"]),  # type: ignore[arg-type]
        rep=int(data.get("rep", 0)),  # type: ignore[arg-type]
        removed=tuple(data.get("removed", ())),
        emit_check_branches=bool(data.get("emit_check_branches", True)),
        noise=bool(data.get("noise", True)),
    )
    with tempfile.TemporaryDirectory(prefix="repro-replay-") as scratch:
        # REPRO_CHAOS_MAIN_PID must NOT name this process: the recorded
        # crash/hang happened in a pool worker and the chaos hook only
        # fires off the main pid — a fresh single-worker pool recreates
        # exactly that.
        with _replay_env(record, {"REPRO_BUNDLE_DIR": scratch}):
            pool = ProcessPoolExecutor(max_workers=1)
            future = pool.submit(compute_cell, cell)
            try:
                future.result(timeout=CELL_REPLAY_TIMEOUT)
                return False, "cell completed without failing"
            except BrokenProcessPool:
                return True, "worker process died again"
            except FutureTimeout:
                return True, (
                    f"worker hung past {CELL_REPLAY_TIMEOUT:.0f}s watchdog"
                )
            except Exception as failure:
                detail = f"{type(failure).__name__}: {failure}"
                recorded = str(record.get("error", ""))
                if type(failure).__name__ in recorded or detail == recorded:
                    return True, f"cell failed again: {detail}"
                return False, f"cell failed differently: {detail}"
            finally:
                for process in list(
                    (getattr(pool, "_processes", None) or {}).values()
                ):
                    try:
                        process.terminate()
                    except OSError:
                        pass
                pool.shutdown(wait=False, cancel_futures=True)


def _regenerate_fuzz_program(record: Dict[str, object], source: Optional[str]):
    """Rebuild the generated program a fuzz bundle records.

    Regenerates from (seed, config) and — when no candidate ``source``
    override is supplied — refuses a generator whose output no longer
    matches the recorded sha256: a stale bundle must never silently
    replay a different program.
    """
    import dataclasses

    from ..fuzz.generator import (
        GENERATOR_VERSION,
        FuzzConfig,
        generate_program,
    )
    from ..fuzz.oracle import source_digest

    version = int(record.get("generator_version", GENERATOR_VERSION))  # type: ignore[arg-type]
    if version != GENERATOR_VERSION:
        raise ValueError(
            f"bundle generator version {version} != {GENERATOR_VERSION}"
        )
    config = FuzzConfig.from_dict(record.get("generator_config") or {})  # type: ignore[arg-type]
    program = generate_program(int(record["generator_seed"]), config)  # type: ignore[arg-type]
    if source is None:
        recorded = record.get("source_sha256")
        if recorded and source_digest(program.source) != str(recorded):
            raise ValueError(
                "regenerated source does not match the recorded sha256"
            )
        return program
    return dataclasses.replace(program, source=source)


def _reproduce_fuzz_divergence(
    record: Dict[str, object], iterations: int, source: Optional[str] = None
) -> bool:
    from ..fuzz.oracle import run_fuzz_program

    if source is None and record.get("minimized_from"):
        # a minimized bundle's source is no longer the generator's
        # output — replay the recorded (shrunken) program directly
        source = str(record["source"])
    try:
        program = _regenerate_fuzz_program(record, source)
    except ValueError:
        return False
    targets = (str(record.get("target", "arm64")),)
    with tempfile.TemporaryDirectory(prefix="repro-replay-") as scratch:
        with _replay_env(record, {"REPRO_BUNDLE_DIR": scratch}):
            verdict = run_fuzz_program(
                program,
                targets=targets,
                iterations=iterations,
                capture=False,
                with_profile=False,
            )
    return not verdict.ok


def _baseline_runs_clean(record: Dict[str, object], source: str) -> bool:
    """Does the candidate program complete an interpreter-only run?"""
    from ..engine import EngineConfig
    from ..suite.runner import BenchmarkRunner, NoiseModel
    from ..suite.spec import BenchmarkSpec

    spec = BenchmarkSpec(
        name=str(record.get("benchmark", "FZ-candidate")),
        category="Objects",
        source=source,
        expected=None,
    )
    with tempfile.TemporaryDirectory(prefix="repro-replay-") as scratch:
        with _replay_env(record, {"REPRO_BUNDLE_DIR": scratch}):
            try:
                BenchmarkRunner(
                    spec,
                    EngineConfig(enable_optimizer=False),
                    NoiseModel(enabled=False),
                ).run(iterations=2)
            except Exception:
                return False
    return True


def _minimize_fuzz(record: Dict[str, object], iterations: int):
    """AST-level shrink of a fuzz bundle's program; the divergence must
    still reproduce and the baseline run must stay clean (a candidate
    that crashes the interpreter is a broken program, not a smaller
    reproducer)."""
    from ..fuzz.minimize import minimize_source

    def predicate(source: str) -> bool:
        if not _baseline_runs_clean(record, source):
            return False
        return _reproduce_fuzz_divergence(record, iterations, source)

    return minimize_source(str(record["source"]), predicate)


# ----------------------------------------------------------------------
# minimization
# ----------------------------------------------------------------------

def _minimize(record: Dict[str, object], reproduce) -> Tuple[int, List]:
    """Greedy shrink: halve iterations toward the latest fault, then drop
    fault-plan entries one at a time.  ``reproduce(iterations, faults)``
    re-runs the failure; every accepted step still reproduces."""
    iterations = int(record.get("iterations", 1))  # type: ignore[arg-type]
    plan = _rebuild_plan(record)
    faults: List = list(plan.faults) if plan is not None else []

    while iterations > 1:
        trial = max(1, iterations // 2)
        if faults:
            trial = max(trial, 1 + max(fault.iteration for fault in faults))
        if trial >= iterations:
            break
        if reproduce(trial, faults):
            iterations = trial
        else:
            break

    index = 0
    while index < len(faults):
        candidate = faults[:index] + faults[index + 1:]
        if reproduce(iterations, candidate):
            faults = candidate
        else:
            index += 1
    return iterations, faults


def _write_minimized(
    record: Dict[str, object],
    iterations: int,
    faults,
    bundle_dir: Path,
    extra: Optional[Dict[str, object]] = None,
) -> Optional[Path]:
    from .bundles import serialize_plan

    payload = {
        key: value
        for key, value in record.items()
        if key not in ("bundle_id", "captured_at", "pid", "schema", "kind")
    }
    payload["iterations"] = iterations
    plan = _plan_with(_rebuild_plan(record), faults)
    payload["fault_plan"] = serialize_plan(plan)
    payload["minimized_from"] = record.get("bundle_id")
    if extra:
        payload.update(extra)
    return capture_bundle(str(record["kind"]), payload, root=bundle_dir)


# ----------------------------------------------------------------------
# entry point
# ----------------------------------------------------------------------

def replay_bundle(
    path: Path, minimize: bool = False
) -> ReplayResult:
    """Re-execute one bundle; optionally shrink it to a minimal reproducer."""
    record = load_bundle(path)
    kind = record.get("kind")
    bundle_dir = path.resolve().parent

    if kind == "divergence":
        def reproduce(iterations, faults):
            hit, _candidate = _reproduce_divergence(record, iterations, faults)
            return hit

        reproduced, _candidate = _reproduce_divergence(
            record,
            int(record.get("iterations", 1)),  # type: ignore[arg-type]
            None,
        )
        result = ReplayResult(
            reproduced,
            "divergence recurred on the recorded audit schedule"
            if reproduced else "no matching divergence was observed",
        )
    elif kind == "continuation-divergence":
        def reproduce(iterations, faults):
            return _reproduce_cont_divergence(record, iterations, faults)

        reproduced = reproduce(
            int(record.get("iterations", 1)),  # type: ignore[arg-type]
            None,
        )
        result = ReplayResult(
            reproduced,
            "spurious continuation dispatch was refused again at the "
            "recorded check"
            if reproduced else "no matching continuation divergence was "
            "observed",
        )
    elif kind == "engine-exception":
        def reproduce(iterations, faults):
            return _reproduce_engine_exception(record, iterations, faults)

        plan = _rebuild_plan(record)
        reproduced = reproduce(
            int(record.get("iterations", 1)),  # type: ignore[arg-type]
            list(plan.faults) if plan is not None else None,
        )
        result = ReplayResult(
            reproduced,
            f"{record.get('error_type')} escaped again"
            if reproduced else "run completed without the recorded exception",
        )
    elif kind == "oracle-failure":
        def reproduce(iterations, faults):
            return _reproduce_oracle_failure(record, iterations, faults)

        plan = _rebuild_plan(record)
        reproduced = reproduce(
            int(record.get("iterations", 1)),  # type: ignore[arg-type]
            list(plan.faults) if plan is not None else None,
        )
        result = ReplayResult(
            reproduced,
            "oracle failed again under the recorded fault plan"
            if reproduced else "oracle passed on replay",
        )
    elif kind == "cell-failure":
        reproduced, detail = _reproduce_cell_failure(record)
        return ReplayResult(reproduced, detail)  # no minimizer for cells
    elif kind == "fuzz-divergence":
        iterations = int(record.get("iterations", 14))  # type: ignore[arg-type]
        reproduced = _reproduce_fuzz_divergence(record, iterations)
        result = ReplayResult(
            reproduced,
            "regenerated program diverged across the tier matrix again"
            if reproduced
            else "tier matrix agreed on replay (or regeneration mismatched)",
        )
        if minimize and reproduced:
            shrunk = _minimize_fuzz(record, iterations)
            from ..fuzz.oracle import source_digest

            payload = {
                key: value
                for key, value in record.items()
                if key not in ("bundle_id", "captured_at", "pid", "schema",
                               "kind")
            }
            payload["source"] = shrunk.source
            payload["source_sha256"] = source_digest(shrunk.source)
            payload["minimized_from"] = record.get("bundle_id")
            payload["minimize_attempts"] = shrunk.attempts
            payload["minimize_reductions"] = shrunk.reductions
            result.minimized = capture_bundle(
                "fuzz-divergence", payload, root=bundle_dir
            )
            before = len(str(record.get("source", "")).splitlines())
            after = len(shrunk.source.splitlines())
            result.detail += (
                f"; program minimized {before} -> {after} line(s) in "
                f"{shrunk.attempts} attempt(s)"
            )
        return result
    else:
        return ReplayResult(False, f"unknown bundle kind {kind!r}")

    if minimize and result.reproduced:
        iterations, faults = _minimize(record, reproduce)
        result.minimized = _write_minimized(
            record, iterations, faults, bundle_dir
        )
        result.detail += (
            f"; minimized to {iterations} iteration(s), "
            f"{len(faults)} fault(s)"
        )
    return result
