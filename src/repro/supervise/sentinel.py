"""Online divergence sentinel for the two-tier block executor.

PR 4 proved the fused tier faithful *offline* (a sweep script diffing
whole-run results); this module holds it to a runtime bisimulation
obligation instead.  On a deterministic audit schedule, the executor
hands the sentinel a basic block it is about to run through the fused
closure.  The sentinel then **shadow-executes** the block twice — once
through the stepped twin (the per-instruction reference) and once
through the fused closure — against copies of the register file, frame
and flag state and a copy-on-write heap overlay, compares the complete
outcome (next block id, bit-exact cycle total, registers, float
registers, frame, special registers, heap writes, branch-predictor and
counter deltas, exception parity), restores all shared state, and only
then lets the real execution proceed.

On a mismatch the sentinel does not crash the run: it **demotes** the
code object to the step tier (``code._supervise_demoted``) for the rest
of the process — in-flight activations switch to stepped twins via
``BlockTable.demote``, which rewrites the driver's block costs to
``inf`` so the ordinary sample-window condition reroutes every block —
and captures a ``divergence`` crash bundle
(:mod:`repro.supervise.bundles`).  Demotion is the Deoptless recovery
discipline applied to our own fast tier: bail out locally, never
diverge globally.

Why shadow execution is side-effect free here: audit-eligible blocks
are exactly those the fused tier may run (no sample tick in the cycle
window, no pending forced deopt trip) whose last instruction is not a
call, ``RET``, ``DEOPT`` or ``JSLDRSMI`` (``BlockTable.auditable``).
Under those conditions the generated closures touch only their
positional state arguments plus the branch predictor and counter
objects — both snapshot-restored around each probe — and the stepped
twin's per-pc sampler poll can never fire (every prefix cost is ≤ the
block total, which is below the sample due point).  Tables using the
rare flag-threading ABI are not audited (documented limitation; the
slim ABI covers every benchmark in the suite).

The audit **schedule** is deterministic: gaps (in *retired
instructions*, the executor's global ``stats.instructions`` counter)
are drawn from a xorshift64* stream seeded by the engine fingerprint,
so two runs of the same engine version audit the same blocks.
Anchoring the schedule to the instruction counter — rather than a
per-activation block countdown — makes progress global across nested
and recursive activations: a driver loop holding a stale local
threshold re-reads :attr:`DivergenceSentinel.due` before auditing, so
a descendant's audit satisfies the ancestor's pending one.
``EngineConfig(audit=)`` / ``REPRO_AUDIT`` select the mean gap; the
default keeps executor-section overhead under 10 % (measured by
``repro.exec.bench``).

``REPRO_CHAOS_AUDIT=corrupt[:N]`` is the test hook: the Nth audit
perturbs the fused shadow's result before comparison, deterministically
seeding a divergence for CI to catch end to end.
"""

from __future__ import annotations

import hashlib
import os
import struct
from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

from ..exec.fingerprint import engine_fingerprint
from .bundles import capture_bundle

if TYPE_CHECKING:
    from ..jit.codegen import CodeObject
    from ..machine.blockjit import BlockTable
    from ..machine.executor import Executor

#: default mean audit gap, in retired instructions.  Prime, so the
#: schedule cannot phase-lock with loop trip counts; large enough that the
#: two-probe audit cost amortizes below the 10 % overhead budget.
DEFAULT_INTERVAL = 9973

_M64 = (1 << 64) - 1
_PACK_D = struct.Struct("<d").pack


def resolve_audit_interval(setting: object) -> Optional[int]:
    """Mean audit gap (in retired instructions) from
    ``EngineConfig(audit=)`` / ``REPRO_AUDIT``.

    ``None`` consults the environment: unset/``0``/``off`` disables,
    ``1``/``on`` enables at :data:`DEFAULT_INTERVAL`, any larger integer
    is the gap itself.  ``True``/``False`` and integers passed
    programmatically follow the same convention.
    """
    if setting is None:
        raw = os.environ.get("REPRO_AUDIT", "")
        if raw.lower() in ("", "0", "false", "off", "no"):
            return None
        if raw.lower() in ("1", "true", "on", "yes"):
            return DEFAULT_INTERVAL
        try:
            value = int(raw)
        except ValueError:
            return None
        return max(2, value)
    if setting is False:
        return None
    if setting is True:
        return DEFAULT_INTERVAL
    value = int(setting)  # type: ignore[call-overload]
    if value <= 0:
        return None
    return max(2, value)


class _ShadowHeap:
    """Copy-on-write overlay over the executor's heap word list.

    Shadow probes read through to the real heap but land every write in
    ``writes``, which doubles as the probe's heap-effect record for the
    divergence comparison and the bundle digest.
    """

    __slots__ = ("base", "writes")

    def __init__(self, base: List[int]) -> None:
        self.base = base
        self.writes: Dict[int, object] = {}

    def __getitem__(self, address: int) -> object:
        writes = self.writes
        if address in writes:
            return writes[address]
        return self.base[address]

    def __setitem__(self, address: int, value: object) -> None:
        self.writes[address] = value

    def __len__(self) -> int:
        return len(self.base)


class _Probe:
    """Outcome of one shadow execution of one block."""

    __slots__ = (
        "bid", "cycles", "regs", "fregs", "frame", "special", "writes",
        "pred", "stats", "error",
    )

    def __init__(self) -> None:
        self.bid: Optional[int] = None
        self.cycles: Optional[float] = None
        self.error: Optional[Tuple[str, str]] = None


def _word_bits(value: object) -> object:
    """A comparison/digest key that is bit-exact for floats."""
    if type(value) is float:
        return _PACK_D(value)
    return value


def _words_equal(left, right) -> bool:
    if len(left) != len(right):
        return False
    for a, b in zip(left, right):
        if a != b or _word_bits(a) != _word_bits(b):
            return False
    return True


def _writes_equal(left: Dict[int, object], right: Dict[int, object]) -> bool:
    if left.keys() != right.keys():
        return False
    for address, value in left.items():
        other = right[address]
        if value != other or _word_bits(value) != _word_bits(other):
            return False
    return True


def _state_digest(probe: "_Probe") -> str:
    digest = hashlib.sha256()
    digest.update(repr(probe.bid).encode())
    if probe.cycles is not None:
        digest.update(_PACK_D(probe.cycles))
    for group in (probe.regs, probe.fregs, probe.frame, probe.special):
        digest.update(repr([_word_bits(v) for v in group]).encode())
    digest.update(
        repr(sorted((k, _word_bits(v)) for k, v in probe.writes.items())).encode()
    )
    digest.update(repr(probe.error).encode())
    return digest.hexdigest()[:16]


def _entry_digest(regs, fregs, frame, special, cycles: float) -> str:
    digest = hashlib.sha256()
    digest.update(_PACK_D(cycles))
    for group in (regs, fregs, frame, special):
        digest.update(repr([_word_bits(v) for v in group]).encode())
    return digest.hexdigest()[:16]


class DivergenceSentinel:
    """Deterministic audit schedule plus the audit procedure itself."""

    def __init__(self, interval: int = DEFAULT_INTERVAL,
                 seed: Optional[int] = None) -> None:
        self.interval = max(2, int(interval))
        if seed is None:
            seed = int(engine_fingerprint()[:16], 16)
        self._state = (seed | 1) & _M64
        #: absolute ``stats.instructions`` threshold for the next audit.
        #: Starts at 0 so the first auditable fused block is audited even
        #: in very short runs; each audit advances it by ``next_interval``.
        self.due = 0
        #: audits performed / divergences found, for tests and bundles
        self.audits = 0
        #: of which, whole-trace audits (repro.machine.tracejit)
        self.trace_audits = 0
        self.divergences = 0
        #: (code-name, block-id) per demotion, in discovery order
        self.demotions: List[Tuple[Optional[str], int]] = []
        chaos = os.environ.get("REPRO_CHAOS_AUDIT", "")
        self._chaos_at: Optional[int] = None
        if chaos.startswith("corrupt"):
            _, _, nth = chaos.partition(":")
            try:
                self._chaos_at = max(1, int(nth)) if nth else 1
            except ValueError:
                self._chaos_at = 1
        #: REPRO_CHAOS_TRACE=corrupt[:N] — same hook, for trace audits:
        #: the Nth *trace* audit perturbs the trace probe's result so CI
        #: can seed a trace divergence end to end.
        chaos_trace = os.environ.get("REPRO_CHAOS_TRACE", "")
        self._chaos_trace_at: Optional[int] = None
        if chaos_trace.startswith("corrupt"):
            _, _, nth = chaos_trace.partition(":")
            try:
                self._chaos_trace_at = max(1, int(nth)) if nth else 1
            except ValueError:
                self._chaos_trace_at = 1
        #: continuation-dispatch audits (repro.machine.continuations):
        #: before a deopt re-dispatch the engine asks the sentinel to
        #: re-evaluate the failing guard's fact against the live register
        #: file.  A guard that reports a trip while its fact still holds
        #: is *spurious* — the dispatch is refused, the function's
        #: variants are poisoned, and a ``continuation-divergence``
        #: bundle is captured.
        self.cont_audits = 0
        self.cont_demotions = 0
        #: (code-name, bytecode-pc) per poisoned dispatch site
        self.cont_demoted: List[Tuple[Optional[str], int]] = []
        #: REPRO_CHAOS_CONT=spurious[:N] — the Nth continuation audit
        #: reports the guard fact as still holding, deterministically
        #: seeding a spurious-trip demotion for CI to catch end to end.
        chaos_cont = os.environ.get("REPRO_CHAOS_CONT", "")
        self._chaos_cont_at: Optional[int] = None
        if chaos_cont.startswith("spurious"):
            _, _, nth = chaos_cont.partition(":")
            try:
                self._chaos_cont_at = max(1, int(nth)) if nth else 1
            except ValueError:
                self._chaos_cont_at = 1
        #: block-version audits (repro.machine.lbbv): a version's driver
        #: slot shares the base block's stepped twin, so the regular
        #: block audit covers it — these count how many audits landed on
        #: version slots.  REPRO_CHAOS_LBBV=corrupt[:N] perturbs the Nth
        #: such audit, deterministically seeding a version divergence
        #: (and the whole-table demotion it triggers) for CI to replay.
        self.version_audits = 0
        chaos_lbbv = os.environ.get("REPRO_CHAOS_LBBV", "")
        self._chaos_lbbv_at: Optional[int] = None
        if chaos_lbbv.startswith("corrupt"):
            _, _, nth = chaos_lbbv.partition(":")
            try:
                self._chaos_lbbv_at = max(1, int(nth)) if nth else 1
            except ValueError:
                self._chaos_lbbv_at = 1

    # -- schedule --------------------------------------------------------

    def _next_random(self) -> int:
        state = self._state
        state ^= (state << 13) & _M64
        state ^= state >> 7
        state ^= (state << 17) & _M64
        self._state = state
        return (state * 2685821657736338717) & _M64

    def next_interval(self) -> int:
        """Instructions until the next audit: uniform on [1, 2*interval-1],
        so the mean matches ``interval`` while defeating phase lock."""
        return 1 + self._next_random() % (2 * self.interval - 1)

    # -- the audit -------------------------------------------------------

    def _shadow(self, ex: "Executor", fn, regs, fregs, frame, special,
                cycles_in: float) -> _Probe:
        """Run one closure against copied state; restore shared state."""
        pred = ex.predictor
        stats = ex.stats
        pred_snap = (pred.history, pred.predictions, pred.mispredictions,
                     bytes(pred.table))
        stats_snap = (stats.instructions, stats.branches,
                      stats.taken_branches, stats.mispredictions,
                      stats.loads, stats.stores, stats.deopt_branch_instrs)
        exec_snap = (ex.deopt_state, ex.forced_deopt_trips, ex.ret_value,
                     ex.cycles)
        # Typed variants bump python-level elision counters; a shadow
        # probe must not inflate the real run's tally.
        typed_snap = list(ex.typed_counters)
        probe = _Probe()
        probe.regs = list(regs)
        probe.fregs = list(fregs)
        probe.frame = list(frame)
        probe.special = list(special)
        shadow_heap = _ShadowHeap(ex.heap.words)
        try:
            try:
                probe.bid, probe.cycles = fn(
                    probe.regs, probe.fregs, probe.frame, probe.special,
                    shadow_heap, cycles_in,
                )
            except Exception as failure:
                probe.error = (type(failure).__name__, str(failure))
        finally:
            probe.writes = shadow_heap.writes
            # Both probes start from the identical restored snapshot, so
            # absolute post-state compares exactly like deltas would —
            # including the full 2-bit counter table.
            probe.pred = (pred.history, pred.predictions,
                          pred.mispredictions, bytes(pred.table))
            probe.stats = (stats.instructions, stats.branches,
                           stats.taken_branches, stats.mispredictions,
                           stats.loads, stats.stores,
                           stats.deopt_branch_instrs)
            pred.history = pred_snap[0]
            pred.predictions = pred_snap[1]
            pred.mispredictions = pred_snap[2]
            pred.table[:] = pred_snap[3]
            (stats.instructions, stats.branches, stats.taken_branches,
             stats.mispredictions, stats.loads, stats.stores,
             stats.deopt_branch_instrs) = stats_snap
            (ex.deopt_state, ex.forced_deopt_trips, ex.ret_value,
             ex.cycles) = exec_snap
            ex.typed_counters[:] = typed_snap
        return probe

    def _compare(self, stepped: _Probe, fused: _Probe) -> List[str]:
        mismatch: List[str] = []
        if stepped.error != fused.error:
            mismatch.append("error")
        if stepped.bid != fused.bid:
            mismatch.append("next-block")
        if (stepped.cycles is None) != (fused.cycles is None) or (
            stepped.cycles is not None
            and _PACK_D(stepped.cycles) != _PACK_D(fused.cycles)
        ):
            mismatch.append("cycles")
        if not _words_equal(stepped.regs, fused.regs):
            mismatch.append("regs")
        if not _words_equal(stepped.fregs, fused.fregs):
            mismatch.append("fregs")
        if not _words_equal(stepped.frame, fused.frame):
            mismatch.append("frame")
        if not _words_equal(stepped.special, fused.special):
            mismatch.append("special")
        if not _writes_equal(stepped.writes, fused.writes):
            mismatch.append("heap")
        if stepped.pred != fused.pred:
            mismatch.append("predictor")
        if stepped.stats != fused.stats:
            mismatch.append("stats")
        return mismatch

    def audit_block(self, ex: "Executor", code: "CodeObject",
                    table: "BlockTable", bid: int, regs, fregs, frame,
                    special, cycles: float) -> bool:
        """Audit one block if eligible; returns True when an audit ran.

        Must only be called under fused-path conditions (no sample tick
        in the window, no pending trips).  On divergence the code object
        is demoted and a bundle captured; the caller re-checks
        ``table.demoted`` and routes the *real* execution accordingly.
        """
        if not table.auditable[bid]:
            return False
        # A version slot (index past the block spans) carries the base
        # block's cost and generic stepped twin, so the ordinary audit
        # machinery applies verbatim; only the probes' exit indices need
        # folding back onto base block ids (a version body legitimately
        # returns a chained version index where the stepped twin returns
        # the base successor) and the version hit counters need the same
        # shadow-probe protection the typed counters get.
        versions = getattr(code, "_versions", None)
        base = bid
        if bid >= len(table.spans):
            if versions is None:
                return False
            base = versions.base_of[bid] if bid < len(versions.base_of) else -1
            if base < 0:
                return False
            self.version_audits += 1
        self.audits += 1
        total_cost, fused_fn, stepped_fn = table.driver[bid]
        hits_snap = None if versions is None else list(versions.hits)
        stepped = self._shadow(ex, stepped_fn, regs, fregs, frame, special,
                               cycles)
        fused = self._shadow(ex, fused_fn, regs, fregs, frame, special,
                             cycles + total_cost)
        if versions is not None:
            grown = len(versions.hits) - len(hits_snap)
            versions.hits[:] = hits_snap + [0] * grown
            fused.bid = versions.base_bid(fused.bid)
            stepped.bid = versions.base_bid(stepped.bid)
        chaos = self._chaos_at is not None and self.audits == self._chaos_at
        if bid != base and self._chaos_lbbv_at is not None \
                and self.version_audits == self._chaos_lbbv_at:
            chaos = True
        if chaos and fused.error is None:
            fused.regs[0] ^= 1
        mismatch = self._compare(stepped, fused)
        if not mismatch:
            return True
        self.divergences += 1
        table.demote()
        if versions is not None:
            versions.disable()
        code._supervise_demoted = True
        name = getattr(getattr(code, "shared", None), "name", None)
        self.demotions.append((name, base))
        start, end = table.spans[base]
        capture_bundle("divergence", {
            "code": name,
            "isa": getattr(code.target, "name", str(code.target)),
            "block": base,
            "version": bid if bid != base else None,
            "span": [start, end],
            "mismatch": mismatch,
            "audit_index": self.audits,
            "audit_interval": self.interval,
            "chaos": chaos,
            "entry_cycles_bits": _PACK_D(cycles).hex(),
            "pre_state": _entry_digest(regs, fregs, frame, special, cycles),
            "stepped_post": _state_digest(stepped),
            "fused_post": _state_digest(fused),
            "stepped_error": stepped.error,
            "fused_error": fused.error,
        })
        return True

    def audit_dispatch(self, engine, shared, code: "CodeObject", point,
                       check_id: int, fact, regs) -> bool:
        """Audit one continuation dispatch; True when the trip is spurious.

        Called by the engine *before* a deoptless re-dispatch.  The
        failing guard claimed its fact no longer holds; the sentinel
        re-evaluates the fact against the live register file and heap
        (``repro.machine.continuations.fact_holds`` — the pass-polarity
        mirror of the generated guard tests).  A trip whose fact still
        holds is a spurious deopt — a broken guard, a corrupted check
        id, or an injected flip — and re-dispatching on it would
        specialize for a type-state the program never left.  The
        sentinel refuses the dispatch (the caller falls back to the
        classic bailout), poisons the function's continuation variants,
        and captures a ``continuation-divergence`` bundle.

        Facts the sentinel cannot evaluate (``fact is None``, or
        ``fact_holds`` returns ``None`` on an out-of-range probe) are
        passed through un-audited: the classic path remains the safety
        net and a refusal here must never rest on a guess.
        """
        self.cont_audits += 1
        from ..machine.continuations import fact_holds
        held = None if fact is None else fact_holds(fact, regs,
                                                    engine.heap.words)
        chaos = (self._chaos_cont_at is not None
                 and self.cont_audits == self._chaos_cont_at)
        if chaos:
            held = True
        if held is not True:
            return False
        self.cont_demotions += 1
        self.divergences += 1
        name = getattr(shared, "name", None)
        self.cont_demoted.append((name, point.bytecode_pc))
        table = getattr(engine, "continuations", None)
        if table is not None:
            table.poison(shared.index)
            table.spurious_dispatches += 1
        fact_text: Optional[str] = None
        if fact is not None:
            from ..analysis.typeflow import render_fact
            try:
                fact_text = render_fact(fact)
            except Exception:
                fact_text = repr(fact)
        capture_bundle("continuation-divergence", {
            "code": name,
            "isa": getattr(code.target, "name", str(code.target)),
            "check_id": check_id,
            "check_kind": getattr(getattr(point, "kind", None), "name", None),
            "bytecode_pc": point.bytecode_pc,
            "fact": fact_text,
            "fact_held": True,
            "cont_audit_index": self.cont_audits,
            "chaos": chaos,
            "regs_sample": [regs[i] for i in range(min(len(regs), 8))],
            "tier_rung": getattr(shared, "tier_rung", 0),
        })
        return True

    def audit_trace(self, ex: "Executor", code: "CodeObject",
                    table: "BlockTable", tt, info, regs, fregs, frame,
                    special, cycles: float) -> bool:
        """Audit one compiled trace if eligible; True when an audit ran.

        The trace probe is the trace's ``once`` variant (single chain
        pass, generic bodies, entry-cycles ABI — the trace adds block
        costs internally); the reference probe replays the same chain
        through the blocks' stepped twins, stopping where control leaves
        the chain.  Both start from the identical entry state, so the
        comparison covers chain mechanics end to end: segment side-exit
        placement, call-free terminator restructuring, per-block cycle
        and predictor accounting.  Only call-free chains are auditable
        (``TraceInfo.auditable``), the same rule call blocks follow.

        On divergence the whole table is demoted — ``BlockTable.demote``
        tears the traces down with the blocks — and a ``divergence``
        bundle is captured with the chain recorded under ``"trace"``.
        """
        if not info.auditable:
            return False
        self.audits += 1
        self.trace_audits += 1
        stepped = self._shadow(ex, info.stepped_once, regs, fregs, frame,
                               special, cycles)
        fused = self._shadow(ex, info.once, regs, fregs, frame, special,
                             cycles)
        chaos = (self._chaos_trace_at is not None
                 and self.trace_audits == self._chaos_trace_at)
        if chaos and fused.error is None:
            fused.regs[0] ^= 1
        mismatch = self._compare(stepped, fused)
        if not mismatch:
            return True
        self.divergences += 1
        table.demote()
        code._supervise_demoted = True
        name = getattr(getattr(code, "shared", None), "name", None)
        self.demotions.append((name, info.head))
        start, end = table.spans[info.head]
        capture_bundle("divergence", {
            "code": name,
            "isa": getattr(code.target, "name", str(code.target)),
            "block": info.head,
            "span": [start, end],
            "trace": {
                "head": info.head,
                "chain": list(info.chain),
                "cyclic": info.cyclic,
            },
            "mismatch": mismatch,
            "audit_index": self.audits,
            "audit_interval": self.interval,
            "chaos": chaos,
            "entry_cycles_bits": _PACK_D(cycles).hex(),
            "pre_state": _entry_digest(regs, fregs, frame, special, cycles),
            "stepped_post": _state_digest(stepped),
            "fused_post": _state_digest(fused),
            "stepped_error": stepped.error,
            "fused_error": fused.error,
        })
        return True
