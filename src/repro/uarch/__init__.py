"""Microarchitectural timing models: fast cost model + detailed pipelines."""

from ..machine.executor import BranchPredictor, CostModel
from .blockcost import BlockCost, block_profile, block_shape_summary
from .cache import Cache, CacheHierarchy
from .pipeline.common import PipelineStats, decode
from .pipeline.configs import CPU_BY_NAME, EXYNOS_BIG, GEM5_CPUS, HPD, INORDER_LITTLE, O3_KPG, CPUConfig
from .pipeline.inorder import simulate, simulate_inorder
from .pipeline.o3 import simulate_o3

__all__ = [
    "BlockCost",
    "BranchPredictor",
    "CPUConfig",
    "CPU_BY_NAME",
    "Cache",
    "CacheHierarchy",
    "CostModel",
    "EXYNOS_BIG",
    "GEM5_CPUS",
    "HPD",
    "INORDER_LITTLE",
    "O3_KPG",
    "PipelineStats",
    "block_profile",
    "block_shape_summary",
    "decode",
    "simulate",
    "simulate_inorder",
    "simulate_o3",
]
