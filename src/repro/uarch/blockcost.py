"""Block-granular cost accounting over compiled code objects.

The block-compiled executor (:mod:`repro.machine.blockjit`) charges each
fused basic block's base cycle cost in a single add.  This module exposes
the same block-granular view of a code object as a static profile —
per-block base costs and instruction-class mixes — for the bench
harness's executor section and for reasoning about which blocks dominate
a function's fast-timing-model cost.

The per-block ``base_cost`` is the identical left-folded float the two
executor tiers accumulate (the block's decoded cycle prefix at its last
instruction), so summing profile costs weighted by block execution counts
reproduces executor cycle totals exactly, branch penalties aside.

As a CLI the module doubles as the trace tier's formation report::

    python -m repro.uarch.blockcost FIB --chains

runs one benchmark with the trace tier armed at low thresholds and
prints the per-edge retirement histogram the chain detector counted
plus every chain it stitched (head, blocks, cyclic/call-spanning/
auditable flags, guards elided).  With ``--versions`` it reports the
lazy block versioning tier (:mod:`repro.machine.lbbv`) instead:
per-block version-table occupancy, each version's keyed type-state
with its hit count, and which states went hot.  Without either flag it
prints the static per-block cost profile of the compiled code objects.
"""

from __future__ import annotations

from typing import List, Optional

from ..machine.blockjit import block_spans
from ..machine.dispatch import decode
from ..machine.executor import CostModel


class BlockCost:
    """Static profile of one fused basic block."""

    __slots__ = ("start", "end", "n_instr", "base_cost")

    def __init__(self, start: int, end: int, n_instr: int, base_cost: float) -> None:
        self.start = start
        self.end = end
        self.n_instr = n_instr
        self.base_cost = base_cost

    def as_dict(self) -> dict:
        return {
            "start": self.start,
            "end": self.end,
            "instructions": self.n_instr,
            "base_cost": self.base_cost,
        }


def block_profile(code, cost_model: Optional[CostModel] = None) -> List[BlockCost]:
    """Per-block static costs for ``code``, in block order.

    Reuses the code object's cached decode when its cost prefixes were
    computed under an equivalent cost model; otherwise decodes afresh.
    """
    decoded = code._decoded
    if decoded is None or cost_model is not None:
        decoded = decode(code, (cost_model or CostModel()).op_costs())
    profile = []
    for start, end in block_spans(code.instrs):
        profile.append(BlockCost(start, end, end - start, decoded[end - 1][8]))
    return profile


def block_shape_summary(codes, cost_model: Optional[CostModel] = None) -> dict:
    """Aggregate block-partition shape over a set of code objects.

    Reported by ``python -m repro.exec.bench`` so perf runs record how
    much straight-line work each superinstruction fuses (the lever the
    block executor's speedup rides on).
    """
    code_list = list(codes)
    blocks = 0
    instructions = 0
    base_cycles = 0.0
    for code in code_list:
        for entry in block_profile(code, cost_model):
            blocks += 1
            instructions += entry.n_instr
            base_cycles += entry.base_cost
    return {
        "code_objects": len(code_list),
        "blocks": blocks,
        "instructions": instructions,
        "mean_block_len": (instructions / blocks) if blocks else 0.0,
        "static_base_cycles": base_cycles,
    }


# -- CLI -----------------------------------------------------------------


def _print_chains(engine) -> None:
    tables = [
        code._traces
        for code in engine._code_objects
        if code._traces is not None
        and code._traces.executor is engine.executor
    ]
    if not tables:
        print("no trace tables (trace tier off or nothing compiled)")
        return
    for tt in tables:
        name = tt.code.shared.info.name or "<anonymous>"
        state = ("disabled" if tt.disabled
                 else "promoted" if tt.promoted else "counting")
        print(f"== {name} [{tt.code.target.name}] — {state}, "
              f"{tt.entries} activations counted ==")
        if tt.edge_counts:
            print("  edge histogram (src -> dst : retirements):")
            ranked = sorted(tt.edge_counts.items(),
                            key=lambda item: (-item[1], item[0]))
            peak = ranked[0][1]
            for (src, dst), count in ranked:
                bar = "#" * max(1, round(40 * count / peak))
                kind = " (back-edge)" if dst <= src else ""
                print(f"    {src:4d} -> {dst:<4d} : {count:8d} {bar}{kind}")
        else:
            print("  no edges counted")
        if not tt.traces:
            print("  no chains formed")
            continue
        for info in sorted(tt.traces.values(), key=lambda t: t.head):
            flags = []
            if info.cyclic:
                flags.append("cyclic")
            if info.n_calls:
                flags.append(f"spans {info.n_calls} call(s)")
            if info.auditable:
                flags.append("auditable")
            if info.guards_elided:
                flags.append(f"{info.guards_elided} guards elided")
            chain = " -> ".join(str(bid) for bid in info.chain)
            print(f"  chain @ block {info.head}: [{chain}]"
                  + (f"  ({', '.join(flags)})" if flags else ""))


def _print_versions(engine) -> None:
    stats = engine.version_stats()
    if not stats["tables"]:
        print("no version tables (lbbv off, or typed tier inactive)")
        return
    for table in stats["tables"]:
        name = table["code"] or "<anonymous>"
        occupancy = table["occupancy"]
        print(f"== {name} — {sum(occupancy.values())} versions over "
              f"{len(occupancy)} blocks ==")
        rows = sorted(table["states"], key=lambda r: (-r["hits"], r["block"]))
        peak = max((r["hits"] for r in rows), default=0)
        for row in rows:
            flags = []
            if row["elides_site"]:
                flags.append("elides site")
            if row["negated"]:
                flags.append("negated seed")
            if not row["compiled"]:
                flags.append("lazy")
            if row["chained_out"]:
                chained = ",".join(
                    f"{succ}->v{idx}" for succ, idx in row["chained_out"]
                )
                flags.append(f"chains [{chained}]")
            bar = "#" * (max(1, round(30 * row["hits"] / peak))
                         if peak and row["hits"] else 0)
            state = " & ".join(row["state"]) or "<generic>"
            print(f"  block {row['block']:3d} v{row['index']:<3d} "
                  f"{row['hits']:8d} hits {bar:31s} {state}"
                  + (f"  ({', '.join(flags)})" if flags else ""))
        widened = table["widened"]
        if widened:
            print("  widened blocks: "
                  + ", ".join(f"{bid} ({n}x)"
                              for bid, n in sorted(widened.items())))
    print("-- version_stats --")
    for key, value in stats.items():
        if key != "tables":
            print(f"  {key}: {value}")


def _print_profile(engine) -> None:
    for code in engine._code_objects:
        name = code.shared.info.name or "<anonymous>"
        profile = block_profile(code)
        print(f"== {name} [{code.target.name}] — {len(profile)} blocks ==")
        for bid, entry in enumerate(profile):
            print(f"  block {bid:3d} [{entry.start:4d}, {entry.end:4d})  "
                  f"{entry.n_instr:3d} instr  base {entry.base_cost:9.2f} cyc")


def main(argv=None) -> int:
    import argparse
    import os

    parser = argparse.ArgumentParser(
        prog="repro.uarch.blockcost",
        description="block-cost profile / trace-chain formation report",
    )
    parser.add_argument("benchmark")
    parser.add_argument("--chains", action="store_true",
                        help="run with the trace tier armed and print the "
                             "edge-frequency histogram and formed chains")
    parser.add_argument("--versions", action="store_true",
                        help="run with the lbbv tier armed and print "
                             "per-block version occupancy, keyed states "
                             "and hit counts (which states are hot)")
    parser.add_argument("--iterations", type=int, default=10)
    args = parser.parse_args(argv)

    if args.chains:
        # Low thresholds so short CLI runs promote; same knobs the
        # chaos driver uses.  Real runs keep the defaults.
        os.environ.setdefault("REPRO_TRACEJIT_BUDGET", "400")
        os.environ.setdefault("REPRO_TRACEJIT_HOT", "8")
        os.environ.setdefault("REPRO_TRACEJIT_ENTRY", "8")
    if args.versions:
        os.environ["REPRO_LBBV"] = "1"

    from ..suite.runner import BenchmarkRunner
    from ..suite.spec import get_benchmark

    runner = BenchmarkRunner(get_benchmark(args.benchmark))
    runner.run(iterations=args.iterations)
    engine = runner.last_engine
    assert engine is not None
    if args.chains:
        # Force promotion even if the budget did not run out, so the
        # report always shows what the counters would stitch.
        for code in engine._code_objects:
            tt = code._traces
            if tt is not None and tt.counting:
                tt.promote()
                tt.counting = False
        _print_chains(engine)
        stats = engine.trace_stats()
        print("-- trace_stats --")
        for key, value in stats.items():
            print(f"  {key}: {value}")
    elif args.versions:
        _print_versions(engine)
    else:
        _print_profile(engine)
    return 0


if __name__ == "__main__":
    import sys

    sys.exit(main())
