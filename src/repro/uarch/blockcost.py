"""Block-granular cost accounting over compiled code objects.

The block-compiled executor (:mod:`repro.machine.blockjit`) charges each
fused basic block's base cycle cost in a single add.  This module exposes
the same block-granular view of a code object as a static profile —
per-block base costs and instruction-class mixes — for the bench
harness's executor section and for reasoning about which blocks dominate
a function's fast-timing-model cost.

The per-block ``base_cost`` is the identical left-folded float the two
executor tiers accumulate (the block's decoded cycle prefix at its last
instruction), so summing profile costs weighted by block execution counts
reproduces executor cycle totals exactly, branch penalties aside.
"""

from __future__ import annotations

from typing import List, Optional

from ..machine.blockjit import block_spans
from ..machine.dispatch import decode
from ..machine.executor import CostModel


class BlockCost:
    """Static profile of one fused basic block."""

    __slots__ = ("start", "end", "n_instr", "base_cost")

    def __init__(self, start: int, end: int, n_instr: int, base_cost: float) -> None:
        self.start = start
        self.end = end
        self.n_instr = n_instr
        self.base_cost = base_cost

    def as_dict(self) -> dict:
        return {
            "start": self.start,
            "end": self.end,
            "instructions": self.n_instr,
            "base_cost": self.base_cost,
        }


def block_profile(code, cost_model: Optional[CostModel] = None) -> List[BlockCost]:
    """Per-block static costs for ``code``, in block order.

    Reuses the code object's cached decode when its cost prefixes were
    computed under an equivalent cost model; otherwise decodes afresh.
    """
    decoded = code._decoded
    if decoded is None or cost_model is not None:
        decoded = decode(code, (cost_model or CostModel()).op_costs())
    profile = []
    for start, end in block_spans(code.instrs):
        profile.append(BlockCost(start, end, end - start, decoded[end - 1][8]))
    return profile


def block_shape_summary(codes, cost_model: Optional[CostModel] = None) -> dict:
    """Aggregate block-partition shape over a set of code objects.

    Reported by ``python -m repro.exec.bench`` so perf runs record how
    much straight-line work each superinstruction fuses (the lever the
    block executor's speedup rides on).
    """
    code_list = list(codes)
    blocks = 0
    instructions = 0
    base_cycles = 0.0
    for code in code_list:
        for entry in block_profile(code, cost_model):
            blocks += 1
            instructions += entry.n_instr
            base_cycles += entry.base_cost
    return {
        "code_objects": len(code_list),
        "blocks": blocks,
        "instructions": instructions,
        "mean_block_len": (instructions / blocks) if blocks else 0.0,
        "static_base_cycles": base_cycles,
    }
