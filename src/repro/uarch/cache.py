"""Set-associative cache hierarchy for the detailed pipeline models."""

from __future__ import annotations

from typing import Dict, List


class Cache:
    """One level: set-associative, LRU, write-allocate."""

    def __init__(self, size_bytes: int, ways: int, line_bytes: int = 64) -> None:
        self.line_bytes = line_bytes
        self.ways = ways
        self.sets = max(1, size_bytes // (ways * line_bytes))
        self._lines: List[List[int]] = [[] for _ in range(self.sets)]
        self.hits = 0
        self.misses = 0

    def access(self, byte_addr: int) -> bool:
        """True on hit; installs the line on miss (LRU)."""
        line = byte_addr // self.line_bytes
        index = line % self.sets
        entries = self._lines[index]
        if line in entries:
            entries.remove(line)
            entries.append(line)
            self.hits += 1
            return True
        self.misses += 1
        entries.append(line)
        if len(entries) > self.ways:
            entries.pop(0)
        return False


class CacheHierarchy:
    """L1D + shared L2 with per-level latencies."""

    def __init__(
        self,
        l1_size: int = 32 * 1024,
        l1_ways: int = 4,
        l2_size: int = 512 * 1024,
        l2_ways: int = 8,
        l1_latency: int = 4,
        l2_latency: int = 14,
        memory_latency: int = 90,
    ) -> None:
        self.l1 = Cache(l1_size, l1_ways)
        self.l2 = Cache(l2_size, l2_ways)
        self.l1_latency = l1_latency
        self.l2_latency = l2_latency
        self.memory_latency = memory_latency

    def load_latency(self, word_addr: int) -> int:
        byte_addr = word_addr * 8
        if self.l1.access(byte_addr):
            return self.l1_latency
        if self.l2.access(byte_addr):
            return self.l2_latency
        return self.memory_latency

    def stats(self) -> Dict[str, int]:
        return {
            "l1_hits": self.l1.hits,
            "l1_misses": self.l1.misses,
            "l2_hits": self.l2.hits,
            "l2_misses": self.l2.misses,
        }
