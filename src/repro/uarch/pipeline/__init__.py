"""Detailed pipeline models (in-order + out-of-order) and CPU configs."""

from .common import DecodedInstr, PipelineStats, decode
from .configs import CPU_BY_NAME, GEM5_CPUS, CPUConfig
from .inorder import simulate, simulate_inorder
from .o3 import simulate_o3

__all__ = [
    "CPUConfig",
    "CPU_BY_NAME",
    "DecodedInstr",
    "GEM5_CPUS",
    "PipelineStats",
    "decode",
    "simulate",
    "simulate_inorder",
    "simulate_o3",
]
