"""Shared machinery for the trace-driven pipeline models."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ...isa.base import FRAME_BASE, MachineInstr, MOp

#: virtual register-id spaces for dependence tracking
FLAGS_REG = 200
FLOAT_BASE = 64
FRAME_BASE_REG = 201  # frame slots modelled as one dependence cell per slot
FRAME_SLOT_BASE = 210

_FLOAT_WRITERS = {
    MOp.LDRF, MOp.FMOVR, MOp.FMOVI, MOp.FADD, MOp.FSUB, MOp.FMUL, MOp.FDIV,
    MOp.FNEG, MOp.FABS, MOp.SCVTF,
}
_FLAG_SETTERS = {
    MOp.ADDS, MOp.SUBS, MOp.ADDSI, MOp.SUBSI, MOp.MULS, MOp.NEGS, MOp.CMP,
    MOp.CMPI, MOp.TST, MOp.TSTI, MOp.CMP_MEM, MOp.CMPI_MEM, MOp.TSTI_MEM,
    MOp.FCMP, MOp.MZCMP,
}
_FLAG_READERS = {MOp.BCC, MOp.CSET}
_FLOAT_SRC1 = {MOp.STRF, MOp.FCMP, MOp.FCVTZS, MOp.FMOVR, MOp.FNEG, MOp.FABS,
               MOp.FADD, MOp.FSUB, MOp.FMUL, MOp.FDIV}
_FLOAT_SRC2 = {MOp.FCMP, MOp.FADD, MOp.FSUB, MOp.FMUL, MOp.FDIV}


@dataclass
class DecodedInstr:
    reads: Tuple[int, ...]
    writes: Tuple[int, ...]
    klass: str  # alu/mov/mul/div/load/store/fp/fpdiv/branch/call
    is_branch: bool
    is_load: bool
    is_store: bool


_CLASS_OF = {
    MOp.MOVR: "mov", MOp.MOVI: "mov", MOp.FMOVR: "mov", MOp.FMOVI: "mov",
    MOp.MUL: "mul", MOp.MULS: "mul", MOp.SDIV: "div",
    MOp.LDR: "load", MOp.LDRF: "load", MOp.JSLDRSMI: "load",
    MOp.STR: "store", MOp.STRF: "store",
    MOp.CMP_MEM: "load", MOp.CMPI_MEM: "load", MOp.TSTI_MEM: "load",
    MOp.FADD: "fp", MOp.FSUB: "fp", MOp.FMUL: "fp", MOp.FNEG: "fp",
    MOp.FABS: "fp", MOp.FCMP: "fp", MOp.SCVTF: "fp", MOp.FCVTZS: "fp",
    MOp.FDIV: "fpdiv",
    MOp.B: "branch", MOp.BCC: "branch", MOp.RET: "branch",
    MOp.CALL_JS: "call", MOp.CALL_DYN: "call", MOp.CALL_RT: "call",
    MOp.DEOPT: "alu", MOp.MSR: "mov",
}


def decode(instr: MachineInstr) -> DecodedInstr:
    """Dependence and class information for one machine instruction."""
    op = instr.op
    reads: List[int] = []
    writes: List[int] = []
    klass = _CLASS_OF.get(op, "alu")

    def int_reg(r: int) -> Optional[int]:
        return r if r >= 0 else None

    # source registers
    if op in _FLOAT_SRC1:
        if instr.s1 >= 0:
            reads.append(FLOAT_BASE + instr.s1)
    elif instr.s1 >= 0:
        reads.append(instr.s1)
    if op in _FLOAT_SRC2:
        if instr.s2 >= 0:
            reads.append(FLOAT_BASE + instr.s2)
    elif instr.s2 >= 0:
        reads.append(instr.s2)
    if instr.mem is not None:
        base, index, _scale, disp = instr.mem
        if base == FRAME_BASE:
            cell = FRAME_SLOT_BASE + (disp % 32)
            if op in (MOp.STR, MOp.STRF):
                writes.append(cell)
            else:
                reads.append(cell)
        else:
            reads.append(base)
            if index >= 0:
                reads.append(index)
    if op in _FLAG_SETTERS:
        writes.append(FLAGS_REG)
    if op in _FLAG_READERS:
        reads.append(FLAGS_REG)
    if op in (MOp.CALL_JS, MOp.CALL_DYN, MOp.CALL_RT):
        reads.extend(instr.args)
        writes.append(FLOAT_BASE if instr.returns_float else 0)
    elif instr.dst >= 0:
        if op in _FLOAT_WRITERS:
            writes.append(FLOAT_BASE + instr.dst)
        else:
            writes.append(instr.dst)
    return DecodedInstr(
        tuple(reads),
        tuple(writes),
        klass,
        is_branch=op in (MOp.B, MOp.BCC, MOp.RET),
        is_load=klass == "load",
        is_store=op in (MOp.STR, MOp.STRF),
    )


@dataclass
class PipelineStats:
    """Counters reported by the pipeline models (Fig. 10 / 13 metrics)."""

    cycles: float = 0.0
    instructions: int = 0
    branches: int = 0
    taken_branches: int = 0
    mispredictions: int = 0
    loads: int = 0
    stores: int = 0
    frontend_stall_cycles: float = 0.0
    backend_stall_cycles: float = 0.0
    cache: Dict[str, int] = field(default_factory=dict)

    @property
    def ipc(self) -> float:
        return self.instructions / self.cycles if self.cycles else 0.0

    def as_dict(self) -> Dict[str, float]:
        data = {
            "cycles": self.cycles,
            "instructions": float(self.instructions),
            "branches": float(self.branches),
            "taken_branches": float(self.taken_branches),
            "mispredictions": float(self.mispredictions),
            "loads": float(self.loads),
            "stores": float(self.stores),
            "frontend_stall_cycles": self.frontend_stall_cycles,
            "backend_stall_cycles": self.backend_stall_cycles,
            "ipc": self.ipc,
        }
        data.update({k: float(v) for k, v in self.cache.items()})
        return data
