"""CPU configurations for the gem5-lite pipeline models.

The paper prototypes the ISA extension in gem5 on in-order and out-of-order
ARM cores and reports results for an Exynos-big-like core, a Kunpeng-920
("O3-KPG") core, and a high-performance desktop core ("HPD"), plus simple
in-order cores.  These configs capture the corresponding design points;
latency/width values follow public microarchitecture descriptions at the
granularity our models support.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple


@dataclass(frozen=True)
class CPUConfig:
    name: str
    kind: str  # "inorder" | "o3"
    width: int  # dispatch/issue width
    rob_size: int = 0  # O3 only
    mispredict_penalty: int = 12
    taken_branch_bubble: int = 1
    #: functional-unit latencies by class
    alu_latency: int = 1
    mul_latency: int = 3
    div_latency: int = 12
    fp_latency: int = 3
    fp_div_latency: int = 15
    store_latency: int = 1
    #: L1/L2/mem parameters
    l1_latency: int = 4
    l2_latency: int = 14
    memory_latency: int = 90
    #: extra cycles jsldrsmi adds to the load pipe (0 = the paper's parallel
    #: untag datapath of Fig. 12; the ablation bench sets 1 for a serial one)
    smi_load_extra: int = 0

    @property
    def is_o3(self) -> bool:
        return self.kind == "o3"


#: Little in-order core (Cortex-A55 flavour): dual-issue in-order.
INORDER_LITTLE = CPUConfig(
    name="inorder-little",
    kind="inorder",
    width=2,
    mispredict_penalty=8,
    alu_latency=1,
    mul_latency=3,
    div_latency=14,
    fp_latency=4,
    l1_latency=3,
    l2_latency=16,
    memory_latency=110,
)

#: Exynos-big flavour: wide mobile O3 core.
EXYNOS_BIG = CPUConfig(
    name="exynos-big",
    kind="o3",
    width=6,
    rob_size=228,
    mispredict_penalty=14,
    alu_latency=1,
    mul_latency=4,
    div_latency=12,
    fp_latency=4,
    l1_latency=4,
    l2_latency=12,
    memory_latency=100,
)

#: Kunpeng-920 flavour (the paper's ARM64 server CPU): 4-wide O3.
O3_KPG = CPUConfig(
    name="o3-kpg",
    kind="o3",
    width=4,
    rob_size=128,
    mispredict_penalty=12,
    alu_latency=1,
    mul_latency=4,
    div_latency=13,
    fp_latency=4,
    l1_latency=4,
    l2_latency=14,
    memory_latency=95,
)

#: High-performance desktop flavour: very wide O3 core.
HPD = CPUConfig(
    name="hpd",
    kind="o3",
    width=8,
    rob_size=320,
    mispredict_penalty=13,
    alu_latency=1,
    mul_latency=3,
    div_latency=10,
    fp_latency=3,
    l1_latency=4,
    l2_latency=12,
    memory_latency=85,
)

GEM5_CPUS: Tuple[CPUConfig, ...] = (INORDER_LITTLE, EXYNOS_BIG, O3_KPG, HPD)

CPU_BY_NAME: Dict[str, CPUConfig] = {c.name: c for c in GEM5_CPUS}
