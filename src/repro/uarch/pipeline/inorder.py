"""Trace-driven in-order core model (gem5 MinorCPU/HPI proxy).

Dual-issue in-order: an instruction issues only when all older instructions
have issued and its operands are ready; loads block dependents by their
cache latency; mispredicted branches flush the front end.  In-order cores
cannot hide the latency of check condition computations behind other work,
which is why the paper sees slightly *better* average speedups from the SMI
extension there (Fig. 13).
"""

from __future__ import annotations

from typing import Dict, Sequence, Tuple

from ...isa.base import MachineInstr, MOp
from ...machine.executor import BranchPredictor
from ..cache import CacheHierarchy
from .common import DecodedInstr, PipelineStats, decode
from .configs import CPUConfig


def simulate_inorder(
    trace: Sequence[Tuple[MachineInstr, bool, int]], config: CPUConfig
) -> PipelineStats:
    stats = PipelineStats()
    caches = CacheHierarchy(
        l1_latency=config.l1_latency,
        l2_latency=config.l2_latency,
        memory_latency=config.memory_latency,
    )
    predictor = BranchPredictor()
    latency_of = {
        "alu": config.alu_latency,
        "mov": config.alu_latency,
        "mul": config.mul_latency,
        "div": config.div_latency,
        "fp": config.fp_latency,
        "fpdiv": config.fp_div_latency,
        "store": config.store_latency,
        "branch": config.alu_latency,
        "call": 10,
    }
    width = config.width

    reg_ready: Dict[int, float] = {}
    issue_cycle = 0.0
    issued_this_cycle = 0
    fetch_ready = 0.0
    decode_cache: Dict[int, DecodedInstr] = {}

    for instr, taken, mem_addr in trace:
        stats.instructions += 1
        info = decode_cache.get(id(instr))
        if info is None:
            info = decode(instr)
            decode_cache[id(instr)] = info

        start = max(issue_cycle, fetch_ready)
        if fetch_ready > issue_cycle:
            stats.frontend_stall_cycles += fetch_ready - issue_cycle
        ready = start
        for r in info.reads:
            t = reg_ready.get(r, 0.0)
            if t > ready:
                ready = t
        if ready > start:
            stats.backend_stall_cycles += ready - start
        issue = ready

        if info.is_load:
            stats.loads += 1
            latency = (
                caches.load_latency(mem_addr) if mem_addr >= 0 else config.l1_latency
            )
            if instr.op == MOp.JSLDRSMI:
                latency += config.smi_load_extra
        elif info.is_store:
            stats.stores += 1
            if mem_addr >= 0:
                caches.load_latency(mem_addr)
            latency = config.store_latency
        else:
            latency = latency_of[info.klass]
        done = issue + latency
        for w in info.writes:
            reg_ready[w] = done

        if info.is_branch:
            stats.branches += 1
            if taken:
                stats.taken_branches += 1
            if instr.op == MOp.BCC:
                mispredicted = predictor.predict_and_update(instr.uid, taken)
                if mispredicted:
                    stats.mispredictions += 1
                    fetch_ready = max(fetch_ready, done + config.mispredict_penalty)
                elif taken:
                    fetch_ready = max(fetch_ready, issue + config.taken_branch_bubble)
            elif taken:
                fetch_ready = max(fetch_ready, issue + config.taken_branch_bubble)

        issued_this_cycle += 1
        if issued_this_cycle >= width:
            issue_cycle = issue + 1.0
            issued_this_cycle = 0
        else:
            issue_cycle = issue

    stats.cycles = max(
        issue_cycle, max(reg_ready.values()) if reg_ready else 0.0
    )
    stats.cache = caches.stats()
    return stats


def simulate(trace, config: CPUConfig) -> PipelineStats:
    """Dispatch to the in-order or O3 model per the config."""
    if config.is_o3:
        from .o3 import simulate_o3

        return simulate_o3(trace, config)
    return simulate_inorder(trace, config)
