"""Trace-driven out-of-order core model (the gem5 O3CPU proxy).

Timestamp-based dataflow simulation, the classic O3 approximation:

* the frontend dispatches up to ``width`` instructions per cycle, stalling
  on branch mispredictions (full redirect penalty) and taken-branch fetch
  bubbles;
* each instruction issues when its operands are ready and completes after
  its functional-unit latency (loads consult the cache hierarchy);
* the ROB bounds the number of in-flight instructions: dispatch of
  instruction *i* cannot precede the commit of instruction *i - ROB*;
* commit is in order.

This captures the effects the paper leans on — rarely-taken well-predicted
deopt branches are nearly free on a wide O3 core, while dependent condition
computations occupy real issue slots — without modelling every structure of
gem5's O3CPU (no LSQ disambiguation, no rename-port limits).
"""

from __future__ import annotations

from collections import deque
from typing import Dict, Sequence, Tuple

from ...isa.base import MachineInstr, MOp
from ...machine.executor import BranchPredictor
from ..cache import CacheHierarchy
from .common import DecodedInstr, PipelineStats, decode
from .configs import CPUConfig


def simulate_o3(
    trace: Sequence[Tuple[MachineInstr, bool, int]], config: CPUConfig
) -> PipelineStats:
    """Simulate a committed-instruction trace on an O3 core."""
    stats = PipelineStats()
    caches = CacheHierarchy(
        l1_latency=config.l1_latency,
        l2_latency=config.l2_latency,
        memory_latency=config.memory_latency,
    )
    predictor = BranchPredictor()
    latency_of = {
        "alu": config.alu_latency,
        "mov": config.alu_latency,
        "mul": config.mul_latency,
        "div": config.div_latency,
        "fp": config.fp_latency,
        "fpdiv": config.fp_div_latency,
        "store": config.store_latency,
        "branch": config.alu_latency,
        "call": 10,
    }
    width = config.width
    rob = config.rob_size or 128

    reg_ready: Dict[int, float] = {}
    #: completion times of the last `rob` dispatched instructions
    inflight: deque = deque()
    dispatch_cycle = 0.0
    #: earliest cycle the frontend may deliver the next instruction
    fetch_ready = 0.0
    issued_this_cycle = 0
    last_commit = 0.0
    decode_cache: Dict[int, DecodedInstr] = {}

    for instr, taken, mem_addr in trace:
        stats.instructions += 1
        info = decode_cache.get(id(instr))
        if info is None:
            info = decode(instr)
            decode_cache[id(instr)] = info

        # --- frontend: dispatch bandwidth + redirects ---------------------
        proposed = max(dispatch_cycle, fetch_ready)
        if proposed > dispatch_cycle:
            stats.frontend_stall_cycles += proposed - dispatch_cycle
        dispatch = proposed
        # ROB occupancy limit
        if len(inflight) >= rob:
            head_done = inflight.popleft()
            if head_done > dispatch:
                stats.backend_stall_cycles += head_done - dispatch
                dispatch = head_done

        # --- issue: operand readiness --------------------------------------
        ready = dispatch
        for r in info.reads:
            t = reg_ready.get(r, 0.0)
            if t > ready:
                ready = t

        if info.is_load:
            stats.loads += 1
            latency = (
                caches.load_latency(mem_addr) if mem_addr >= 0 else config.l1_latency
            )
            if instr.op == MOp.JSLDRSMI:
                latency += config.smi_load_extra
        elif info.is_store:
            stats.stores += 1
            if mem_addr >= 0:
                caches.load_latency(mem_addr)  # line allocation
            latency = config.store_latency
        else:
            latency = latency_of[info.klass]
        done = ready + latency

        for w in info.writes:
            reg_ready[w] = done

        # --- branches --------------------------------------------------------
        if info.is_branch:
            stats.branches += 1
            if taken:
                stats.taken_branches += 1
            if instr.op == MOp.BCC:
                mispredicted = predictor.predict_and_update(instr.uid, taken)
                if mispredicted:
                    stats.mispredictions += 1
                    # redirect: fetch resumes after resolution + penalty
                    fetch_ready = max(fetch_ready, done + config.mispredict_penalty)
                elif taken:
                    fetch_ready = max(fetch_ready, dispatch + config.taken_branch_bubble)
            elif taken:
                fetch_ready = max(fetch_ready, dispatch + config.taken_branch_bubble)

        # --- in-order commit -------------------------------------------------
        commit = max(done, last_commit)
        last_commit = commit
        inflight.append(commit)

        # --- advance the dispatch pointer ------------------------------------
        issued_this_cycle += 1
        if issued_this_cycle >= width:
            dispatch_cycle = dispatch + 1.0
            issued_this_cycle = 0
        else:
            dispatch_cycle = dispatch

    stats.cycles = max(last_commit, dispatch_cycle)
    stats.cache = caches.stats()
    return stats
