"""A word-addressed simulated heap for JavaScript values.

Generated machine code in this reproduction manipulates *real* memory: every
object access compiles to loads/stores against this heap, every SMI check
inspects a genuine tag bit, and every wrong-map check compares genuine map
addresses.  This is what lets the profiler and the microarchitectural models
observe the same instruction sequences the paper studies.

The heap is a flat array of *words*.  A word normally holds a tagged 32-bit
value (Python int), but raw slots may hold floats (HeapNumber payloads,
double-array elements) or a Python string (string payloads) — a concession
to simulation speed that does not change any instruction sequence, since
those slots are only touched by typed load/store instructions.

Object layouts (offsets in words)::

    HeapNumber:        [map, raw_float]
    String:            [map, raw_length, raw_payload]
    Oddball:           [map, raw_kind]
    FixedArray:        [map, raw_length, tagged...]
    FixedDoubleArray:  [map, raw_length, raw_float...]
    JSObject:          [map, tagged_slot x capacity]
    JSArray:           [map, tagged elements_ptr, tagged smi_length]
    JSFunction:        [map, raw_shared_index]

JSObjects are allocated with a fixed in-object slot capacity
(:data:`DEFAULT_OBJECT_CAPACITY`); V8 would spill extra properties to an
out-of-object backing store, which none of our workloads need.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, Optional, Tuple, Union

from .maps import ElementsKind, InstanceType, Map, MapRegistry
from .tagged import (
    DEFAULT_TAG_CONFIG,
    TagConfig,
    is_heap_pointer,
    is_smi,
    pointer_tag,
    pointer_untag,
    smi_tag,
    smi_untag,
)

Word = Union[int, float, str, None]

# Common layout: offset 0 is always the map word.
MAP_OFFSET = 0

NUMBER_VALUE_OFFSET = 1
NUMBER_SIZE = 2

STRING_LENGTH_OFFSET = 1
STRING_PAYLOAD_OFFSET = 2
STRING_SIZE = 3

ODDBALL_KIND_OFFSET = 1
ODDBALL_SIZE = 2

FIXED_ARRAY_LENGTH_OFFSET = 1
FIXED_ARRAY_ELEMENTS_OFFSET = 2

JS_ARRAY_ELEMENTS_OFFSET = 1
JS_ARRAY_LENGTH_OFFSET = 2
JS_ARRAY_SIZE = 3

JS_FUNCTION_SHARED_OFFSET = 1
JS_FUNCTION_SIZE = 2

DEFAULT_OBJECT_CAPACITY = 12

ODDBALL_UNDEFINED = 0
ODDBALL_NULL = 1
ODDBALL_TRUE = 2
ODDBALL_FALSE = 3
ODDBALL_HOLE = 4


class HeapError(Exception):
    """Raised on malformed heap accesses (a simulator bug, not a JS error)."""


class GCStats:
    """Counters exposed by the mark-sweep collector."""

    __slots__ = ("collections", "words_freed", "live_objects", "last_marked")

    def __init__(self) -> None:
        self.collections = 0
        self.words_freed = 0
        self.live_objects = 0
        self.last_marked = 0


class Heap:
    """Flat simulated heap plus the canonical maps and oddballs."""

    def __init__(
        self,
        config: TagConfig = DEFAULT_TAG_CONFIG,
        object_capacity: int = DEFAULT_OBJECT_CAPACITY,
    ) -> None:
        self.config = config
        self.object_capacity = object_capacity
        # Address 0 is reserved so that no valid pointer is the NULL word.
        self.words: List[Word] = [None]
        self._sizes: Dict[int, int] = {}
        self._free: List[Tuple[int, int]] = []  # (size, addr) blocks
        self._map_cells: set = set()  # addresses of Map cells (immortal)
        self.maps = MapRegistry()
        self.allocations = 0
        self.allocated_words = 0
        self.gc_stats = GCStats()

        self.map_map = self._bootstrap_map(InstanceType.MAP)
        self.oddball_map = self._bootstrap_map(InstanceType.ODDBALL)
        self.number_map = self._bootstrap_map(InstanceType.HEAP_NUMBER)
        self.string_map = self._bootstrap_map(InstanceType.STRING)
        self.fixed_array_map = self._bootstrap_map(InstanceType.FIXED_ARRAY)
        self.fixed_double_array_map = self._bootstrap_map(
            InstanceType.FIXED_DOUBLE_ARRAY
        )
        self.function_map = self._bootstrap_map(InstanceType.JS_FUNCTION)
        # Root of the JSObject transition tree: the shape of `{}`.
        self.empty_object_map = self._bootstrap_map(InstanceType.JS_OBJECT)
        self.array_maps: Dict[ElementsKind, Map] = {
            kind: self._bootstrap_map(InstanceType.JS_ARRAY, kind)
            for kind in ElementsKind
        }
        # Wire the elements-kind transition chain between the root array maps
        # so arrays built from literals share hidden classes.
        smi_map = self.array_maps[ElementsKind.PACKED_SMI]
        dbl_map = self.array_maps[ElementsKind.PACKED_DOUBLE]
        any_map = self.array_maps[ElementsKind.PACKED]
        smi_map.elements_transitions[ElementsKind.PACKED_DOUBLE] = dbl_map
        smi_map.elements_transitions[ElementsKind.PACKED] = any_map
        dbl_map.elements_transitions[ElementsKind.PACKED] = any_map

        self.undefined = self._alloc_oddball(ODDBALL_UNDEFINED)
        self.null = self._alloc_oddball(ODDBALL_NULL)
        self.true_value = self._alloc_oddball(ODDBALL_TRUE)
        self.false_value = self._alloc_oddball(ODDBALL_FALSE)
        self.the_hole = self._alloc_oddball(ODDBALL_HOLE)
        self._interned_strings: Dict[str, int] = {}

    # ------------------------------------------------------------------
    # Raw storage
    # ------------------------------------------------------------------

    def read(self, address: int, offset: int = 0) -> Word:
        try:
            return self.words[address + offset]
        except IndexError as exc:  # pragma: no cover - simulator bug guard
            raise HeapError(f"read out of heap at {address}+{offset}") from exc

    def write(self, address: int, offset: int, value: Word) -> None:
        try:
            self.words[address + offset] = value
        except IndexError as exc:  # pragma: no cover - simulator bug guard
            raise HeapError(f"write out of heap at {address}+{offset}") from exc

    def _allocate(self, size: int) -> int:
        """First-fit from the free list, else bump allocation."""
        self.allocations += 1
        self.allocated_words += size
        for index, (block_size, addr) in enumerate(self._free):
            if block_size >= size:
                if block_size == size:
                    self._free.pop(index)
                else:
                    # Allocate from the front of the block, shrink the rest.
                    self._free[index] = (block_size - size, addr + size)
                self._sizes[addr] = size
                for i in range(size):
                    self.words[addr + i] = None
                return addr
        addr = len(self.words)
        self.words.extend([None] * size)
        self._sizes[addr] = size
        return addr

    def reserve_region(self, size: int) -> int:
        """Reserve a raw region (e.g. the JIT's bump-allocation nursery).

        The region is not tracked by the allocator or the collector: objects
        the JIT carves out of it are immortal (young-generation modelling is
        out of scope); the engine hands out fresh regions when one fills up.
        """
        addr = len(self.words)
        self.words.extend([None] * size)
        return addr

    # ------------------------------------------------------------------
    # Maps
    # ------------------------------------------------------------------

    def _bootstrap_map(
        self, instance_type: InstanceType, kind: ElementsKind = ElementsKind.PACKED
    ) -> Map:
        new_map = self.maps.create(instance_type, kind)
        self._register_map(new_map)
        return new_map

    def _register_map(self, a_map: Map) -> None:
        # Maps are heap objects themselves (a single self-describing word) so
        # that map *addresses* exist for wrong-map comparisons.
        addr = self._allocate(1)
        self.words[addr] = a_map.map_id
        self._map_cells.add(addr)
        self.maps.register_address(a_map, addr)

    def ensure_map_registered(self, a_map: Map) -> Map:
        if a_map.address < 0:
            self._register_map(a_map)
        return a_map

    def map_of(self, address: int) -> Map:
        map_word = self.read(address, MAP_OFFSET)
        if not isinstance(map_word, int) or not is_heap_pointer(map_word):
            raise HeapError(f"object at {address} has corrupt map word {map_word!r}")
        return self.maps.by_address(pointer_untag(map_word))

    def set_map(self, address: int, a_map: Map) -> None:
        self.ensure_map_registered(a_map)
        self.write(address, MAP_OFFSET, pointer_tag(a_map.address))

    # ------------------------------------------------------------------
    # Allocation of JS values
    # ------------------------------------------------------------------

    def _alloc_oddball(self, kind: int) -> int:
        addr = self._allocate(ODDBALL_SIZE)
        self.set_map(addr, self.oddball_map)
        self.write(addr, ODDBALL_KIND_OFFSET, kind)
        return pointer_tag(addr)

    def alloc_number(self, value: float) -> int:
        """Box a double as a HeapNumber; returns the tagged pointer."""
        addr = self._allocate(NUMBER_SIZE)
        self.set_map(addr, self.number_map)
        self.write(addr, NUMBER_VALUE_OFFSET, float(value))
        return pointer_tag(addr)

    def alloc_string(self, value: str, intern: bool = False) -> int:
        if intern:
            cached = self._interned_strings.get(value)
            if cached is not None:
                return cached
        addr = self._allocate(STRING_SIZE)
        self.set_map(addr, self.string_map)
        self.write(addr, STRING_LENGTH_OFFSET, len(value))
        self.write(addr, STRING_PAYLOAD_OFFSET, value)
        word = pointer_tag(addr)
        if intern:
            self._interned_strings[value] = word
        return word

    def alloc_fixed_array(self, length: int, fill_word: Optional[int] = None) -> int:
        fill = self.undefined if fill_word is None else fill_word
        addr = self._allocate(FIXED_ARRAY_ELEMENTS_OFFSET + length)
        self.set_map(addr, self.fixed_array_map)
        self.write(addr, FIXED_ARRAY_LENGTH_OFFSET, length)
        for i in range(length):
            self.write(addr, FIXED_ARRAY_ELEMENTS_OFFSET + i, fill)
        return pointer_tag(addr)

    def alloc_fixed_double_array(self, length: int, fill: float = 0.0) -> int:
        addr = self._allocate(FIXED_ARRAY_ELEMENTS_OFFSET + length)
        self.set_map(addr, self.fixed_double_array_map)
        self.write(addr, FIXED_ARRAY_LENGTH_OFFSET, length)
        for i in range(length):
            self.write(addr, FIXED_ARRAY_ELEMENTS_OFFSET + i, fill)
        return pointer_tag(addr)

    def alloc_array(self, kind: ElementsKind, length: int) -> int:
        """Allocate a JSArray with a packed backing store of ``kind``."""
        if kind == ElementsKind.PACKED_DOUBLE:
            elements = self.alloc_fixed_double_array(length)
        else:
            fill = smi_tag(0, self.config) if kind == ElementsKind.PACKED_SMI else None
            elements = self.alloc_fixed_array(length, fill)
        addr = self._allocate(JS_ARRAY_SIZE)
        self.set_map(addr, self.array_maps[kind])
        self.write(addr, JS_ARRAY_ELEMENTS_OFFSET, elements)
        self.write(addr, JS_ARRAY_LENGTH_OFFSET, smi_tag(length, self.config))
        return pointer_tag(addr)

    def alloc_object(
        self, a_map: Optional[Map] = None, capacity: Optional[int] = None
    ) -> int:
        obj_map = a_map if a_map is not None else self.empty_object_map
        self.ensure_map_registered(obj_map)
        slots = capacity if capacity is not None else self.object_capacity
        addr = self._allocate(1 + slots)
        self.set_map(addr, obj_map)
        for i in range(slots):
            self.write(addr, 1 + i, self.undefined)
        return pointer_tag(addr)

    def alloc_function(self, shared_index: int) -> int:
        addr = self._allocate(JS_FUNCTION_SIZE)
        self.set_map(addr, self.function_map)
        self.write(addr, JS_FUNCTION_SHARED_OFFSET, shared_index)
        return pointer_tag(addr)

    # ------------------------------------------------------------------
    # High-level object protocol (used by the interpreter and the runtime)
    # ------------------------------------------------------------------

    def object_get_property(self, word: int, name: str) -> Optional[int]:
        addr = pointer_untag(word)
        obj_map = self.map_of(addr)
        offset = obj_map.lookup(name)
        if offset is None:
            return None
        value = self.read(addr, offset)
        assert isinstance(value, int)
        return value

    def object_set_property(self, word: int, name: str, value_word: int) -> None:
        """Store a property, transitioning the hidden class when it is new."""
        addr = pointer_untag(word)
        obj_map = self.map_of(addr)
        offset = obj_map.lookup(name)
        if offset is None:
            offset = obj_map.next_slot()
            capacity = self._sizes[addr] - 1
            if offset > capacity:
                raise HeapError(
                    f"object exceeded in-object capacity of {capacity}"
                    f" adding property {name!r}"
                )
            new_map = self.maps.transition_add_property(obj_map, name)
            self.ensure_map_registered(new_map)
            self.set_map(addr, new_map)
            obj_map.destabilize()
        self.write(addr, offset, value_word)

    def array_length(self, word: int) -> int:
        addr = pointer_untag(word)
        length_word = self.read(addr, JS_ARRAY_LENGTH_OFFSET)
        assert isinstance(length_word, int)
        return smi_untag(length_word)

    def array_elements(self, word: int) -> int:
        addr = pointer_untag(word)
        elements_word = self.read(addr, JS_ARRAY_ELEMENTS_OFFSET)
        assert isinstance(elements_word, int)
        return pointer_untag(elements_word)

    def array_get(self, word: int, index: int) -> int:
        """Read arr[index] as a tagged word (boxing doubles on the fly)."""
        addr = pointer_untag(word)
        kind = self.map_of(addr).elements_kind
        elements = self.array_elements(word)
        length = self.array_length(word)
        if index < 0 or index >= length:
            return self.undefined
        value = self.read(elements, FIXED_ARRAY_ELEMENTS_OFFSET + index)
        if kind == ElementsKind.PACKED_DOUBLE:
            assert isinstance(value, float)
            return self.number_from_float(value)
        assert isinstance(value, int)
        return value

    def array_set(self, word: int, index: int, value_word: int) -> None:
        """Store arr[index], generalizing the elements kind as needed."""
        addr = pointer_untag(word)
        length = self.array_length(word)
        if index < 0 or index >= length:
            raise HeapError(
                "simulated arrays are fixed-length; out-of-bounds store"
                f" at index {index} (length {length})"
            )
        arr_map = self.map_of(addr)
        kind = arr_map.elements_kind
        value_kind = self._kind_of_value(value_word)
        new_kind = generalized = max(kind, value_kind)
        if generalized != kind:
            self._transition_array_kind(addr, arr_map, new_kind)
            kind = new_kind
        elements = self.array_elements(word)
        if kind == ElementsKind.PACKED_DOUBLE:
            self.write(
                elements,
                FIXED_ARRAY_ELEMENTS_OFFSET + index,
                self.number_to_float(value_word),
            )
        else:
            self.write(elements, FIXED_ARRAY_ELEMENTS_OFFSET + index, value_word)

    def array_push(self, word: int, value_word: int) -> int:
        """Append to a JSArray, growing the backing store; returns new length.

        Mirrors V8's ``Array.prototype.push`` builtin: the JSArray keeps its
        address while the elements pointer is swapped on growth, so compiled
        code holding the array pointer stays valid.
        """
        addr = pointer_untag(word)
        length = self.array_length(word)
        elements = self.array_elements(word)
        capacity_word = self.read(elements, FIXED_ARRAY_LENGTH_OFFSET)
        assert isinstance(capacity_word, int)
        capacity = capacity_word
        arr_map = self.map_of(addr)
        kind = arr_map.elements_kind
        value_kind = self._kind_of_value(value_word)
        if value_kind > kind:
            self._transition_array_kind(addr, arr_map, max(kind, value_kind))
            kind = self.map_of(addr).elements_kind
            elements = self.array_elements(word)
        if length >= capacity:
            new_capacity = max(4, capacity * 2)
            if kind == ElementsKind.PACKED_DOUBLE:
                new_elements = self.alloc_fixed_double_array(new_capacity)
            else:
                new_elements = self.alloc_fixed_array(new_capacity)
            dst = pointer_untag(new_elements)
            for i in range(length):
                self.write(
                    dst,
                    FIXED_ARRAY_ELEMENTS_OFFSET + i,
                    self.read(elements, FIXED_ARRAY_ELEMENTS_OFFSET + i),
                )
            self.write(addr, JS_ARRAY_ELEMENTS_OFFSET, new_elements)
            elements = dst
        if kind == ElementsKind.PACKED_DOUBLE:
            self.write(
                elements,
                FIXED_ARRAY_ELEMENTS_OFFSET + length,
                self.number_to_float(value_word),
            )
        else:
            self.write(elements, FIXED_ARRAY_ELEMENTS_OFFSET + length, value_word)
        self.write(addr, JS_ARRAY_LENGTH_OFFSET, smi_tag(length + 1, self.config))
        return length + 1

    def _kind_of_value(self, word: int) -> ElementsKind:
        if is_smi(word):
            return ElementsKind.PACKED_SMI
        addr = pointer_untag(word)
        if self.map_of(addr).instance_type == InstanceType.HEAP_NUMBER:
            return ElementsKind.PACKED_DOUBLE
        return ElementsKind.PACKED

    def _transition_array_kind(
        self, addr: int, arr_map: Map, new_kind: ElementsKind
    ) -> None:
        new_map = self.maps.transition_elements_kind(arr_map, new_kind)
        self.ensure_map_registered(new_map)
        old_kind = arr_map.elements_kind
        elements_word = self.read(addr, JS_ARRAY_ELEMENTS_OFFSET)
        assert isinstance(elements_word, int)
        elements = pointer_untag(elements_word)
        capacity_word = self.read(elements, FIXED_ARRAY_LENGTH_OFFSET)
        assert isinstance(capacity_word, int)
        capacity = capacity_word
        # Convert only the array's live elements: after a push grew the
        # backing store, the slack slots past length hold the allocator's
        # filler (undefined / 0.0), which is not a value of the old kind.
        length_word = self.read(addr, JS_ARRAY_LENGTH_OFFSET)
        assert isinstance(length_word, int)
        length = min(smi_untag(length_word), capacity)
        if old_kind == ElementsKind.PACKED_SMI and new_kind == ElementsKind.PACKED_DOUBLE:
            new_elements = self.alloc_fixed_double_array(capacity)
            dst = pointer_untag(new_elements)
            for i in range(length):
                value = self.read(elements, FIXED_ARRAY_ELEMENTS_OFFSET + i)
                assert isinstance(value, int)
                self.write(dst, FIXED_ARRAY_ELEMENTS_OFFSET + i, float(smi_untag(value)))
            self.write(addr, JS_ARRAY_ELEMENTS_OFFSET, new_elements)
        elif old_kind == ElementsKind.PACKED_DOUBLE and new_kind == ElementsKind.PACKED:
            new_elements = self.alloc_fixed_array(capacity)
            dst = pointer_untag(new_elements)
            for i in range(length):
                value = self.read(elements, FIXED_ARRAY_ELEMENTS_OFFSET + i)
                assert isinstance(value, float)
                self.write(dst, FIXED_ARRAY_ELEMENTS_OFFSET + i, self.number_from_float(value))
            self.write(addr, JS_ARRAY_ELEMENTS_OFFSET, new_elements)
        elif old_kind == ElementsKind.PACKED_SMI and new_kind == ElementsKind.PACKED:
            pass  # SMI words are valid tagged words already
        self.set_map(addr, new_map)
        arr_map.destabilize()

    # ------------------------------------------------------------------
    # Boxing / unboxing at the Python boundary
    # ------------------------------------------------------------------

    def number_from_float(self, value: float) -> int:
        """Tagged word for a numeric value: SMI when possible, else boxed."""
        if (
            isinstance(value, int)
            or (not math.isinf(value) and not math.isnan(value) and value == int(value))
        ):
            as_int = int(value)
            if self.config.fits_smi(as_int) and (
                as_int != 0 or not _is_negative_zero(value)
            ):
                return smi_tag(as_int, self.config)
        return self.alloc_number(float(value))

    def number_to_float(self, word: int) -> float:
        if is_smi(word):
            return float(smi_untag(word))
        addr = pointer_untag(word)
        value = self.read(addr, NUMBER_VALUE_OFFSET)
        assert isinstance(value, float)
        return value

    def string_value(self, word: int) -> str:
        addr = pointer_untag(word)
        value = self.read(addr, STRING_PAYLOAD_OFFSET)
        assert isinstance(value, str)
        return value

    def to_word(self, value: object) -> int:
        """Box an arbitrary Python value into a tagged word."""
        if value is None:
            return self.undefined
        if isinstance(value, bool):
            return self.true_value if value else self.false_value
        if isinstance(value, int):
            if self.config.fits_smi(value):
                return smi_tag(value, self.config)
            return self.alloc_number(float(value))
        if isinstance(value, float):
            return self.number_from_float(value)
        if isinstance(value, str):
            return self.alloc_string(value)
        if isinstance(value, list):
            kind = _list_kind(value)
            word = self.alloc_array(kind, len(value))
            for i, item in enumerate(value):
                self.array_set(word, i, self.to_word(item))
            return word
        if isinstance(value, dict):
            word = self.alloc_object()
            for key, item in value.items():
                self.object_set_property(word, str(key), self.to_word(item))
            return word
        raise TypeError(f"cannot box {type(value).__name__} into the JS heap")

    def to_python(self, word: int) -> object:
        """Unbox a tagged word into a Python value (deep for arrays)."""
        if is_smi(word):
            return smi_untag(word)
        addr = pointer_untag(word)
        obj_map = self.map_of(addr)
        itype = obj_map.instance_type
        if itype == InstanceType.HEAP_NUMBER:
            return self.number_to_float(word)
        if itype == InstanceType.STRING:
            return self.string_value(word)
        if itype == InstanceType.ODDBALL:
            kind = self.read(addr, ODDBALL_KIND_OFFSET)
            return {
                ODDBALL_UNDEFINED: None,
                ODDBALL_NULL: None,
                ODDBALL_TRUE: True,
                ODDBALL_FALSE: False,
                ODDBALL_HOLE: None,
            }[kind]  # type: ignore[index]
        if itype == InstanceType.JS_ARRAY:
            return [
                self.to_python(self.array_get(word, i))
                for i in range(self.array_length(word))
            ]
        if itype == InstanceType.JS_OBJECT:
            return {
                name: self.to_python(self.read(addr, offset))  # type: ignore[arg-type]
                for name, offset in obj_map.property_offsets.items()
            }
        return f"<{itype.name}@{addr}>"

    def instance_type_of(self, word: int) -> Optional[InstanceType]:
        if is_smi(word):
            return None
        return self.map_of(pointer_untag(word)).instance_type

    # ------------------------------------------------------------------
    # Garbage collection (mark-sweep, non-moving)
    # ------------------------------------------------------------------

    def collect(self, roots: Iterable[int]) -> int:
        """Mark-sweep from the given tagged root words; returns freed words.

        Non-moving, so it is safe to run whenever no raw (untagged) heap
        address is live outside the heap — the engine runs it between
        benchmark iterations, mirroring how real GC pauses land between
        units of work in steady state.
        """
        marked: set = set(self._map_cells)
        worklist: List[int] = []
        all_roots = list(roots)
        all_roots.extend(self._interned_strings.values())
        all_roots.extend(
            (self.undefined, self.null, self.true_value, self.false_value, self.the_hole)
        )
        roots = all_roots
        for word in roots:
            if isinstance(word, int) and is_heap_pointer(word):
                worklist.append(pointer_untag(word))
        while worklist:
            addr = worklist.pop()
            if addr in marked or addr not in self._sizes:
                continue
            marked.add(addr)
            for child in self._tagged_slots(addr):
                if is_heap_pointer(child):
                    worklist.append(pointer_untag(child))
        freed = 0
        for addr in list(self._sizes):
            if addr in marked:
                continue
            size = self._sizes.pop(addr)
            for i in range(size):
                self.words[addr + i] = None
            self._free.append((size, addr))
            freed += size
        self.gc_stats.collections += 1
        self.gc_stats.words_freed += freed
        self.gc_stats.live_objects = len(marked)
        self.gc_stats.last_marked = len(marked)
        return freed

    def _tagged_slots(self, addr: int) -> List[int]:
        """Tagged child words of the object at ``addr`` (including its map)."""
        if addr in self._map_cells:
            return []  # a Map's own cell holds a raw map_id, not a tagged word
        map_word = self.words[addr]
        if not isinstance(map_word, int) or not is_heap_pointer(map_word):
            return []
        obj_map = self.maps.by_address(pointer_untag(map_word))
        slots = [map_word]
        itype = obj_map.instance_type
        if itype == InstanceType.FIXED_ARRAY:
            length = self.words[addr + FIXED_ARRAY_LENGTH_OFFSET]
            assert isinstance(length, int)
            for i in range(length):
                child = self.words[addr + FIXED_ARRAY_ELEMENTS_OFFSET + i]
                if isinstance(child, int):
                    slots.append(child)
        elif itype == InstanceType.JS_ARRAY:
            child = self.words[addr + JS_ARRAY_ELEMENTS_OFFSET]
            if isinstance(child, int):
                slots.append(child)
        elif itype == InstanceType.JS_OBJECT:
            capacity = self._sizes.get(addr, 1) - 1
            for i in range(capacity):
                child = self.words[addr + 1 + i]
                if isinstance(child, int):
                    slots.append(child)
        return slots

    @property
    def live_words(self) -> int:
        return sum(self._sizes.values())


def _is_negative_zero(value: float) -> bool:
    return value == 0.0 and math.copysign(1.0, value) < 0


def _list_kind(values: list) -> ElementsKind:
    kind = ElementsKind.PACKED_SMI
    for item in values:
        if isinstance(item, bool) or isinstance(item, (str, list, dict)) or item is None:
            return ElementsKind.PACKED
        if isinstance(item, float) and item != int(item):
            kind = max(kind, ElementsKind.PACKED_DOUBLE)
        elif isinstance(item, float):
            kind = max(kind, ElementsKind.PACKED_DOUBLE)
        elif isinstance(item, int) and not DEFAULT_TAG_CONFIG.fits_smi(item):
            kind = max(kind, ElementsKind.PACKED_DOUBLE)
    return kind
