"""Hidden classes ("maps") and their transition trees.

V8 assigns every object *shape* a map: an internal descriptor that records,
for each property name, the slot offset where the property value is stored.
Objects hold a tagged pointer to their map at offset 0.  The optimizing
compiler speculates that an object seen at a call site keeps its shape, and
guards that speculation with a *wrong-map* deoptimization check: load the
object's map word and compare it against the expected map's address.

Maps form a transition tree: adding property ``x`` to an object with map
``M`` moves the object to the (unique) child map ``M --x--> M'``.  Arrays
additionally carry an *elements kind* (packed SMI / packed double / packed
tagged) that can only generalize, mirroring V8's lattice.
"""

from __future__ import annotations

from enum import IntEnum
from typing import Callable, Dict, List, Optional


class InstanceType(IntEnum):
    """Coarse runtime type of a heap object, stored in its map."""

    ODDBALL = 1
    HEAP_NUMBER = 2
    STRING = 3
    FIXED_ARRAY = 4
    FIXED_DOUBLE_ARRAY = 5
    JS_OBJECT = 6
    JS_ARRAY = 7
    JS_FUNCTION = 8
    MAP = 9


class ElementsKind(IntEnum):
    """Element representation of a JSArray's backing store.

    The ordering encodes V8's one-way generalization lattice:
    PACKED_SMI -> PACKED_DOUBLE -> PACKED (tagged).
    """

    PACKED_SMI = 0
    PACKED_DOUBLE = 1
    PACKED = 2

    def generalizes_to(self, other: "ElementsKind") -> bool:
        return other >= self


def generalized_kind(kind: ElementsKind, value_kind: ElementsKind) -> ElementsKind:
    """Kind required to store a value of ``value_kind`` into a ``kind`` array."""
    return max(kind, value_kind)


class Map:
    """A hidden class.

    Attributes
    ----------
    address:
        Heap address assigned by the :class:`MapRegistry`; this is the value
        compared by wrong-map checks in generated code.
    property_offsets:
        name -> in-object slot offset (slot 0 is the map word itself, so
        property offsets start at 1).
    """

    __slots__ = (
        "map_id",
        "address",
        "instance_type",
        "elements_kind",
        "property_offsets",
        "transitions",
        "elements_transitions",
        "is_stable",
        "_dependents",
        "parent",
    )

    def __init__(
        self,
        map_id: int,
        instance_type: InstanceType,
        elements_kind: ElementsKind = ElementsKind.PACKED,
        parent: Optional["Map"] = None,
    ) -> None:
        self.map_id = map_id
        self.address = -1  # assigned on registration
        self.instance_type = instance_type
        self.elements_kind = elements_kind
        self.property_offsets: Dict[str, int] = {}
        self.transitions: Dict[str, "Map"] = {}
        self.elements_transitions: Dict[ElementsKind, "Map"] = {}
        self.is_stable = True
        self._dependents: List[Callable[["Map"], None]] = []
        self.parent = parent

    # ------------------------------------------------------------------
    # Property layout
    # ------------------------------------------------------------------

    def lookup(self, name: str) -> Optional[int]:
        """In-object slot offset of ``name``, or None if absent."""
        return self.property_offsets.get(name)

    @property
    def property_count(self) -> int:
        return len(self.property_offsets)

    def next_slot(self) -> int:
        """Slot offset that the next added property would occupy."""
        return 1 + self.property_count

    # ------------------------------------------------------------------
    # Stability dependencies (the lazy-deopt hook)
    # ------------------------------------------------------------------

    def add_dependent(self, callback: Callable[["Map"], None]) -> None:
        """Register compiled code that assumed this map is stable.

        The callback fires when the map is destabilized (an object
        transitioned away from it), which is the engine's lazy-deopt signal.
        """
        self._dependents.append(callback)

    def destabilize(self) -> None:
        if not self.is_stable:
            return
        self.is_stable = False
        dependents, self._dependents = self._dependents, []
        for callback in dependents:
            callback(self)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        props = ",".join(self.property_offsets)
        return (
            f"<Map #{self.map_id} {self.instance_type.name}"
            f" kind={self.elements_kind.name} props=[{props}]>"
        )


class MapRegistry:
    """Owns all maps, assigns their heap addresses, resolves transitions."""

    def __init__(self) -> None:
        self._maps: List[Map] = []
        self._by_address: Dict[int, Map] = {}

    def create(
        self,
        instance_type: InstanceType,
        elements_kind: ElementsKind = ElementsKind.PACKED,
        parent: Optional[Map] = None,
    ) -> Map:
        new_map = Map(len(self._maps), instance_type, elements_kind, parent)
        self._maps.append(new_map)
        return new_map

    def register_address(self, a_map: Map, address: int) -> None:
        a_map.address = address
        self._by_address[address] = a_map

    def by_address(self, address: int) -> Map:
        return self._by_address[address]

    def transition_add_property(self, source: Map, name: str) -> Map:
        """Map reached by adding property ``name`` to an object of ``source``.

        Reuses an existing transition when present so that objects built the
        same way share the same hidden class — the property that makes
        map checks effective in the first place.
        """
        existing = source.transitions.get(name)
        if existing is not None:
            return existing
        child = self.create(source.instance_type, source.elements_kind, parent=source)
        child.property_offsets = dict(source.property_offsets)
        child.property_offsets[name] = source.next_slot()
        source.transitions[name] = child
        return child

    def transition_elements_kind(self, source: Map, kind: ElementsKind) -> Map:
        """Map reached by generalizing ``source``'s elements kind to ``kind``."""
        if not source.elements_kind.generalizes_to(kind):
            raise ValueError(
                f"illegal elements transition {source.elements_kind.name} ->"
                f" {kind.name}"
            )
        if kind == source.elements_kind:
            return source
        existing = source.elements_transitions.get(kind)
        if existing is not None:
            return existing
        child = self.create(source.instance_type, kind, parent=source)
        child.property_offsets = dict(source.property_offsets)
        source.elements_transitions[kind] = child
        return child

    def __len__(self) -> int:
        return len(self._maps)

    def all_maps(self) -> List[Map]:
        return list(self._maps)
