"""Tagged-word value representation, mirroring V8's pointer compression.

V8 stores JavaScript values as 32-bit *tagged* words.  The least-significant
bit is the tag: if it is **cleared** the remaining bits are a signed 31-bit
Small Integer (SMI); if it is **set** the remaining bits are a compressed
heap pointer.  SMIs therefore live directly in the word, while every other
value (doubles, strings, objects, ...) lives behind a pointer.

The paper (Section II-B.2) notes that V8 can also be built with "32-bit"
SMIs; those still use the LSB tag and the same untagging shift, so the check
and shift sequences under study are identical.  We expose the width through
:class:`TagConfig` so the ablation benches can verify that claim.

Word encodings used throughout the simulator:

* SMI:      ``word = value << 1``            (LSB = 0)
* pointer:  ``word = (address << 1) | 1``    (LSB = 1)

Addresses are indices into :class:`repro.values.heap.Heap`'s word array.
"""

from __future__ import annotations

from dataclasses import dataclass

SMI_TAG_SIZE = 1
SMI_TAG_MASK = 1
POINTER_TAG = 1


@dataclass(frozen=True)
class TagConfig:
    """Width configuration for SMIs.

    ``smi_bits`` counts the *payload* bits (31 in Chromium/D8 builds with
    pointer compression, 32 in Node.js builds without it).
    """

    smi_bits: int = 31

    def __post_init__(self) -> None:
        if self.smi_bits not in (31, 32):
            raise ValueError(f"smi_bits must be 31 or 32, got {self.smi_bits}")

    @property
    def smi_min(self) -> int:
        return -(1 << (self.smi_bits - 1))

    @property
    def smi_max(self) -> int:
        return (1 << (self.smi_bits - 1)) - 1

    def fits_smi(self, value: int) -> bool:
        return self.smi_min <= value <= self.smi_max


DEFAULT_TAG_CONFIG = TagConfig(smi_bits=31)

#: Range constants for the default 31-bit configuration.
SMI_MIN = DEFAULT_TAG_CONFIG.smi_min
SMI_MAX = DEFAULT_TAG_CONFIG.smi_max


def is_smi(word: int) -> bool:
    """True when the tagged word encodes a Small Integer (LSB cleared)."""
    return (word & SMI_TAG_MASK) == 0


def is_heap_pointer(word: int) -> bool:
    """True when the tagged word encodes a heap pointer (LSB set)."""
    return (word & SMI_TAG_MASK) == POINTER_TAG


def smi_tag(value: int, config: TagConfig = DEFAULT_TAG_CONFIG) -> int:
    """Encode a machine integer as an SMI word.

    Raises :class:`OverflowError` when the value does not fit; callers that
    model speculative code must check :meth:`TagConfig.fits_smi` first (that
    check is exactly V8's overflow deopt condition).
    """
    if not config.fits_smi(value):
        raise OverflowError(f"{value} does not fit in a {config.smi_bits}-bit SMI")
    return value << SMI_TAG_SIZE


def smi_untag(word: int) -> int:
    """Decode an SMI word into a machine integer (the untagging right-shift)."""
    if not is_smi(word):
        raise ValueError(f"word {word:#x} is not an SMI")
    return word >> SMI_TAG_SIZE


def pointer_tag(address: int) -> int:
    """Encode a heap address as a tagged pointer word."""
    if address < 0:
        raise ValueError(f"heap address must be non-negative, got {address}")
    return (address << SMI_TAG_SIZE) | POINTER_TAG


def pointer_untag(word: int) -> int:
    """Decode a tagged pointer word into a heap address."""
    if not is_heap_pointer(word):
        raise ValueError(f"word {word:#x} is not a heap pointer")
    return word >> SMI_TAG_SIZE
