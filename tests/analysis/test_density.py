"""Static check-density analyzer, cross-validated against the profiler."""

from __future__ import annotations

import pytest

from repro.analysis import analyze_density
from repro.engine import EngineConfig
from repro.profiling.attribution import static_check_density
from repro.suite import compile_benchmark, compiled_code_objects, get_benchmark
from repro.suite.runner import determine_removable_kinds


def _codes(name, **config_kw):
    spec = get_benchmark(name)
    config = EngineConfig(verify=True, **config_kw)
    engine = compile_benchmark(spec, config, iterations=12)
    codes = compiled_code_objects(engine)
    assert codes, f"{name} did not tier up"
    return codes


def test_density_matches_profiler_exactly():
    for code in _codes("FIB"):
        report = analyze_density(code)
        assert report.diagnostics == []
        assert report.density == pytest.approx(static_check_density(code))
        assert report.check_count == len(code.deopt_points)
        assert sum(report.by_kind.values()) == report.check_count


def test_density_counts_soft_deopts_once():
    """Soft deopts emit an inline DEOPT *and* a stub for the same check id;
    the analyzer must count deopt points, not DEOPT instructions."""
    for code in _codes("FIB"):
        stub_ids = {
            int(i.imm) for i in code.instrs if i.op.name == "DEOPT"
        }
        assert stub_ids <= set(code.deopt_points)
        report = analyze_density(code)
        assert report.check_count == len(code.deopt_points)


def test_density_drops_when_checks_removed():
    """Section III-B: short-circuiting removable kinds must strictly lower
    the static density, and the result still passes verify + lint."""
    spec = get_benchmark("FIB")
    removable, _leftovers = determine_removable_kinds(spec)
    baseline = _codes("FIB")
    reduced = _codes("FIB", removed_checks=removable)
    base_density = max(analyze_density(c).density for c in baseline)
    reduced_density = max(analyze_density(c).density for c in reduced)
    assert reduced_density < base_density


def test_density_suppressed_branches_keep_check_count():
    """With branches suppressed the conditions and stubs remain, so the
    density (checks per 100 body instructions) is still computed from the
    same deopt points."""
    for code in _codes("FIB", emit_check_branches=False):
        report = analyze_density(code)
        assert report.diagnostics == []
        assert report.check_count == len(code.deopt_points)
        assert report.deopt_branches == 0


def test_window_outliers_are_split_consistently():
    """The comparable aggregate excludes exactly the branches whose
    condition run differs from the ISA's check window, and the outlier
    count matches mclint's window-shape INFO diagnostics."""
    from repro.analysis import lint_code

    for target in ("arm64", "x64"):
        for code in _codes("FIB", target=target):
            report = analyze_density(code)
            assert 0 <= report.window_outliers <= report.deopt_branches
            assert sum(report.outlier_kinds.values()) == report.window_outliers
            conforming = report.check_count - report.window_outliers
            body = report.body_instructions
            assert report.comparable_density == pytest.approx(
                100.0 * conforming / body if body else 0.0
            )
            assert report.comparable_density <= report.density + 1e-9
            shape_infos = [
                d for d in lint_code(code) if d.invariant == "window-shape"
            ]
            assert len(shape_infos) == report.window_outliers
            rendered = "\n".join(report.rows())
            assert "comparable (window-conforming)" in rendered
