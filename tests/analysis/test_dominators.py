"""DominatorTree on the CFG shapes the iterative algorithm must not choke
on: self-loops, irreducible regions (loops with two entries), and stale
unreachable predecessors."""

from __future__ import annotations

from repro.analysis.dominators import DominatorTree, reachable_blocks
from repro.ir.graph import Graph


def test_self_loop():
    graph = Graph("selfloop")
    entry = graph.entry
    a, b = graph.new_block(), graph.new_block()
    graph.connect(entry, a)
    graph.connect(a, a)
    graph.connect(a, b)
    tree = DominatorTree(graph)
    assert tree.idom[entry.id] is None
    assert tree.idom[a.id] is entry
    assert tree.idom[b.id] is a
    assert tree.dominates(a, a)  # reflexive through the back edge
    assert tree.dominates(entry, b)
    assert not tree.dominates(b, a)


def test_entry_self_loop():
    graph = Graph("entryloop")
    entry = graph.entry
    graph.connect(entry, entry)
    tree = DominatorTree(graph)
    assert tree.idom[entry.id] is None
    assert tree.dominates(entry, entry)


def test_irreducible_two_entry_loop():
    """entry branches to both a and b, which form a cycle: the loop has
    two entry edges, so neither a nor b dominates the other and both are
    immediately dominated by entry."""
    graph = Graph("irreducible")
    entry = graph.entry
    a, b, exit_block = graph.new_block(), graph.new_block(), graph.new_block()
    graph.connect(entry, a)
    graph.connect(entry, b)
    graph.connect(a, b)
    graph.connect(b, a)
    graph.connect(a, exit_block)
    tree = DominatorTree(graph)
    assert tree.idom[a.id] is entry
    assert tree.idom[b.id] is entry
    assert not tree.dominates(a, b)
    assert not tree.dominates(b, a)
    assert tree.idom[exit_block.id] is a
    assert tree.dominates(entry, exit_block)


def test_irreducible_region_reached_from_two_paths():
    """Loop a<->b entered at a from one branch arm and at b from the
    other: the common dominator of both loop blocks is the branch block,
    not either arm."""
    graph = Graph("twoentry")
    entry = graph.entry
    left, right = graph.new_block(), graph.new_block()
    a, b = graph.new_block(), graph.new_block()
    graph.connect(entry, left)
    graph.connect(entry, right)
    graph.connect(left, a)
    graph.connect(right, b)
    graph.connect(a, b)
    graph.connect(b, a)
    tree = DominatorTree(graph)
    assert tree.idom[a.id] is entry
    assert tree.idom[b.id] is entry
    assert not tree.dominates(left, a)
    assert not tree.dominates(right, b)


def test_unreachable_blocks_are_excluded():
    graph = Graph("unreachable")
    entry = graph.entry
    a = graph.new_block()
    orphan = graph.new_block()
    graph.connect(entry, a)
    graph.connect(orphan, a)  # stale predecessor edge into a live block
    tree = DominatorTree(graph)
    order = reachable_blocks(graph)
    assert orphan not in order
    assert not tree.is_reachable(orphan)
    assert tree.idom[a.id] is entry
    assert not tree.dominates(orphan, a)
    assert not tree.dominates(a, orphan)


def test_rpo_starts_at_entry_and_visits_each_once():
    graph = Graph("rpo")
    entry = graph.entry
    blocks = [graph.new_block() for _ in range(4)]
    graph.connect(entry, blocks[0])
    graph.connect(blocks[0], blocks[1])
    graph.connect(blocks[0], blocks[2])
    graph.connect(blocks[1], blocks[3])
    graph.connect(blocks[2], blocks[3])
    graph.connect(blocks[3], blocks[0])  # reducible back edge
    order = reachable_blocks(graph)
    assert order[0] is entry
    assert len(order) == len({block.id for block in order}) == 5
    tree = DominatorTree(graph)
    assert tree.idom[blocks[3].id] is blocks[0]
    assert tree.dominates(blocks[0], blocks[3])
    assert not tree.dominates(blocks[1], blocks[3])
