"""Machine-code linter behaviour on real compiled code, both ISAs."""

from __future__ import annotations

from types import SimpleNamespace

import pytest

from repro.analysis import lint_code
from repro.analysis.diagnostics import Severity
from repro.engine import Engine, EngineConfig
from repro.isa.base import ARM64, X64, CC, MachineInstr, MOp
from repro.isa.semantics import effect_of, leaders_of, successors_of
from repro.jit.checks import CheckKind
from repro.jit.codegen import CodeObject
from repro.jit.deopt import DeoptPoint, CheckSite


def _lint_errors(code):
    return [d for d in lint_code(code) if d.severity == Severity.ERROR]


def _compile(source, call, args=(), target="arm64", warmup=30, **config_kw):
    engine = Engine(EngineConfig(target=target, verify=True, **config_kw))
    engine.load(source)
    for _ in range(warmup):
        engine.call_global(call, *args)
    return [f.code for f in engine.functions if f.code is not None]


HOT_LOOP = """
function kernel(n) {
    var arr = [1, 2, 3, 4, 5];
    var total = 0.5;
    for (var i = 0; i < n; i = i + 1) {
        total = total + arr[i % 5] * 1.5;
    }
    return total;
}
"""


@pytest.mark.parametrize("target", ["x64", "arm64", "arm64+smi"])
def test_compiled_kernel_lints_clean(target):
    codes = _compile(HOT_LOOP, "kernel", (50,), target=target)
    assert codes
    for code in codes:
        assert _lint_errors(code) == []


def test_branch_suppression_mode_lints_clean():
    """emit_check_branches=False keeps conditions and stubs but drops the
    branches (paper Section IV-B); the wiring lint must accept that shape."""
    codes = _compile(
        HOT_LOOP, "kernel", (50,), target="arm64", emit_check_branches=False
    )
    assert codes
    for code in codes:
        assert not any(i.is_deopt_branch for i in code.instrs)
        assert _lint_errors(code) == []


def test_window_shape_reported_as_info_only():
    """A 2-instruction condition on x64 (window 1) is the paper's
    undercount bias: reported, never an error."""
    shared = SimpleNamespace(info=SimpleNamespace(name="hand"))
    code = CodeObject(shared, X64)
    point = DeoptPoint(check_id=0, kind=CheckKind.OVERFLOW, bytecode_pc=0, values=())
    code.deopt_points = {0: point}
    code.check_sites = {0: CheckSite(0, CheckKind.OVERFLOW, 0, branch_pc=3, stub_pc=5)}
    code.instrs = [
        MachineInstr(MOp.MOVI, dst=8, imm=1),
        MachineInstr(MOp.CMPI, s1=8, imm=0, check_id=0),
        MachineInstr(MOp.CMPI, s1=8, imm=1, check_id=0),
        MachineInstr(
            MOp.BCC, target=5, cc=CC.EQ, check_id=0, is_deopt_branch=True
        ),
        MachineInstr(MOp.RET, s1=0),
        MachineInstr(MOp.DEOPT, imm=0, check_id=0),
    ]
    diagnostics = lint_code(code)
    assert [d for d in diagnostics if d.severity == Severity.ERROR] == []
    shapes = [d for d in diagnostics if d.invariant == "window-shape"]
    assert len(shapes) == 1
    assert "undercount" in shapes[0].message


def test_effect_of_covers_every_opcode():
    """Every MOp must have a static semantics entry (the executor mirror)."""
    for op in MOp:
        instr = MachineInstr(op, dst=8, s1=9, s2=10, mem=(11, -1, 0, 0), args=(0,))
        effect_of(instr)  # must not raise


def test_machine_cfg_helpers():
    instrs = (
        MachineInstr(MOp.MOVI, dst=8, imm=0),
        MachineInstr(MOp.BCC, target=3, cc=CC.EQ),
        MachineInstr(MOp.B, target=0),
        MachineInstr(MOp.RET, s1=0),
    )
    assert leaders_of(instrs) == {0, 2, 3}
    assert successors_of(1, instrs[1], 4) == [2, 3]
    assert successors_of(2, instrs[2], 4) == [0]
    assert successors_of(3, instrs[3], 4) == []


@pytest.mark.parametrize("target", ["x64", "arm64", "arm64+smi"])
def test_block_partition_lints_clean_on_compiled_code(target):
    """The blockjit partition of real compiled code satisfies the lint:
    every branch target is a leader and no fused block crosses a branch,
    call, or deopt commit point."""
    codes = _compile(HOT_LOOP, "kernel", (50,), target=target)
    assert codes
    for code in codes:
        assert [
            d for d in lint_code(code) if d.invariant == "block-partition"
        ] == []


def test_block_partition_violations_are_errors(monkeypatch):
    """If the partition ever drifts from the branch structure (a branch
    target inside a block's body, a call not ending its block), the lint
    must fail the compile as an ERROR."""
    import repro.analysis.mclint as mclint

    codes = _compile(HOT_LOOP, "kernel", (50,), target="arm64")
    code = codes[0]
    # A partition that fuses the whole code object into one span ignores
    # every interior leader: branch targets and block-ender fallthroughs.
    monkeypatch.setattr(
        mclint, "block_spans", lambda instrs: [(0, len(instrs))]
    )
    bad = [
        d
        for d in lint_code(code)
        if d.invariant == "block-partition" and d.severity == Severity.ERROR
    ]
    assert bad, "corrupt partition produced no block-partition errors"


@pytest.mark.parametrize("target", ["x64", "arm64", "arm64+smi"])
def test_trace_edges_lint_clean_on_compiled_code(target):
    """fused_block_edges — the metadata the trace tier stitches chains
    over — agrees with the machine CFG on real compiled code."""
    codes = _compile(HOT_LOOP, "kernel", (50,), target=target)
    assert codes
    for code in codes:
        assert [
            d for d in lint_code(code) if d.invariant == "trace-edges"
        ] == []


def test_trace_edge_drift_is_an_error(monkeypatch):
    """A phantom edge (declared but absent from the CFG) and a missing
    edge (present in the CFG but undeclared) both fail the lint: either
    would let the trace tier stitch an illegal chain or reject a legal
    one."""
    import repro.analysis.mclint as mclint

    codes = _compile(HOT_LOOP, "kernel", (50,), target="arm64")
    code = codes[0]
    true_edges = mclint.fused_block_edges(tuple(code.instrs))
    assert true_edges, "no edges on the hot loop; test is vacuous"
    dropped = set(list(sorted(true_edges))[:-1])  # one edge missing
    phantom = true_edges | {(0, len(true_edges) + 7)}

    for corrupt in (dropped, phantom):
        monkeypatch.setattr(
            mclint, "fused_block_edges", lambda instrs, c=corrupt: set(c)
        )
        bad = [
            d
            for d in lint_code(code)
            if d.invariant == "trace-edges" and d.severity == Severity.ERROR
        ]
        assert bad, "edge drift produced no trace-edges errors"
