"""Seeded invariant violations the analysis layer must reject.

Each test corrupts a well-formed artifact (IR graph or compiled code) in
one specific way and asserts the verifier/linter reports that exact
invariant — proving the checks detect real corruption, not just pass on
clean inputs.
"""

from __future__ import annotations

import copy
import dataclasses
from types import SimpleNamespace

import pytest

from repro.analysis import VerificationError, assert_valid, lint_code, verify_graph
from repro.analysis.diagnostics import Severity
from repro.engine import EngineConfig
from repro.ir.graph import Graph
from repro.ir.nodes import Checkpoint, Repr
from repro.isa.base import ARM64, CC, MachineInstr, MOp
from repro.jit.checks import CheckKind
from repro.jit.codegen import CodeObject
from repro.jit.deopt import DeoptPoint, Location
from repro.suite import compile_benchmark, compiled_code_objects, get_benchmark

from .test_verifier import diamond_graph, straight_line_graph


def invariants(diagnostics):
    return {d.invariant for d in diagnostics if d.severity == Severity.ERROR}


# -- IR-level corruption --------------------------------------------------


def test_rejects_broken_dominance_same_block():
    graph, a, b = straight_line_graph()
    entry = graph.entry
    # Swap def and use: the add now precedes the constant it consumes.
    entry.nodes[0], entry.nodes[1] = entry.nodes[1], entry.nodes[0]
    assert "def-dominates-use" in invariants(verify_graph(graph))


def test_rejects_broken_dominance_cross_block():
    graph, phi = diamond_graph()
    left, join = graph.blocks[1], graph.blocks[3]
    # A join-block node directly uses a value from one arm of the diamond.
    leak = graph.new_node("int32_add", [left.nodes[0], phi], Repr.INT32)
    join.nodes.insert(1, leak)
    leak.block = join
    assert "def-dominates-use" in invariants(verify_graph(graph))


def test_rejects_missing_frame_state():
    graph, a, _b = straight_line_graph()
    check = graph.new_node(
        "check_map", [a], Repr.NONE, check_kind=CheckKind.WRONG_MAP,
        checkpoint=None,  # the seeded violation
    )
    graph.entry.nodes.insert(1, check)
    check.block = graph.entry
    assert "frame-state-present" in invariants(verify_graph(graph))


def test_rejects_bad_phi_arity():
    graph, phi = diamond_graph()
    phi.inputs.pop()  # 2 predecessors, 1 input
    assert "phi-arity" in invariants(verify_graph(graph))


def test_rejects_dangling_input():
    graph, a, b = straight_line_graph()
    a.dead = True
    graph.entry.nodes.remove(a)  # b now consumes a dead, unscheduled node
    bad = invariants(verify_graph(graph))
    assert "no-dangling-inputs" in bad


def test_rejects_missing_terminator():
    graph, _a, _b = straight_line_graph()
    graph.entry.nodes.pop()  # drop the return
    assert "block-terminated" in invariants(verify_graph(graph))


def test_rejects_successor_mismatch():
    graph, _phi = diamond_graph()
    entry, left = graph.blocks[0], graph.blocks[1]
    # The branch still targets left/right but the CFG edge is gone.
    entry.successors.remove(left)
    left.predecessors.remove(entry)
    bad = invariants(verify_graph(graph))
    assert "successor-consistency" in bad


def test_rejects_frame_state_dead_value():
    graph, a, _b = straight_line_graph()
    ghost = graph.new_node("const_int32", [], Repr.INT32, {"value": 5})
    ghost.dead = True  # never scheduled, and dead
    check = graph.new_node(
        "check_heap_object", [a], Repr.NONE,
        check_kind=CheckKind.NOT_A_SMI,
        checkpoint=Checkpoint(0, [(0, ghost)]),
    )
    graph.entry.nodes.insert(1, check)
    check.block = graph.entry
    assert "frame-state-live" in invariants(verify_graph(graph))


def test_assert_valid_names_node_and_invariant():
    graph, phi = diamond_graph()
    phi.inputs.pop()
    with pytest.raises(VerificationError) as caught:
        assert_valid(graph, phase="eliminate_checks")
    message = str(caught.value)
    assert "phi-arity" in message
    assert f"n{phi.id}" in message
    assert "eliminate_checks" in message


# -- machine-level corruption ---------------------------------------------


def _hand_code(instrs, deopt_points=None, check_sites=None):
    shared = SimpleNamespace(info=SimpleNamespace(name="hand"))
    code = CodeObject(shared, ARM64)
    code.instrs = list(instrs)
    code.deopt_points = dict(deopt_points or {})
    code.check_sites = dict(check_sites or {})
    code.stack_slots = 2
    return code


def test_rejects_read_before_def():
    code = _hand_code([
        MachineInstr(MOp.MOVR, dst=8, s1=9),  # r9 never defined
        MachineInstr(MOp.RET, s1=0),
    ])
    assert "read-before-def" in invariants(lint_code(code))


def test_rejects_flags_consumed_without_setter():
    code = _hand_code([
        MachineInstr(MOp.BCC, target=1, cc=CC.EQ),
        MachineInstr(MOp.RET, s1=0),
    ])
    assert "flags-before-use" in invariants(lint_code(code))


def test_rejects_unpatched_branch_target():
    code = _hand_code([
        MachineInstr(MOp.B, target=-1),
        MachineInstr(MOp.RET, s1=0),
    ])
    assert "branch-target" in invariants(lint_code(code))


_FIB_CODE = None


def _compiled_fib():
    """One real compiled code object, freshly copied so each test can
    corrupt it independently."""
    global _FIB_CODE
    if _FIB_CODE is None:
        spec = get_benchmark("FIB")
        engine = compile_benchmark(
            spec, EngineConfig(target="arm64", verify=True), iterations=12
        )
        codes = compiled_code_objects(engine)
        assert codes
        _FIB_CODE = codes[0]
    return copy.deepcopy(_FIB_CODE)


def test_rejects_clobbered_register_in_frame_state():
    code = _compiled_fib()
    assert invariants(lint_code(code)) == set()
    check_id, point = next(
        (cid, p) for cid, p in code.deopt_points.items() if p.values
    )
    scratch = code.target.gpr_count - 1  # check emission clobbers these
    victim = point.values[0]
    mutated = dataclasses.replace(victim, location=Location("reg", scratch))
    point.values = (mutated,) + point.values[1:]
    assert "frame-state-location" in invariants(lint_code(code))


def test_rejects_unregistered_deopt_target():
    code = _compiled_fib()
    branch_pc = next(
        pc for pc, instr in enumerate(code.instrs)
        if instr.op == MOp.BCC and instr.is_deopt_branch
    )
    code.instrs[branch_pc].target = branch_pc + 1  # not a DEOPT stub
    assert "deopt-target" in invariants(lint_code(code))


def test_rejects_stub_without_deopt_point():
    code = _compiled_fib()
    stub_pc = next(
        pc for pc, instr in enumerate(code.instrs) if instr.op == MOp.DEOPT
    )
    del code.deopt_points[int(code.instrs[stub_pc].imm)]
    assert "deopt-registered" in invariants(lint_code(code))
