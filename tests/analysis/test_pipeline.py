"""Per-pass verification in the optimization pipeline (check_elim /
branch-suppression edge cases under the verifier)."""

from __future__ import annotations

import pytest

import repro.ir.passes.pipeline as pipeline_module
from repro.analysis import VerificationError
from repro.engine import Engine, EngineConfig
from repro.jit.checks import CheckKind
from repro.suite.runner import EAGER_KINDS

SOURCE = """
function kernel(n) {
    var arr = [1, 2, 3, 4];
    var total = 0;
    for (var i = 0; i < n; i = i + 1) {
        total = total + arr[i % 4];
    }
    return total;
}
"""


def _warm(config, calls=30, n=50):
    engine = Engine(config)
    engine.load(SOURCE)
    value = None
    for _ in range(calls):
        value = engine.call_global("kernel", n)
    return engine, value


def test_pipeline_verifies_with_all_removable_checks_removed():
    """'All checks removed' edge case: every eager kind short-circuited."""
    engine, value = _warm(
        EngineConfig(target="arm64", verify=True, removed_checks=EAGER_KINDS)
    )
    assert value == 50 // 4 * 10 + [0, 1, 3, 6][50 % 4]
    compiled = [f for f in engine.functions if f.code is not None]
    assert compiled
    for shared in compiled:
        remaining = {p.kind for p in shared.code.deopt_points.values()}
        assert remaining & EAGER_KINDS == set()


def test_pipeline_verifies_leftover_check_graph():
    """Section III-B.2: when some eager kinds must stay (leftover checks),
    the partially-stripped graph — most checks gone, a few surviving with
    their frame states — must still verify and lint clean."""
    leftovers = {CheckKind.NOT_A_SMI, CheckKind.OVERFLOW}
    removed = frozenset(EAGER_KINDS - leftovers)
    engine, value = _warm(
        EngineConfig(target="arm64", verify=True, removed_checks=removed)
    )
    assert value is not None
    compiled = [f for f in engine.functions if f.code is not None]
    assert compiled
    remaining = {
        p.kind
        for f in compiled
        for p in f.code.deopt_points.values()
    }
    assert remaining & removed == set()
    assert remaining & leftovers, "expected surviving leftover checks"


def test_pipeline_verifies_with_branch_suppression():
    engine, _ = _warm(
        EngineConfig(target="arm64", verify=True, emit_check_branches=False)
    )
    assert any(f.code is not None for f in engine.functions)


def test_corrupting_pass_is_named_in_the_failure(monkeypatch):
    """A pass that breaks an invariant must fail verification immediately,
    with the failing pass named in the error."""

    def corrupting_dce(graph):
        for block in graph.blocks:
            for node in block.nodes:
                if node.op == "phi" and node.inputs:
                    node.inputs.pop()  # seed a phi-arity violation
                    return 1
        return 0

    monkeypatch.setattr(pipeline_module, "eliminate_dead_code", corrupting_dce)
    with pytest.raises(VerificationError) as caught:
        _warm(EngineConfig(target="arm64", verify=True))
    message = str(caught.value)
    assert "eliminate_dead_code" in message
    assert "phi-arity" in message


def test_verify_flag_off_skips_verification(monkeypatch):
    """verify=False must not run the verifier even when the graph is bad
    (and the corrupted phi then fails at codegen or executes wrongly —
    here we just assert no VerificationError surfaces from the pipeline)."""
    calls = []

    def spy(*args, **kwargs):
        calls.append(args)
        return []

    monkeypatch.setattr("repro.analysis.verifier.assert_valid", spy)
    _warm(EngineConfig(target="arm64", verify=False))
    assert calls == []
