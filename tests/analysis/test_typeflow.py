"""Typeflow analysis: lattice laws, classification over real benchmarks,
dynamic cross-validation, and a seeded-unsoundness mutation test proving
the validator rejects a broken abstract transfer."""

from __future__ import annotations

import json
from types import SimpleNamespace

import pytest

from repro.analysis import typeflow
from repro.analysis.diagnostics import Severity
from repro.analysis.typeflow import (
    HOISTABLE,
    MAX_SHAPE_SET,
    REDUNDANT,
    REQUIRED,
    analyze_typeflow,
    cross_validate,
    join_typeval,
    typed_plans,
)
from repro.engine import EngineConfig
from repro.isa.base import ARM64, CC, MachineInstr, MOp
from repro.isa.semantics import AbstractTransfer, abstract_transfer_of
from repro.jit.checks import CheckKind
from repro.jit.codegen import CodeObject
from repro.jit.deopt import DeoptPoint
from repro.suite import compile_benchmark, get_benchmark

SMI = ("smi", None)
DOUBLE = ("double", None)
STRING = ("string", None)
HEAP = ("heap-object", None)


def obj(*shapes):
    return ("object", frozenset(shapes))


# -- lattice laws ---------------------------------------------------------


def test_join_identity_and_unknown():
    assert join_typeval(SMI, SMI) == SMI
    assert join_typeval(SMI, None) is None
    assert join_typeval(None, STRING) is None
    assert join_typeval(None, None) is None


def test_join_object_shape_union():
    assert join_typeval(obj(10), obj(12)) == obj(10, 12)
    assert join_typeval(obj(10, 12), obj(12)) == obj(10, 12)


def test_join_widens_past_shape_cap():
    big = obj(*range(MAX_SHAPE_SET))
    assert join_typeval(big, big) == big  # at the cap, not over it
    assert join_typeval(big, obj(99)) == HEAP


def test_join_mixed_heap_kinds():
    assert join_typeval(STRING, obj(10)) == HEAP
    assert join_typeval(("boxed-number", None), STRING) == HEAP
    assert join_typeval(HEAP, obj(10)) == HEAP
    # A double is an unboxed float, not a heap value: no common bound.
    assert join_typeval(DOUBLE, STRING) is None
    assert join_typeval(SMI, STRING) is None


def test_join_is_commutative_idempotent_and_monotone_terminating():
    samples = [None, SMI, DOUBLE, STRING, ("boxed-number", None), HEAP,
               obj(1), obj(2), obj(1, 2), obj(*range(MAX_SHAPE_SET))]
    for a in samples:
        assert join_typeval(a, a) == a
        for b in samples:
            assert join_typeval(a, b) == join_typeval(b, a)
    # Widening termination: keep joining in fresh singleton shapes — the
    # chain must stabilise (object grows to the cap, then widens to
    # heap-object, which absorbs) instead of ascending forever.
    value = obj(0)
    history = [value]
    for shape in range(1, 50):
        value = join_typeval(value, obj(shape))
        history.append(value)
    assert value == HEAP
    assert join_typeval(value, obj(999)) == HEAP
    # Strictly ascending only until the widening point.
    changes = sum(1 for x, y in zip(history, history[1:]) if x != y)
    assert changes <= MAX_SHAPE_SET + 1


# -- classification over real benchmarks ----------------------------------


@pytest.mark.parametrize("target", ["arm64", "x64"])
@pytest.mark.parametrize("name", ["FIB", "SPMV-CSR-INT"])
def test_classification_is_total_and_consistent(name, target):
    spec = get_benchmark(name)
    engine = compile_benchmark(
        spec, EngineConfig(target=target, verify=True), iterations=12
    )
    analyzed = 0
    for code in engine._code_objects:
        result = analyze_typeflow(code)
        analyzed += 1
        counts = result.counts
        assert counts["checks"] == len(result.classifications)
        assert (counts[REDUNDANT] + counts[HOISTABLE] + counts[REQUIRED]
                == counts["checks"])
        assert result.residual_density() <= (
            100.0 * counts["checks"] / result.body_instructions
            if result.body_instructions else 0.0
        ) + 1e-9
        for verdict in result.classifications.values():
            assert verdict.klass in (REDUNDANT, HOISTABLE, REQUIRED)
            assert verdict.site in ("branch", "jsldrsmi")
            if verdict.klass != REQUIRED:
                assert verdict.fact is not None
        # Plans only for non-required, structurally eligible checks, one
        # per fused block, sited on the block's last instruction.
        for plan in result.plans.values():
            verdict = result.classifications[plan.check_id]
            assert verdict.klass in (REDUNDANT, HOISTABLE)
            assert verdict.eligible
            assert plan.site_pc == plan.end - 1
            assert plan.guards in ((), (plan.fact,))
            assert (plan.guards == ()) == (verdict.klass == REDUNDANT)
    assert analyzed > 0


def test_analysis_result_is_cached_and_serializable():
    spec = get_benchmark("FIB")
    engine = compile_benchmark(
        spec, EngineConfig(target="arm64", verify=True), iterations=12
    )
    code = engine._code_objects[-1]
    result = analyze_typeflow(code)
    assert analyze_typeflow(code) is result
    blob = json.dumps(result.to_json())
    assert spec.name.lower() in blob.lower() or result.function in blob


def test_cross_validation_clean_on_real_run():
    spec = get_benchmark("FIB")
    engine = compile_benchmark(
        spec, EngineConfig(target="arm64", verify=True, typed_blocks=True),
        iterations=12,
    )
    assert sum(engine.check_trips.values()) > 0  # FIB warmup does deopt
    assert cross_validate(engine._code_objects, engine.check_trips) == []


# -- seeded unsoundness (mutation test) -----------------------------------


def _smi_check_code():
    """ADD of an even and an odd constant, then a smi (tag-bit) check:
    the result really is tagged, so the check is genuinely load-bearing."""
    shared = SimpleNamespace(info=SimpleNamespace(name="hand"))
    code = CodeObject(shared, ARM64)
    code.instrs = [
        MachineInstr(MOp.MOVI, dst=8, imm=4),
        MachineInstr(MOp.MOVI, dst=9, imm=5),
        MachineInstr(MOp.ADD, dst=10, s1=8, s2=9),
        MachineInstr(MOp.TSTI, s1=10, imm=1, check_id=0),
        MachineInstr(MOp.BCC, target=6, cc=CC.NE, check_id=0,
                     is_deopt_branch=True),
        MachineInstr(MOp.RET, s1=10),
        MachineInstr(MOp.DEOPT, imm=0),
    ]
    code.deopt_points = {0: DeoptPoint(0, CheckKind.NOT_A_SMI, 0, ())}
    code.check_sites = {}
    code.stack_slots = 2
    code.serial = 0
    return code


def test_sound_transfer_keeps_real_check_required():
    code = _smi_check_code()
    verdict = analyze_typeflow(code).classifications[0]
    assert verdict.klass == REQUIRED
    # Trips on a required check are normal operation, not a violation.
    assert cross_validate([code], {(0, 0): 5}) == []


def test_unsound_transfer_is_rejected_by_cross_validation(monkeypatch, tmp_path):
    """Seed the one bug class the validator exists for: an abstract
    transfer claiming ADD always produces an SMI.  The analysis then
    proves the tag check redundant; a single recorded dynamic trip must
    surface as a typeflow-soundness ERROR plus a forensics bundle."""

    def unsound(instr):
        if instr.op == MOp.ADD:
            return AbstractTransfer(("r", instr.dst), ("const", 0))
        return abstract_transfer_of(instr)

    monkeypatch.setattr(typeflow, "abstract_transfer_of", unsound)
    code = _smi_check_code()
    verdict = analyze_typeflow(code).classifications[0]
    assert verdict.klass == REDUNDANT  # the unsound proof went through

    diagnostics = cross_validate([code], {(0, 0): 1}, bundle_root=tmp_path)
    assert [d.invariant for d in diagnostics] == ["typeflow-soundness"]
    assert diagnostics[0].severity == Severity.ERROR
    assert "dynamically deoptimized" in diagnostics[0].message

    bundles = list(tmp_path.glob("typeflow-unsound-*.json"))
    assert len(bundles) == 1
    record = json.loads(bundles[0].read_text())
    assert record["check_id"] == 0
    assert record["dynamic_trips"] == 1
    assert record["kind"] == "typeflow-unsound"


def test_unsound_transfer_never_reaches_typed_plans(monkeypatch):
    """Even before any dynamic evidence, a wrongly-redundant check makes
    an (unguarded) typed plan — this documents why cross-validation and
    the divergence sentinel exist.  The plan must still satisfy the
    structural invariants mclint enforces."""

    def unsound(instr):
        if instr.op == MOp.ADD:
            return AbstractTransfer(("r", instr.dst), ("const", 0))
        return abstract_transfer_of(instr)

    monkeypatch.setattr(typeflow, "abstract_transfer_of", unsound)
    code = _smi_check_code()
    plans = typed_plans(code)
    for plan in plans.values():
        assert plan.site_pc == plan.end - 1
        assert plan.guards in ((), (plan.fact,))
