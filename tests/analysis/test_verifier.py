"""Graph-verifier behaviour on well-formed graphs (hand-built and real)."""

from __future__ import annotations

import pytest

from repro.analysis import verify_graph
from repro.analysis.diagnostics import Severity, errors, render_table, warnings
from repro.analysis.dominators import DominatorTree, reachable_blocks
from repro.ir.graph import Graph
from repro.ir.nodes import Repr


def straight_line_graph():
    graph = Graph("straight")
    entry = graph.entry
    a = graph.new_node("const_int32", [], Repr.INT32, {"value": 1})
    entry.append(a)
    b = graph.new_node("int32_add", [a, a], Repr.INT32)
    entry.append(b)
    entry.append(graph.new_node("return", [b]))
    return graph, a, b


def diamond_graph():
    """entry -> (left | right) -> join with a phi."""
    graph = Graph("diamond")
    entry = graph.entry
    left, right, join = graph.new_block(), graph.new_block(), graph.new_block()
    cond = graph.new_node("const_int32", [], Repr.BOOL, {"value": 1})
    entry.append(cond)
    entry.append(
        graph.new_node(
            "branch", [cond], Repr.NONE,
            {"true_block": left, "false_block": right},
        )
    )
    graph.connect(entry, left)
    graph.connect(entry, right)
    x1 = graph.new_node("const_int32", [], Repr.INT32, {"value": 2})
    left.append(x1)
    left.append(graph.new_node("goto", [], Repr.NONE, {"target_block": join}))
    graph.connect(left, join)
    x2 = graph.new_node("const_int32", [], Repr.INT32, {"value": 3})
    right.append(x2)
    right.append(graph.new_node("goto", [], Repr.NONE, {"target_block": join}))
    graph.connect(right, join)
    phi = graph.new_node("phi", [x1, x2], Repr.INT32)
    join.append(phi)
    join.append(graph.new_node("return", [phi]))
    return graph, phi


def test_empty_graph_is_clean():
    assert verify_graph(Graph("empty")) == []


def test_straight_line_graph_is_clean():
    graph, _a, _b = straight_line_graph()
    assert verify_graph(graph) == []


def test_diamond_with_phi_is_clean():
    graph, _phi = diamond_graph()
    assert verify_graph(graph) == []


def test_unreachable_block_is_tolerated():
    """schedule_rpo leaves stale predecessor edges; they must not trip the
    verifier (they are exactly what the seed pipeline produces)."""
    graph, _a, _b = straight_line_graph()
    orphan = graph.new_block()
    value = graph.new_node("const_int32", [], Repr.INT32, {"value": 9})
    orphan.append(value)  # unreachable and unterminated: allowed
    assert verify_graph(graph) == []


def test_dominator_tree_on_diamond():
    graph, _phi = diamond_graph()
    entry, left, right, join = graph.blocks
    tree = DominatorTree(graph)
    assert [b.id for b in reachable_blocks(graph)][0] == entry.id
    assert tree.dominates(entry, join)
    assert tree.dominates(entry, entry)
    assert not tree.dominates(left, join)
    assert not tree.dominates(join, left)
    assert tree.idom[join.id] is entry


def test_severity_helpers_and_table():
    graph, _a, _b = straight_line_graph()
    graph.entry.nodes[0].dead = True  # corrupt: dead node scheduled
    diagnostics = verify_graph(graph)
    assert errors(diagnostics)
    assert warnings(diagnostics) == []
    table = render_table(diagnostics, title="t")
    assert "no-dead-scheduled" in table
    assert str(diagnostics[0]).startswith("[error] verifier/")


def test_real_compiled_graph_verifies(engine):
    """The full seed pipeline must be verifier-clean on a hot function
    (the conftest default already enables verification engine-wide; this
    asserts it explicitly end to end)."""
    engine.load(
        """
        function hot(n) {
            var total = 0;
            for (var i = 0; i < n; i = i + 1) { total = total + i; }
            return total;
        }
        """
    )
    for _ in range(40):
        value = engine.call_global("hot", 100)
    assert value == 4950
    compiled = [f for f in engine.functions if f.code is not None]
    assert compiled, "function did not tier up"
