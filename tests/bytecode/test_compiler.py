"""Bytecode compiler tests."""

import pytest

from repro.bytecode.compiler import UnsupportedFeatureError, compile_source
from repro.bytecode.disasm import disassemble
from repro.bytecode.opcodes import Op


def ops_of(source, function_index=1):
    program = compile_source(source)
    return [i.op for i in program.functions[function_index].bytecode]


class TestStructure:
    def test_main_is_function_zero(self):
        program = compile_source("var x = 1;")
        assert program.functions[0] is program.main
        assert program.main.name == "<main>"

    def test_toplevel_vars_become_globals(self):
        program = compile_source("var x = 1; x = x + 1;")
        ops = [i.op for i in program.main.bytecode]
        assert Op.STORE_GLOBAL in ops
        assert Op.LOAD_GLOBAL in ops

    def test_function_locals_use_registers(self):
        ops = ops_of("function f() { var a = 1; return a; }")
        assert Op.STORE_GLOBAL not in ops

    def test_params_map_to_first_registers(self):
        program = compile_source("function f(a, b) { return b; }")
        fn = program.functions[1]
        ret = next(i for i in fn.bytecode if i.op == Op.RETURN)
        assert ret.a == 1  # second parameter register

    def test_every_function_ends_with_return(self):
        program = compile_source("function f() { var x = 1; }")
        assert program.functions[1].bytecode[-1].op == Op.RETURN

    def test_feedback_slots_allocated(self):
        program = compile_source("function f(a, b) { return a + b * a; }")
        fn = program.functions[1]
        slots = {i.d for i in fn.bytecode if i.d >= 0}
        assert len(slots) == fn.feedback_slot_count == 2


class TestControlFlow:
    def test_loop_has_backward_jump(self):
        ops_and_targets = [
            (i.op, i.a)
            for i in compile_source(
                "function f(n) { for (var i = 0; i < n; i++) { } }"
            ).functions[1].bytecode
        ]
        backward = [
            (op, target)
            for index, (op, target) in enumerate(ops_and_targets)
            if op == Op.JUMP and target <= index
        ]
        assert backward

    def test_loop_headers_detected(self):
        program = compile_source("function f(n) { while (n > 0) { n = n - 1; } }")
        assert program.functions[1].loop_headers

    def test_break_jumps_past_loop_end(self):
        program = compile_source(
            "function f() { while (true) { break; } return 9; }"
        )
        code = program.functions[1].bytecode
        break_jump = next(
            i for index, i in enumerate(code) if i.op == Op.JUMP and i.a > index
        )
        assert code[break_jump.a].op != Op.JUMP or break_jump.a > 0

    def test_logical_and_short_circuits(self):
        ops = ops_of("function f(a, b) { return a && b; }")
        assert Op.JUMP_IF_FALSE in ops

    def test_ternary_compiles_to_branches(self):
        ops = ops_of("function f(a) { return a ? 1 : 2; }")
        assert Op.JUMP_IF_FALSE in ops and Op.JUMP in ops


class TestOperations:
    def test_compound_assignment_expands(self):
        ops = ops_of("function f(a) { a += 2; return a; }")
        assert Op.ADD in ops

    def test_method_call_opcode(self):
        ops = ops_of("function f(s) { return s.charCodeAt(0); }")
        assert Op.CALL_METHOD in ops

    def test_new_opcode(self):
        ops = ops_of("function f() { return new Foo(); }")
        assert Op.NEW in ops

    def test_element_vs_property(self):
        ops = ops_of("function f(o, i) { return o[i] + o.x; }")
        assert Op.GET_ELEMENT in ops and Op.GET_PROPERTY in ops

    def test_constant_pool_deduplicates(self):
        program = compile_source("function f() { return 7 + 7 + 7; }")
        constants = program.functions[1].constants
        assert len([c for c in constants.entries if c == ("int", 7)]) == 1


class TestErrors:
    def test_closure_capture_rejected(self):
        with pytest.raises(UnsupportedFeatureError):
            compile_source(
                "function outer() { var x = 1; function inner() { return x; } }"
            )

    def test_break_outside_loop_rejected(self):
        from repro.lang.errors import JSSyntaxError

        with pytest.raises(JSSyntaxError):
            compile_source("function f() { break; }")


class TestDisassembler:
    def test_listing_mentions_key_ops(self):
        program = compile_source(
            "function f(a) { for (var i = 0; i < a.length; i++) { } return i; }"
        )
        listing = disassemble(program.functions[1])
        assert "JUMP_IF_FALSE" in listing
        assert "GET_PROPERTY" in listing
        assert "registers=" in listing
