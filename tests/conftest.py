"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import sys

import pytest

# The engine raises the recursion limit lazily; do it up front so hypothesis
# does not warn about mid-test changes.
sys.setrecursionlimit(100000)

from repro.analysis import set_default_verify
from repro.engine import Engine, EngineConfig

# Every engine the tests construct verifies the IR after each pass and
# lints the emitted machine code (unless a test opts out via
# EngineConfig(verify=False)).
set_default_verify(True)


@pytest.fixture(autouse=True)
def _isolated_supervise_dirs(tmp_path, monkeypatch):
    """Keep crash bundles and sweep journals out of the repo's results/.

    Chaos tests deliberately crash cells and diverge the fused tier; the
    bundles they capture must land in the test's tmp dir, not in
    ``results/crashes``.
    """
    monkeypatch.setenv("REPRO_BUNDLE_DIR", str(tmp_path / "crashes"))
    monkeypatch.setenv("REPRO_WAL_DIR", str(tmp_path / "wal"))


@pytest.fixture
def heap():
    from repro.values.heap import Heap

    return Heap()


@pytest.fixture
def engine():
    """A default (arm64, optimizer on) engine."""
    return Engine(EngineConfig(target="arm64"))


@pytest.fixture
def interp_engine():
    """Interpreter-only engine (the semantics reference)."""
    return Engine(EngineConfig(enable_optimizer=False))


def run_js(source: str, call: str = None, args=(), config: EngineConfig = None):
    """Load a program and optionally call a global function; returns the
    Python value."""
    engine = Engine(config or EngineConfig())
    engine.load(source)
    if call is None:
        return engine
    return engine.call_global(call, *args)


def run_hot(source: str, call: str, args=(), target: str = "arm64", warmup: int = 30):
    """Run `call` enough times to tier up, assert the JIT result matches the
    interpreter result, and return (value, engine)."""
    reference = Engine(EngineConfig(enable_optimizer=False))
    reference.load(source)
    expected = reference.call_global(call, *args)

    engine = Engine(EngineConfig(target=target))
    engine.load(source)
    value = None
    for _ in range(warmup):
        value = engine.call_global(call, *args)
        assert value == expected, f"JIT diverged: {value!r} != {expected!r}"
    return value, engine


def shared_of(engine: Engine, name: str):
    for fn in engine.functions:
        if fn.name == name:
            return fn
    raise LookupError(name)
