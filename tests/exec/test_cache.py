"""Disk-cache round trips: cold store, warm hit, fingerprint invalidation."""

import pytest

from repro.exec import DiskCache, MISS, execute_cells, timed_cell
from repro.exec.fingerprint import engine_fingerprint


@pytest.fixture
def cell():
    return timed_cell("FIB", "arm64", 3, noise=False)


class TestDiskCache:
    def test_get_on_empty_cache_is_a_miss(self, tmp_path):
        cache = DiskCache(root=tmp_path)
        assert cache.get("00" * 32) is MISS
        assert cache.misses == 1

    def test_put_then_get_round_trips(self, tmp_path):
        cache = DiskCache(root=tmp_path)
        cache.put("ab" * 32, {"x": 1})
        assert cache.get("ab" * 32) == {"x": 1}
        assert (cache.stores, cache.hits) == (1, 1)

    def test_layout_is_fingerprint_then_token_fanout(self, tmp_path):
        cache = DiskCache(root=tmp_path)
        token = "cd" * 32
        cache.put(token, 42)
        expected = tmp_path / engine_fingerprint()[:16] / token[:2] / f"{token}.pkl"
        assert expected.is_file()

    def test_corrupt_entry_degrades_to_miss_and_is_dropped(self, tmp_path):
        cache = DiskCache(root=tmp_path)
        token = "ef" * 32
        cache.put(token, 42)
        path = cache._path(token)
        path.write_bytes(b"not a pickle")
        assert cache.get(token) is MISS
        assert not path.exists()

    def test_unwritable_root_disables_quietly(self, tmp_path):
        blocker = tmp_path / "file"
        blocker.write_text("")
        cache = DiskCache(root=blocker)  # mkdir under a file fails
        cache.put("aa" * 32, 1)
        assert cache._disabled
        assert cache.get("aa" * 32) is MISS


class TestSchedulerRoundTrip:
    def test_cold_run_stores_warm_run_hits(self, tmp_path, cell, monkeypatch):
        disk = DiskCache(root=tmp_path)
        cold = execute_cells([cell], jobs=1, memo={}, disk=disk)[cell]
        assert disk.stores == 1

        # A warm run must be served entirely from disk: make any attempt to
        # recompute blow up.
        import repro.exec.scheduler as sched

        def explode(_cell):
            raise AssertionError("warm run recomputed a cached cell")

        monkeypatch.setattr(sched, "compute_cell", explode)
        warm = execute_cells([cell], jobs=1, memo={}, disk=disk)[cell]
        assert warm == cold
        assert disk.hits == 1

    def test_fingerprint_bump_invalidates(self, tmp_path, cell):
        old = DiskCache(root=tmp_path)
        execute_cells([cell], jobs=1, memo={}, disk=old)
        bumped = DiskCache(root=tmp_path, fingerprint="deadbeef" * 8)
        assert bumped.get(cell.token()) is MISS
        execute_cells([cell], jobs=1, memo={}, disk=bumped)
        assert bumped.stores == 1  # recomputed and stored under the new version

    def test_disk_none_bypasses_persistence(self, tmp_path, cell):
        execute_cells([cell], jobs=1, memo={}, disk=None)
        assert not any(tmp_path.iterdir())

    def test_clear_removes_only_this_fingerprint(self, tmp_path):
        ours = DiskCache(root=tmp_path)
        other = DiskCache(root=tmp_path, fingerprint="feedface" * 8)
        ours.put("11" * 32, 1)
        other.put("11" * 32, 2)
        ours.clear()
        assert not ours.directory.exists()
        assert other.get("11" * 32) == 2
