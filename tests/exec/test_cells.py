"""RunCell descriptors: normalization, keys, and compute determinism."""

from repro.exec import (
    RunCell,
    compute_cell,
    execute_cells,
    profiled_cell,
    removable_cell,
    timed_cell,
)
from repro.jit.checks import CheckKind
from repro.suite.spec import get_benchmark


class TestCellNormalization:
    def test_spec_and_name_make_the_same_cell(self):
        spec = get_benchmark("FIB")
        assert timed_cell(spec, "arm64", 10) == timed_cell("FIB", "arm64", 10)

    def test_removed_kinds_are_sorted_names(self):
        removed = frozenset({CheckKind.NOT_A_SMI, CheckKind.OUT_OF_BOUNDS})
        cell = timed_cell("FIB", "arm64", 10, removed=removed)
        assert cell.removed == tuple(sorted(k.name for k in removed))
        # Any iteration order of the frozenset produces the identical cell.
        assert cell == timed_cell("FIB", "arm64", 10, removed=set(removed))

    def test_cells_are_hashable_and_distinct_by_kind(self):
        cells = {
            timed_cell("FIB", "arm64", 10),
            profiled_cell("FIB", "arm64", 10),
            removable_cell("FIB", "arm64", 10),
        }
        assert len(cells) == 3

    def test_token_is_stable_and_distinct(self):
        a = timed_cell("FIB", "arm64", 10)
        assert a.token() == timed_cell("FIB", "arm64", 10).token()
        assert a.token() != timed_cell("FIB", "arm64", 11).token()
        assert len(a.token()) == 64

    def test_removable_key_includes_iterations(self):
        # Historic bug: two callers probing at different lengths silently
        # shared one result.  The iteration count is now part of the key.
        assert removable_cell("FIB", "arm64", 10) != removable_cell("FIB", "arm64", 40)

    def test_removable_cell_normalizes_irrelevant_fields(self):
        cell = removable_cell("FIB", "arm64")
        assert (cell.rep, cell.removed, cell.noise) == (0, (), False)


class TestComputeCell:
    def test_timed_cell_matches_direct_runner(self):
        spec = get_benchmark("FIB")
        cell = timed_cell(spec, "arm64", 3, noise=False)
        first = compute_cell(cell)
        second = compute_cell(cell)
        assert first == second  # RunResult dataclass equality, bitwise

    def test_unknown_kind_rejected(self):
        cell = RunCell("bogus", "FIB", "arm64", 3)
        try:
            compute_cell(cell)
        except ValueError as error:
            assert "bogus" in str(error)
        else:
            raise AssertionError("expected ValueError")


class TestSchedulerDedup:
    def test_duplicate_cells_resolve_once(self, monkeypatch):
        import repro.exec.scheduler as sched

        calls = []
        real = compute_cell

        def counting(cell):
            calls.append(cell)
            return real(cell)

        monkeypatch.setattr(sched, "compute_cell", counting)
        cell = timed_cell("FIB", "arm64", 3, noise=False)
        results = execute_cells([cell, cell, cell], jobs=1, memo={}, disk=None)
        assert len(calls) == 1
        assert list(results) == [cell]

    def test_memo_is_reused_across_batches(self):
        memo = {}
        cell = timed_cell("FIB", "arm64", 3, noise=False)
        first = execute_cells([cell], jobs=1, memo=memo, disk=None)[cell]
        second = execute_cells([cell], jobs=1, memo=memo, disk=None)[cell]
        assert first is second
