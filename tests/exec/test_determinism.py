"""Determinism: stable seeds, serial-vs-parallel identity, driver rows."""

import os
import subprocess
import sys
import zlib
from pathlib import Path

import pytest

import repro
from repro.exec import execute_cells, profiled_cell, timed_cell
from repro.exec.scheduler import configure, current_config
from repro.experiments.common import ResultsCache, Scale
from repro.suite.runner import stable_seed


@pytest.fixture
def scheduler_defaults():
    """Save/restore the process-wide scheduler config around a test."""
    config = current_config()
    saved = (config.jobs, config.cache)
    yield config
    configure(jobs=saved[0], cache=saved[1])


class TestStableSeed:
    def test_is_crc32_of_utf8_name(self):
        assert stable_seed("FIB") == zlib.crc32(b"FIB")
        assert stable_seed("SPMV-CSR-SMI") == zlib.crc32(b"SPMV-CSR-SMI")

    def test_stable_across_hash_randomization(self):
        # The historic bug: seeding from hash(str) made every process with a
        # different PYTHONHASHSEED measure a different experiment.
        src = Path(repro.__file__).resolve().parents[1]
        values = []
        for hashseed in ("0", "1", "random"):
            env = dict(os.environ, PYTHONHASHSEED=hashseed, PYTHONPATH=str(src))
            out = subprocess.run(
                [sys.executable, "-c",
                 "from repro.suite.runner import stable_seed; print(stable_seed('FIB'))"],
                env=env, capture_output=True, text=True, check=True,
            )
            values.append(int(out.stdout.strip()))
        assert values == [zlib.crc32(b"FIB")] * 3


def _attribution_fields(attribution):
    # AttributionResult has no __eq__; compare its observable fields.
    return (
        attribution.total_samples,
        attribution.check_samples,
        attribution.jit_samples,
        dict(attribution.by_kind),
    )


def _profile_fields(profiled):
    return (
        profiled.run,
        _attribution_fields(profiled.window),
        _attribution_fields(profiled.truth),
        profiled.static_checks,
        profiled.static_body,
        profiled.checks_by_kind,
    )


class TestParallelIdentity:
    CELLS = [
        timed_cell("FIB", "arm64", 3, rep=0),
        timed_cell("FIB", "arm64", 3, rep=1),
        timed_cell("PRIMES", "x64", 3, rep=0),
        profiled_cell("FIB", "arm64", 4),
    ]

    def test_pool_workers_match_serial_bitwise(self):
        serial = execute_cells(self.CELLS, jobs=1, memo={}, disk=None)
        parallel = execute_cells(self.CELLS, jobs=2, memo={}, disk=None)
        for cell in self.CELLS[:3]:
            assert parallel[cell] == serial[cell], cell.describe()
        cell = self.CELLS[3]
        assert _profile_fields(parallel[cell]) == _profile_fields(serial[cell])


class TestDriverRows:
    def test_fig01_rows_identical_serial_vs_jobs4(self, monkeypatch, scheduler_defaults):
        from repro.experiments import fig01_check_density as fig01

        scale = Scale("tiny", iterations=4, reps=1, benchmark_limit=2)

        def rows(jobs):
            configure(jobs=jobs, cache=False)
            monkeypatch.setattr(fig01, "CACHE", ResultsCache())
            result = fig01.run(scale=scale, targets=("arm64",))
            return result.rows, result.notes

        assert rows(1) == rows(4)
