"""Grid hardening: checksummed cache, retries, crash/hang recovery, quarantine."""

import shutil

import pytest

from repro.exec import (
    MISS,
    CellFailure,
    DiskCache,
    GridError,
    RetryPolicy,
    clear_quarantine,
    execute_cells,
    quarantined_cells,
    timed_cell,
)


@pytest.fixture(autouse=True)
def _clean_quarantine():
    clear_quarantine()
    yield
    clear_quarantine()


@pytest.fixture
def chaos(monkeypatch):
    """Inject a failure for one benchmark via the worker chaos hook."""

    def arm(action, benchmark):
        monkeypatch.setenv("REPRO_CHAOS_EXEC", f"{action}:{benchmark}")

    monkeypatch.delenv("REPRO_CHAOS_EXEC", raising=False)
    return arm


FAST = RetryPolicy(retries=1, backoff=0.01, backoff_cap=0.02)


class TestChecksummedCache:
    def test_bit_flip_is_evicted_and_counted(self, tmp_path):
        cache = DiskCache(root=tmp_path)
        token = "ab" * 32
        cache.put(token, {"x": 1})
        path = cache._path(token)
        data = bytearray(path.read_bytes())
        data[-1] ^= 0xFF
        path.write_bytes(bytes(data))
        assert cache.get(token) is MISS
        assert cache.corrupt_evictions == 1
        assert not path.exists()

    def test_truncated_entry_is_evicted(self, tmp_path):
        cache = DiskCache(root=tmp_path)
        token = "cd" * 32
        cache.put(token, list(range(100)))
        path = cache._path(token)
        path.write_bytes(path.read_bytes()[:20])
        assert cache.get(token) is MISS
        assert cache.corrupt_evictions == 1

    def test_legacy_unchecksummed_entry_is_evicted(self, tmp_path):
        import pickle

        cache = DiskCache(root=tmp_path)
        token = "ef" * 32
        path = cache._path(token)
        path.parent.mkdir(parents=True)
        path.write_bytes(pickle.dumps({"old": "format"}))
        assert cache.get(token) is MISS
        assert cache.corrupt_evictions == 1

    def test_good_entry_round_trips_with_zero_evictions(self, tmp_path):
        cache = DiskCache(root=tmp_path)
        cache.put("11" * 32, (1, 2.5, "x"))
        assert cache.get("11" * 32) == (1, 2.5, "x")
        assert cache.corrupt_evictions == 0

    def test_concurrently_deleted_directory_is_recreated(self, tmp_path):
        cache = DiskCache(root=tmp_path)
        cache.put("22" * 32, 1)
        shutil.rmtree(tmp_path)  # another process cleared the whole cache
        cache.put("33" * 32, 2)
        assert not cache._disabled
        assert cache.get("33" * 32) == 2

    def test_stats_line_reports_corrupt_evictions(self, tmp_path):
        cache = DiskCache(root=tmp_path)
        line = cache.stats_line()
        assert "0 misses" in line  # grepped by CI's warm-run check
        assert "corrupt" in line


class TestKeepGoing:
    def test_failure_recorded_and_quarantined(self, chaos):
        chaos("fail", "FIB")
        cells = [
            timed_cell("FIB", "arm64", 2, noise=False),
            timed_cell("PRIMES", "arm64", 2, noise=False),
        ]
        policy = RetryPolicy(retries=1, backoff=0.01, keep_going=True)
        results = execute_cells(cells, jobs=1, memo={}, disk=None, policy=policy)
        failure = results[cells[0]]
        assert isinstance(failure, CellFailure)
        assert "chaos" in failure.error
        assert failure.attempts == 2  # initial try + one retry
        assert results[cells[1]].valid  # innocent cell computed normally
        assert cells[0] in quarantined_cells()

    def test_quarantined_cell_skipped_on_next_batch(self, chaos, monkeypatch):
        chaos("fail", "FIB")
        cell = timed_cell("FIB", "arm64", 2, noise=False)
        policy = RetryPolicy(retries=0, keep_going=True)
        execute_cells([cell], jobs=1, memo={}, disk=None, policy=policy)

        import repro.exec.scheduler as sched

        def explode(_cell):
            raise AssertionError("quarantined cell was recomputed")

        monkeypatch.setattr(sched, "compute_cell", explode)
        again = execute_cells([cell], jobs=1, memo={}, disk=None, policy=policy)
        assert isinstance(again[cell], CellFailure)

    def test_without_keep_going_the_original_exception_propagates(self, chaos):
        chaos("fail", "FIB")
        cell = timed_cell("FIB", "arm64", 2, noise=False)
        with pytest.raises(RuntimeError, match="chaos"):
            execute_cells([cell], jobs=1, memo={}, disk=None, policy=FAST)

    def test_failures_are_not_written_to_disk_cache(self, chaos, tmp_path):
        chaos("fail", "FIB")
        cell = timed_cell("FIB", "arm64", 2, noise=False)
        disk = DiskCache(root=tmp_path)
        policy = RetryPolicy(retries=0, keep_going=True)
        execute_cells([cell], jobs=1, memo={}, disk=disk, policy=policy)
        assert disk.stores == 0
        assert disk.get(cell.token()) is MISS


@pytest.mark.slow
class TestWorkerDeath:
    def test_killed_worker_is_quarantined_and_innocents_complete(self, chaos):
        chaos("crash", "FIB")  # worker os._exit(17)s mid-grid
        cells = [
            timed_cell("FIB", "arm64", 2, noise=False),
            timed_cell("PRIMES", "arm64", 2, noise=False),
            timed_cell("BITS", "arm64", 2, noise=False),
        ]
        policy = RetryPolicy(retries=1, backoff=0.01, keep_going=True)
        results = execute_cells(cells, jobs=2, memo={}, disk=None, policy=policy)
        assert isinstance(results[cells[0]], CellFailure)
        assert "crashed" in results[cells[0]].error
        assert results[cells[1]].valid
        assert results[cells[2]].valid
        assert quarantined_cells() == [cells[0]]

    def test_hung_worker_is_killed_after_timeout(self, chaos):
        chaos("hang", "FIB")
        cells = [
            timed_cell("FIB", "arm64", 2, noise=False),
            timed_cell("PRIMES", "arm64", 2, noise=False),
        ]
        policy = RetryPolicy(timeout=3.0, retries=0, keep_going=True)
        results = execute_cells(cells, jobs=2, memo={}, disk=None, policy=policy)
        assert isinstance(results[cells[0]], CellFailure)
        assert results[cells[1]].valid

    def test_crash_without_keep_going_raises_grid_error(self, chaos):
        chaos("crash", "FIB")
        cell = timed_cell("FIB", "arm64", 2, noise=False)
        other = timed_cell("PRIMES", "arm64", 2, noise=False)
        with pytest.raises(GridError):
            execute_cells([cell, other], jobs=2, memo={}, disk=None, policy=FAST)
