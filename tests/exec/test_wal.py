"""Sweep WAL: append-only journal, torn tails, streaming store, resume."""

import json

from repro.exec import RunCell, SweepWAL, execute_cells, set_active_wal, sweep_id
from repro.exec.cache import DiskCache


def make_cell(benchmark="FIB", rep=0, iterations=4):
    return RunCell(
        kind="timed", benchmark=benchmark, target="arm64",
        iterations=iterations, rep=rep,
    )


class TestSweepId:
    def test_stable_for_same_parts(self):
        assert sweep_id(["fig07", "smoke"]) == sweep_id(["fig07", "smoke"])

    def test_order_sensitive(self):
        assert sweep_id(["a", "b"]) != sweep_id(["b", "a"])

    def test_parts_are_delimited(self):
        assert sweep_id(["ab", "c"]) != sweep_id(["a", "bc"])


class TestJournal:
    def test_append_and_read_back(self, tmp_path):
        wal = SweepWAL("deadbeef", root=tmp_path)
        wal.append("t1")
        wal.append("t2")
        wal.close()
        assert SweepWAL("deadbeef", root=tmp_path).completed() == {"t1", "t2"}

    def test_append_is_idempotent(self, tmp_path):
        wal = SweepWAL("deadbeef", root=tmp_path)
        wal.append("t1")
        wal.append("t1")
        wal.close()
        assert wal.path.read_text().count("t1") == 1

    def test_torn_tail_is_tolerated(self, tmp_path):
        wal = SweepWAL("deadbeef", root=tmp_path)
        wal.append("t1")
        wal.close()
        # Simulate a crash mid-append: a torn, unparseable final line.
        with open(wal.path, "a") as handle:
            handle.write('{"token": "t2')
        survivor = SweepWAL("deadbeef", root=tmp_path)
        assert survivor.completed() == {"t1"}
        survivor.append("t3")  # journal keeps working after the torn line
        survivor.close()
        assert SweepWAL("deadbeef", root=tmp_path).completed() >= {"t1", "t3"}

    def test_missing_journal_reads_empty(self, tmp_path):
        assert SweepWAL("cafecafe", root=tmp_path).completed() == set()

    def test_discard_removes_the_file(self, tmp_path):
        wal = SweepWAL("deadbeef", root=tmp_path)
        wal.append("t1")
        assert wal.path.exists()
        wal.discard()
        assert not wal.path.exists()

    def test_lines_are_json_records(self, tmp_path):
        wal = SweepWAL("deadbeef", root=tmp_path)
        wal.append("tok")
        wal.close()
        lines = wal.path.read_text().splitlines()
        assert json.loads(lines[0])["token"] == "tok"


class TestStreamingStore:
    def test_completed_cells_are_journaled_and_cached(self, tmp_path, monkeypatch):
        """Results stream to the disk cache and the journal as they finish
        — the kill-safety contract: any journaled token is also cached."""
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
        from repro.exec import scheduler
        monkeypatch.setattr(scheduler, "_DISK", None)  # fresh cache handle

        wal = SweepWAL("beefbeef", root=tmp_path)
        previous = set_active_wal(wal)
        try:
            cells = [make_cell(rep=rep) for rep in range(3)]
            results = execute_cells(cells)
        finally:
            set_active_wal(previous)
            wal.close()
        assert len(results) == 3
        journaled = SweepWAL("beefbeef", root=tmp_path).completed()
        assert journaled == {cell.token() for cell in cells}
        cache = DiskCache(root=tmp_path / "cache")
        for token in journaled:
            from repro.exec.cache import MISS
            assert cache.get(token) is not MISS

    def test_no_wal_is_fine(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
        assert set_active_wal(None) is None
        assert len(execute_cells([make_cell(rep=9)])) == 1
