"""Experiment-driver smoke tests: every figure regenerates at smoke scale
and exhibits the paper's qualitative shape."""

import pytest

from repro.experiments import (
    EXPERIMENTS,
    builtin_time,
    fig01_check_density,
    fig03_annotated_asm,
    fig04_breakdown,
    fig06_iteration_profile,
    fig07_speedups,
    fig08_categories,
    fig09_correlation,
    fig10_branch_cost,
    fig13_isa_speedup,
    fig14_distributions,
    leftover,
)
from repro.experiments.common import SCALES, ExperimentResult

pytestmark = pytest.mark.slow

SCALE = "smoke"


class TestRegistry:
    def test_all_figures_registered(self):
        for key in (
            "fig01", "fig03", "fig04", "fig06", "fig07", "fig08", "fig09",
            "fig10", "fig13", "fig14", "leftover", "builtins", "typeflow",
        ):
            assert key in EXPERIMENTS

    def test_scales_defined(self):
        assert {"smoke", "default", "full"} <= set(SCALES)


class TestFig01:
    def test_density_in_plausible_band(self):
        result = fig01_check_density.run(scale=SCALE)
        assert result.rows
        for row in result.rows:
            for key, value in row.items():
                if key.endswith("checks/100") and value:
                    assert 0 < value < 40


class TestTypeflow:
    def test_residual_density_never_exceeds_static(self):
        result = EXPERIMENTS["typeflow"](scale=SCALE)
        assert result.rows
        for row in result.rows:
            for target in ("arm64", "x64"):
                assert row[f"{target} residual"] <= row[f"{target} static"]
                assert 0.0 <= row[f"{target} dyn elided %"] <= 100.0


class TestFig03:
    def test_listing_has_samples_and_checks(self):
        result = fig03_annotated_asm.run(scale=SCALE)
        text = result.to_text()
        assert "check" in text


class TestFig04:
    def test_tables_and_group_shares(self):
        tables = fig04_breakdown.run(scale=SCALE)
        frequency, overhead = tables["frequency"], tables["overhead"]
        assert frequency.rows and overhead.rows
        for row in overhead.rows:
            assert 0 <= row["total %"] < 100


class TestFig06:
    def test_removal_speeds_up_on_average(self):
        result = fig06_iteration_profile.run(scale=SCALE)
        diffs = [row["time diff %"] for row in result.rows]
        assert sum(diffs) / len(diffs) > 0

    def test_warmup_speedup_visible(self):
        result = fig06_iteration_profile.run(scale=SCALE)
        speedups = [row["steady speedup vs iter0"] for row in result.rows]
        assert max(speedups) > 1.5


class TestFig07Fig08Fig09:
    def test_speedups_and_aggregates(self):
        fig07 = fig07_speedups.run(scale=SCALE)
        assert fig07.rows
        for row in fig07.rows:
            assert row["removal speedup"] > 0.8
        fig08 = fig08_categories.run(scale=SCALE)
        assert fig08.rows
        fig09 = fig09_correlation.run(scale=SCALE)
        for row in fig09.rows:
            assert row["r"] > 0  # positive correlation of the two estimators


class TestFig10:
    def test_branch_suppression_reduces_branches_most(self):
        result = fig10_branch_cost.run(scale=SCALE)
        branch_deltas = [row["d branches %"] for row in result.rows]
        cycle_deltas = [row["d cycles %"] for row in result.rows]
        mean = lambda xs: sum(xs) / len(xs)  # noqa: E731
        assert mean(branch_deltas) < -5  # branches drop substantially
        # ... but cycles drop far less (paper: -20 % branches, -1-2 % cycles)
        assert abs(mean(cycle_deltas)) < abs(mean(branch_deltas))


class TestFig13Fig14:
    def test_extension_helps_on_average(self):
        result = fig13_isa_speedup.run(scale=SCALE)
        reductions = [row["time reduction %"] for row in result.rows]
        assert sum(reductions) / len(reductions) > 0
        instr = [row["instr reduction %"] for row in result.rows]
        assert sum(instr) / len(instr) > 0

    def test_distributions_table_renders(self):
        result = fig14_distributions.run(scale=SCALE)
        assert result.rows
        isas = {row["isa"] for row in result.rows}
        assert isas == {"default", "smi-ext"}


class TestTextReports:
    def test_leftover_report(self):
        result = leftover.run(scale=SCALE)
        assert isinstance(result, ExperimentResult)
        assert result.notes

    def test_builtin_share_report(self):
        result = builtin_time.run(scale=SCALE)
        shares = [row["builtin %"] for row in result.rows]
        assert all(0 <= s <= 100 for s in shares)

    def test_to_text_renders_all(self):
        result = fig01_check_density.run(scale=SCALE)
        text = result.to_text()
        assert "Fig. 1" in text and "-" * 10 in text
