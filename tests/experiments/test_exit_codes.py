"""Exit-code contract of python -m repro.experiments (README "Hardening").

0 = clean figures, 1 = grid failure, 2 = usage error, 3 = partial
figures under --keep-going, 130 = interrupted.  The 0-vs-3 split is the
one scripts key off, so it gets an end-to-end assertion here.
"""

import pytest

from repro.exec import RetryPolicy, clear_quarantine, execute_cells, timed_cell
from repro.experiments import EXPERIMENTS
from repro.experiments.__main__ import (
    EXIT_FAILURE,
    EXIT_INTERRUPTED,
    EXIT_PARTIAL,
    main,
)


@pytest.fixture(autouse=True)
def _clean(monkeypatch):
    clear_quarantine()
    monkeypatch.delenv("REPRO_CHAOS_EXEC", raising=False)
    yield
    clear_quarantine()


class _StubFigure:
    def to_text(self):
        return "stub figure"


def _stub_experiment(scale="default"):
    execute_cells(
        [timed_cell("FIB", "arm64", 2, noise=False)],
        jobs=1, memo={}, disk=None,
        policy=RetryPolicy(retries=0, backoff=0.01, keep_going=True),
    )
    return _StubFigure()


def test_clean_run_exits_zero(monkeypatch, capsys):
    monkeypatch.setitem(EXPERIMENTS, "figstub", _stub_experiment)
    assert main(["figstub", "--scale", "smoke", "--no-cache"]) == 0
    out = capsys.readouterr().out
    assert "stub figure" in out
    assert "quarantined" not in out


def test_keep_going_with_quarantined_cells_exits_three(monkeypatch, capsys):
    monkeypatch.setitem(EXPERIMENTS, "figstub", _stub_experiment)
    monkeypatch.setenv("REPRO_CHAOS_EXEC", "fail:FIB")
    code = main(["figstub", "--scale", "smoke", "--no-cache", "--keep-going"])
    assert code == EXIT_PARTIAL == 3
    out = capsys.readouterr().out
    assert "quarantined cells (1):" in out


def test_grid_failure_without_keep_going_exits_one(monkeypatch, capsys):
    from repro.exec import GridError

    def exhausted(scale="default"):
        raise GridError("cell exhausted retries")

    monkeypatch.setitem(EXPERIMENTS, "figstub", exhausted)
    code = main(["figstub", "--scale", "smoke", "--no-cache"])
    assert code == EXIT_FAILURE == 1
    assert "grid failure" in capsys.readouterr().err


def test_interrupt_exits_130(monkeypatch, capsys):
    def interrupted(scale="default"):
        raise KeyboardInterrupt

    monkeypatch.setitem(EXPERIMENTS, "figstub", interrupted)
    code = main(["figstub", "--scale", "smoke", "--no-cache"])
    assert code == EXIT_INTERRUPTED == 130
    assert "--resume" in capsys.readouterr().err


def test_resume_without_cache_is_a_usage_error(monkeypatch, capsys):
    monkeypatch.setitem(EXPERIMENTS, "figstub", _stub_experiment)
    assert main(["figstub", "--no-cache", "--resume"]) == 2
    assert "--resume requires" in capsys.readouterr().err


def test_out_dir_gets_atomic_figure_file(monkeypatch, tmp_path, capsys):
    monkeypatch.setitem(EXPERIMENTS, "figstub", _stub_experiment)
    out_dir = tmp_path / "figs"
    assert main([
        "figstub", "--scale", "smoke", "--no-cache", "--out", str(out_dir),
    ]) == 0
    written = out_dir / "figstub-smoke.txt"
    assert written.read_text() == "stub figure\n\n"
    assert list(out_dir.glob("*.tmp")) == []
