"""Fuzz fleet CLI: determinism across --jobs, graduation, exit codes."""

from __future__ import annotations

import pytest

from repro.fuzz.cli import fuzz_main

ARGS = ["--seed", "1", "--count", "3", "--targets", "arm64"]


@pytest.fixture(autouse=True)
def _isolated(monkeypatch, tmp_path):
    monkeypatch.setenv("REPRO_CORPUS_DIR", str(tmp_path / "corpus"))
    monkeypatch.delenv("REPRO_CHAOS_FUZZ", raising=False)


def test_clean_fleet_exits_zero(capsys):
    assert fuzz_main(ARGS) == 0
    out = capsys.readouterr().out
    assert "3/3 programs matched across the ladder" in out


def test_report_is_identical_across_jobs(capsys):
    assert fuzz_main(ARGS + ["--jobs", "1"]) == 0
    serial = capsys.readouterr().out
    assert fuzz_main(ARGS + ["--jobs", "2"]) == 0
    parallel = capsys.readouterr().out
    assert serial.replace("jobs=1", "jobs=2") == parallel


def test_dispatched_via_resilience_cli(capsys):
    from repro.resilience.__main__ import main

    assert main(["fuzz"] + ARGS) == 0
    assert "fuzz fleet" in capsys.readouterr().out


def test_graduation_persists_entries(tmp_path, capsys):
    corpus = tmp_path / "grads"
    code = fuzz_main(
        ["--seed", "1", "--count", "8", "--targets", "arm64",
         "--graduate", "2", "--corpus-dir", str(corpus)]
    )
    assert code == 0
    entries = sorted(corpus.glob("*.json"))
    assert 1 <= len(entries) <= 2
    assert "graduated into" in capsys.readouterr().out


def test_seeded_divergence_exits_one(monkeypatch, capsys):
    monkeypatch.setenv("REPRO_CHAOS_FUZZ", "flip:lbbv")
    assert fuzz_main(["--seed", "1", "--count", "1", "--targets", "arm64"]) == 1
    out = capsys.readouterr().out
    assert "DIVERGE" in out
    assert "bundle:" in out
