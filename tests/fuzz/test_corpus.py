"""Corpus graduation, persistence, and grid/CLI addressing."""

from __future__ import annotations

import pytest

from repro.fuzz.corpus import (
    CorpusEntry,
    corpus_benchmark,
    entry_for,
    graduation_reasons,
    load_corpus,
    profile_score,
    save_entry,
    should_graduate,
)
from repro.fuzz.generator import fuzz_case_seed, generate_program
from repro.fuzz.oracle import run_fuzz_program


@pytest.fixture(autouse=True)
def _corpus_tmp(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CORPUS_DIR", str(tmp_path / "corpus"))
    monkeypatch.delenv("REPRO_CHAOS_FUZZ", raising=False)


def _verdict():
    program = generate_program(fuzz_case_seed(1, 0))
    return run_fuzz_program(program, targets=("arm64",), capture=False)


class TestGraduation:
    def test_empty_profile_does_not_graduate(self):
        assert graduation_reasons({}) == []
        assert not should_graduate({})

    def test_two_criteria_graduate(self):
        profile = {"eager_deopts": 9, "guard_failures": 2}
        assert set(graduation_reasons(profile)) == {
            "eager_deopts", "guard_failures",
        }
        assert should_graduate(profile)

    def test_one_criterion_is_not_enough(self):
        assert not should_graduate({"eager_deopts": 100})

    def test_score_orders_by_interest(self):
        hot = {"eager_deopts": 20, "guard_failures": 3, "check_density": 40.0}
        mild = {"eager_deopts": 8, "guard_failures": 1}
        assert profile_score(hot) > profile_score(mild)


class TestPersistence:
    def test_entry_roundtrip(self, tmp_path):
        verdict = _verdict()
        assert verdict.ok
        entry = entry_for(verdict)
        path = save_entry(entry)
        assert path.name == f"{entry.name}.json"
        loaded = load_corpus()
        assert loaded == [entry]
        assert isinstance(loaded[0], CorpusEntry)

    def test_corpus_benchmark_resolves(self):
        entry = entry_for(_verdict())
        save_entry(entry)
        spec = corpus_benchmark(entry.name)
        assert spec is not None
        assert spec.name == entry.name
        assert spec.source == entry.source
        assert corpus_benchmark("FZ-ffffffff") is None

    def test_missing_corpus_dir_is_empty(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_CORPUS_DIR", str(tmp_path / "nowhere"))
        assert load_corpus() == []

    def test_save_overwrites_same_seed(self):
        entry = entry_for(_verdict())
        save_entry(entry)
        save_entry(entry)
        assert len(load_corpus()) == 1


class TestResolution:
    def test_resilience_oracle_resolves_corpus_names(self):
        from repro.resilience.oracle import resolve_benchmark

        entry = entry_for(_verdict())
        save_entry(entry)
        spec = resolve_benchmark(entry.name)
        assert spec.source == entry.source
        with pytest.raises(KeyError):
            resolve_benchmark("FZ-ffffffff")

    def test_suite_names_still_win(self):
        from repro.resilience.oracle import resolve_benchmark

        assert resolve_benchmark("FIB").name == "FIB"

    def test_grid_corpus_cell(self):
        from repro.exec.cells import CORPUS, compute_cell, corpus_cell

        entry = entry_for(_verdict())
        save_entry(entry)
        cell = corpus_cell(entry.name, "arm64")
        assert cell.kind == CORPUS
        assert cell.extra == entry.source_sha256[:16]
        assert "cell-v2" in cell.key()
        outcome = compute_cell(cell)
        assert outcome.ok, outcome.mismatches

    def test_corpus_cell_key_tracks_source(self):
        import dataclasses

        from repro.exec.cells import corpus_cell

        entry = entry_for(_verdict())
        save_entry(entry)
        first = corpus_cell(entry.name, "arm64")
        changed = dataclasses.replace(
            entry,
            source=entry.source + "\n",
            source_sha256="f" * 64,
        )
        save_entry(changed)
        second = corpus_cell(entry.name, "arm64")
        assert first.key() != second.key()
        assert first.token() != second.token()
