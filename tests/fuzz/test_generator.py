"""Generator determinism and safety contract."""

from __future__ import annotations

import subprocess
import sys
import zlib
from pathlib import Path

import pytest

from repro.fuzz.generator import (
    GENERATOR_VERSION,
    FuzzConfig,
    FuzzProgram,
    fuzz_case_seed,
    generate_program,
    program_name,
)
from repro.lang import parse, unparse

SRC = str(Path(__file__).resolve().parents[2] / "src")


class TestSeedScheme:
    def test_case_seed_is_crc32_of_versioned_key(self):
        expected = zlib.crc32(
            f"repro-fuzz:{GENERATOR_VERSION}:1:0".encode("utf-8")
        )
        assert fuzz_case_seed(1, 0) == expected

    def test_case_seeds_differ_per_index(self):
        seeds = {fuzz_case_seed(1, i) for i in range(50)}
        assert len(seeds) == 50

    def test_name_embeds_seed(self):
        assert program_name(0x1234) == "FZ-00001234"
        program = generate_program(fuzz_case_seed(1, 0))
        assert program.name == program_name(program.seed)


class TestDeterminism:
    def test_same_seed_same_program(self):
        seed = fuzz_case_seed(7, 3)
        first = generate_program(seed)
        second = generate_program(seed)
        assert first.source == second.source
        assert first.idioms == second.idioms
        assert first.source_crc == second.source_crc

    def test_different_seeds_differ(self):
        sources = {
            generate_program(fuzz_case_seed(7, i)).source for i in range(8)
        }
        assert len(sources) > 1

    def test_byte_identical_across_hash_seeds(self):
        """PYTHONHASHSEED must not leak into generated programs."""
        snippet = (
            "from repro.fuzz.generator import generate_program, fuzz_case_seed\n"
            "import zlib\n"
            "blob = ''.join(generate_program(fuzz_case_seed(5, i)).source"
            " for i in range(4))\n"
            "print(zlib.crc32(blob.encode()))\n"
        )
        crcs = set()
        for hash_seed in ("0", "424242"):
            out = subprocess.run(
                [sys.executable, "-c", snippet],
                capture_output=True, text=True, check=True,
                env={"PYTHONPATH": SRC, "PYTHONHASHSEED": hash_seed,
                     "PATH": "/usr/bin:/bin"},
            )
            crcs.add(out.stdout.strip())
        assert len(crcs) == 1


class TestGeneratedPrograms:
    @pytest.mark.parametrize("index", range(6))
    def test_parses_and_is_canonical(self, index):
        program = generate_program(fuzz_case_seed(11, index))
        tree = parse(program.source)
        assert unparse(tree) == unparse(parse(unparse(tree)))

    @pytest.mark.parametrize("index", range(4))
    def test_baseline_interpreter_run_is_clean(self, index):
        """By construction no generated program may crash the engine.

        Per-iteration *results* may legitimately differ (the mutation
        idioms fire mid-run); the safety contract is that the pure
        interpreter completes every iteration without raising.
        """
        from repro.engine import EngineConfig
        from repro.fuzz.oracle import fuzz_spec
        from repro.suite.runner import BenchmarkRunner, NoiseModel

        program = generate_program(fuzz_case_seed(13, index))
        runner = BenchmarkRunner(
            fuzz_spec(program),
            EngineConfig(enable_optimizer=False),
            NoiseModel(enabled=False),
        )
        result = runner.run(iterations=3)
        assert result.iterations == 3
        assert isinstance(result.result, (int, float))

    def test_idioms_recorded(self):
        seen = set()
        for index in range(12):
            seen.update(generate_program(fuzz_case_seed(17, index)).idioms)
        # the bias knobs guarantee the core idioms appear across a batch
        assert "poly_call" in seen or "shape_mutation" in seen
        assert any("phi" in name or "smi" in name for name in seen)


class TestConfig:
    def test_roundtrip(self):
        config = FuzzConfig(p_poly_call=0.5, max_helpers=1)
        assert FuzzConfig.from_dict(config.to_dict()) == config

    def test_program_is_frozen_value(self):
        program = generate_program(fuzz_case_seed(1, 0))
        assert isinstance(program, FuzzProgram)
        with pytest.raises(Exception):
            program.seed = 0  # type: ignore[misc]
