"""AST minimizer: shrinks under a predicate, never regresses it."""

from __future__ import annotations

from repro.fuzz.minimize import MinimizeResult, minimize_source
from repro.lang import parse, unparse

PROGRAM = """
function setup() { return 0; }
function helper(x) { return x * 2; }
function run() {
  var acc = 0;
  var junk = 111;
  for (var i = 0; i < 32; i = i + 1) {
    acc = acc + helper(i);
    junk = junk + 1;
  }
  acc = acc + MARKER_CALL(acc);
  junk = junk * 3;
  return acc;
}
"""


def _keeps_marker(source: str) -> bool:
    """Stand-in interestingness: the marker call must survive and the
    program must still parse (minimize candidates always do)."""
    return "MARKER_CALL" in source


class TestShrinking:
    def test_deletes_irrelevant_statements(self):
        result = minimize_source(PROGRAM, _keeps_marker)
        assert result.improved
        assert "MARKER_CALL" in result.source
        assert "junk" not in result.source
        assert len(result.source.splitlines()) < len(PROGRAM.splitlines())

    def test_shrinks_integer_literals(self):
        result = minimize_source(PROGRAM, _keeps_marker)
        assert "32" not in result.source
        assert "111" not in result.source

    def test_output_is_canonical(self):
        result = minimize_source(PROGRAM, _keeps_marker)
        assert result.source == unparse(parse(result.source))

    def test_deterministic(self):
        first = minimize_source(PROGRAM, _keeps_marker)
        second = minimize_source(PROGRAM, _keeps_marker)
        assert first.source == second.source
        assert first.attempts == second.attempts


class TestContracts:
    def test_uninteresting_input_returned_unchanged(self):
        result = minimize_source(PROGRAM, lambda source: False)
        assert isinstance(result, MinimizeResult)
        assert result.source == PROGRAM
        assert not result.improved

    def test_never_returns_uninteresting(self):
        result = minimize_source(PROGRAM, _keeps_marker)
        assert _keeps_marker(result.source)

    def test_respects_attempt_budget(self):
        calls = []

        def counting(source: str) -> bool:
            calls.append(1)
            return "MARKER_CALL" in source

        result = minimize_source(PROGRAM, counting, max_attempts=5)
        # one free call for the input check, then at most 5 candidates
        assert result.attempts <= 5
        assert len(calls) <= 6

    def test_function_bodies_stay_nonempty(self):
        source = "function run() { return MARKER_CALL(1); }"
        result = minimize_source(source, _keeps_marker)
        assert "function run()" in result.source
        assert "MARKER_CALL" in result.source
