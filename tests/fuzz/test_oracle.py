"""N-way fuzz oracle: clean verdicts, seeded tamper, bundle capture."""

from __future__ import annotations

import pytest

from repro.fuzz.generator import fuzz_case_seed, generate_program
from repro.fuzz.oracle import (
    TAMPER_MARKER,
    FuzzVerdict,
    parse_tamper,
    run_fuzz_program,
    source_digest,
)
from repro.resilience.oracle import EXECUTOR_LADDER


@pytest.fixture
def program():
    return generate_program(fuzz_case_seed(1, 0))


class TestParseTamper:
    def test_absent_is_none(self, monkeypatch):
        monkeypatch.delenv("REPRO_CHAOS_FUZZ", raising=False)
        assert parse_tamper() is None
        assert parse_tamper("") is None

    def test_flip_names_a_tier(self):
        assert parse_tamper("flip:typed") == "typed"

    def test_garbage_rejected(self):
        with pytest.raises(ValueError):
            parse_tamper("corrupt:typed")


class TestCleanVerdict:
    def test_full_ladder_agrees(self, program, monkeypatch):
        monkeypatch.delenv("REPRO_CHAOS_FUZZ", raising=False)
        verdict = run_fuzz_program(program, targets=("arm64",))
        assert isinstance(verdict, FuzzVerdict)
        assert verdict.ok
        assert verdict.mismatches == []
        matrix = verdict.matrices["arm64"]
        assert set(matrix.tiers) == {tier.name for tier in EXECUTOR_LADDER}
        assert all(outcome.ok for outcome in matrix.tiers.values())

    def test_profile_collected_on_pass(self, program, monkeypatch):
        monkeypatch.delenv("REPRO_CHAOS_FUZZ", raising=False)
        verdict = run_fuzz_program(program, targets=("arm64",))
        for key in (
            "check_density", "eager_deopts", "guard_failures",
            "versions_registered", "continuation_dispatches",
        ):
            assert key in verdict.profile


class TestSeededTamper:
    def test_flip_diverges_and_captures_bundle(self, program, monkeypatch,
                                               tmp_path):
        from repro.supervise.bundles import load_bundle

        monkeypatch.setenv("REPRO_CHAOS_FUZZ", "flip:typed")
        verdict = run_fuzz_program(program, targets=("arm64",))
        assert not verdict.ok
        assert any("[typed]" in line for line in verdict.mismatches)
        assert verdict.profile == {}  # no profile for diverging programs
        assert len(verdict.bundle_paths) == 1
        record = load_bundle(verdict.bundle_paths[0])
        assert record["kind"] == "fuzz-divergence"
        assert record["generator_seed"] == program.seed
        assert record["source"] == program.source
        assert record["source_sha256"] == source_digest(program.source)
        assert record["env"].get("REPRO_CHAOS_FUZZ") == "flip:typed"
        assert not record["tiers"]["typed"]["ok"]
        assert record["tiers"]["interp"]["ok"]

    def test_tamper_marker_is_unmistakable(self, program, monkeypatch):
        monkeypatch.setenv("REPRO_CHAOS_FUZZ", "flip:trace")
        verdict = run_fuzz_program(
            program, targets=("arm64",), capture=False
        )
        assert not verdict.ok
        assert any(str(TAMPER_MARKER) in line for line in verdict.mismatches)

    def test_capture_false_skips_bundles(self, program, monkeypatch):
        monkeypatch.setenv("REPRO_CHAOS_FUZZ", "flip:lbbv")
        verdict = run_fuzz_program(program, targets=("arm64",), capture=False)
        assert not verdict.ok
        assert verdict.bundle_paths == []
