"""Differential testing: JIT vs interpreter on generated programs.

The interpreter is the semantics reference; optimized code (on every
target, with tiering, deopts and re-opts in play) must agree with it.
Programs are generated from a small expression grammar that stays inside
the supported subset while exercising the speculation lattice (SMI /
double / string operands, comparisons, conditionals, loops, arrays).
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine import Engine, EngineConfig


def results_agree(source, call, args_list, target="arm64"):
    reference = Engine(EngineConfig(enable_optimizer=False))
    reference.load(source)
    expected = [reference.call_global(call, *args) for args in args_list]

    engine = Engine(EngineConfig(target=target, tierup_invocations=3))
    engine.load(source)
    for round_number in range(12):
        for args, want in zip(args_list, expected):
            got = engine.call_global(call, *args)
            if isinstance(want, float) and want != want:  # NaN
                assert got != got, (source, args, got, want)
            else:
                assert got == want, (source, args, got, want, round_number)
    return engine


# -- expression generator -----------------------------------------------------

_INT = st.integers(min_value=-100, max_value=100)
_NUM = st.one_of(_INT, st.floats(min_value=-50, max_value=50, allow_nan=False))


def _literal(value):
    if isinstance(value, float):
        return repr(value)
    return str(value)


@st.composite
def arith_expr(draw, depth=0):
    if depth >= 3 or draw(st.booleans()):
        choice = draw(st.integers(0, 2))
        if choice == 0:
            return _literal(draw(_NUM))
        if choice == 1:
            return "a"
        return "b"
    op = draw(st.sampled_from(["+", "-", "*", "&", "|", "^", ">>", "<<"]))
    lhs = draw(arith_expr(depth=depth + 1))
    rhs = draw(arith_expr(depth=depth + 1))
    return f"({lhs} {op} {rhs})"


class TestArithmeticDifferential:
    @given(expr=arith_expr(), a=_NUM, b=_NUM)
    @settings(max_examples=25, deadline=None)
    def test_expression_matches_interpreter(self, expr, a, b):
        source = f"function f(a, b) {{ return {expr}; }}"
        results_agree(source, "f", [(a, b)])

    @given(a=_INT, b=_INT)
    @settings(max_examples=15, deadline=None)
    def test_mixed_smi_then_double_arguments(self, a, b):
        # Warm on SMIs, then hit with doubles: exercises deopt + reopt.
        source = "function f(a, b) { return a * b + a - b; }"
        results_agree(source, "f", [(a, b), (a + 0.5, b), (a, b * 1.5)])


class TestControlFlowDifferential:
    @given(
        bound=st.integers(min_value=0, max_value=40),
        step=st.integers(min_value=1, max_value=3),
    )
    @settings(max_examples=15, deadline=None)
    def test_loops(self, bound, step):
        source = f"""
        function f(n) {{
          var s = 0;
          for (var i = 0; i < n; i = i + {step}) {{
            if (i % 2 == 0) {{ s = s + i; }} else {{ s = s - 1; }}
          }}
          return s;
        }}
        """
        results_agree(source, "f", [(bound,)])

    @given(values=st.lists(_INT, min_size=1, max_size=12))
    @settings(max_examples=15, deadline=None)
    def test_array_sum(self, values):
        literal = ", ".join(str(v) for v in values)
        source = f"""
        var data = [{literal}];
        function f() {{
          var s = 0;
          for (var i = 0; i < data.length; i++) {{ s = s + data[i]; }}
          return s;
        }}
        """
        results_agree(source, "f", [()])

    @given(values=st.lists(st.floats(min_value=-10, max_value=10, allow_nan=False), min_size=1, max_size=8))
    @settings(max_examples=10, deadline=None)
    def test_double_array_product_sum(self, values):
        literal = ", ".join(repr(v) for v in values)
        source = f"""
        var data = [{literal}];
        function f() {{
          var s = 0.0;
          for (var i = 0; i < data.length; i++) {{ s = s + data[i] * 0.5; }}
          return s;
        }}
        """
        results_agree(source, "f", [()])


class TestAllTargetsDifferential:
    SOURCES = [
        ("function f(a, b) { return (a + b) * (a - b); }", [(3, 4), (10, 2)]),
        (
            """
            var a = [2, 4, 6, 8];
            function f(i) { return a[i] + a[3 - i]; }
            """,
            [(0,), (1,), (2,)],
        ),
        (
            """
            function Point(x, y) { this.x = x; this.y = y; }
            function f(x, y) { var p = new Point(x, y); return p.x * 100 + p.y; }
            """,
            [(1, 2), (9, 9)],
        ),
        (
            "function f(s) { return s + '!' + s.length; }",
            [("ab",), ("xyz",)],
        ),
    ]

    @pytest.mark.parametrize("target", ["x64", "arm64", "arm64+smi"])
    @pytest.mark.parametrize("case", range(len(SOURCES)))
    def test_target_agreement(self, target, case):
        source, args_list = self.SOURCES[case]
        results_agree(source, "f", args_list, target=target)


class TestCheckRemovalDifferential:
    def test_removal_preserves_results_on_stable_program(self):
        from repro.jit.checks import CheckKind

        source = """
        var a = [3, 1, 4, 1, 5, 9, 2, 6];
        function f(n) {
          var best = 0;
          for (var i = 0; i < n; i++) {
            if (a[i] > best) { best = a[i]; }
          }
          return best;
        }
        """
        reference = Engine(EngineConfig(enable_optimizer=False))
        reference.load(source)
        expected = reference.call_global("f", 8)
        engine = Engine(
            EngineConfig(target="arm64", removed_checks=frozenset(CheckKind))
        )
        engine.load(source)
        for _ in range(40):
            assert engine.call_global("f", 8) == expected

    def test_branch_suppression_preserves_results(self):
        source = "function f(a, b) { return a * b + 7; }"
        reference = Engine(EngineConfig(enable_optimizer=False))
        reference.load(source)
        expected = reference.call_global("f", 6, 7)
        engine = Engine(EngineConfig(target="arm64", emit_check_branches=False))
        engine.load(source)
        for _ in range(40):
            assert engine.call_global("f", 6, 7) == expected
