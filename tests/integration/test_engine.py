"""Engine-level integration tests: tiering, accounting, GC under load."""

import pytest

from repro.engine import Engine, EngineConfig
from repro.jit.checks import CheckKind


class TestTiering:
    SOURCE = """
    function hot(n) {
      var s = 0;
      for (var i = 0; i < n; i++) { s = s + i; }
      return s;
    }
    """

    def test_tier_up_after_threshold(self):
        engine = Engine(EngineConfig(tierup_invocations=5))
        engine.load(self.SOURCE)
        shared = next(f for f in engine.functions if f.name == "hot")
        for i in range(4):
            engine.call_global("hot", 10)
            assert shared.code is None
        engine.call_global("hot", 10)
        engine.call_global("hot", 10)
        assert shared.code is not None

    def test_backedge_counter_tiering(self):
        engine = Engine(
            EngineConfig(tierup_invocations=10**9, tierup_backedges=200)
        )
        engine.load(self.SOURCE)
        shared = next(f for f in engine.functions if f.name == "hot")
        engine.call_global("hot", 100000)  # one call, many back edges
        engine.call_global("hot", 10)
        assert shared.code is not None

    def test_optimizer_disabled_stays_interpreted(self):
        engine = Engine(EngineConfig(enable_optimizer=False))
        engine.load(self.SOURCE)
        for _ in range(50):
            engine.call_global("hot", 10)
        shared = next(f for f in engine.functions if f.name == "hot")
        assert shared.code is None

    def test_compiled_code_is_faster(self):
        interpreted = Engine(EngineConfig(enable_optimizer=False))
        interpreted.load(self.SOURCE)
        optimized = Engine(EngineConfig())
        optimized.load(self.SOURCE)
        for _ in range(30):  # warm
            optimized.call_global("hot", 500)
        start = optimized.total_cycles
        optimized.call_global("hot", 500)
        jit_cost = optimized.total_cycles - start
        start = interpreted.total_cycles
        interpreted.call_global("hot", 500)
        interp_cost = interpreted.total_cycles - start
        assert interp_cost / jit_cost > 2.0  # paper: steady state ~2.5x


class TestAccounting:
    def test_buckets_partition_time(self):
        engine = Engine(EngineConfig())
        engine.load("function f(s) { return s + 'x'; }")
        for _ in range(30):
            engine.call_global("f", "ab")
        total = engine.total_cycles
        assert total > 0
        assert sum(engine.buckets.values()) <= total
        assert engine.buckets["compile"] > 0
        assert engine.buckets["builtin"] > 0
        assert engine.jit_cycles() >= 0

    def test_gc_bucket_charged(self):
        engine = Engine(EngineConfig())
        engine.load("var keep = [1,2,3];")
        engine.run_gc()
        assert engine.buckets["gc"] > 0
        assert engine.heap.gc_stats.collections == 1


class TestGCUnderLoad:
    def test_gc_between_iterations_preserves_state(self):
        source = """
        var table = [0.5, 1.5, 2.5, 3.5];
        var log = "";
        function f(i) {
          log = log + i;
          return table[i % 4] * 2.0;
        }
        """
        engine = Engine(EngineConfig())
        engine.load(source)
        for i in range(60):
            expected = [1.0, 3.0, 5.0, 7.0][i % 4]
            assert engine.call_global("f", i % 4) == expected
            if i % 7 == 0:
                engine.run_gc()
        # Globals incl. the growing string survived every collection.
        assert len(engine.get_global("log")) == 60

    def test_compiled_code_constants_survive_gc(self):
        source = """
        function f() { return "needle"; }
        """
        engine = Engine(EngineConfig())
        engine.load(source)
        for _ in range(20):
            engine.call_global("f")
        shared = next(fn for fn in engine.functions if fn.name == "f")
        assert shared.code is not None
        engine.run_gc()
        assert engine.call_global("f") == "needle"


class TestEngineApi:
    def test_call_global_boxes_arguments(self):
        engine = Engine(EngineConfig())
        engine.load("function f(a, b) { return a[0] + b.k; }")
        assert engine.call_global("f", [10], {"k": 5}) == 15

    def test_get_global(self):
        engine = Engine(EngineConfig())
        engine.load("var answer = 42;")
        assert engine.get_global("answer") == 42
        assert engine.get_global("missing") is None

    def test_unknown_global_call_raises(self):
        from repro.lang.errors import JSTypeError

        engine = Engine(EngineConfig())
        with pytest.raises(JSTypeError):
            engine.call_global("nope")

    def test_multiple_loads_share_globals(self):
        engine = Engine(EngineConfig())
        engine.load("var x = 10;")
        engine.load("function f() { return x * 2; }")
        assert engine.call_global("f") == 20

    def test_32_bit_smi_configuration(self):
        engine = Engine(EngineConfig(smi_bits=32))
        engine.load("function f(x) { return x + 1; }")
        big = 2**30  # overflows 31-bit SMIs, fits 32-bit ones
        for _ in range(30):
            assert engine.call_global("f", big) == big + 1
