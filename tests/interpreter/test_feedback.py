"""Type-feedback lattice tests."""

from repro.interpreter.feedback import (
    BinaryOpSlot,
    CallSlot,
    ElementSlot,
    FeedbackVector,
    GlobalSlot,
    ICState,
    OperandFeedback,
    PropertySlot,
)
from repro.values.maps import ElementsKind, InstanceType, MapRegistry


class TestOperandLattice:
    def test_none_is_identity(self):
        assert OperandFeedback.NONE.union(OperandFeedback.SIGNED_SMALL) == OperandFeedback.SIGNED_SMALL

    def test_smi_and_number_join_to_number(self):
        assert (
            OperandFeedback.SIGNED_SMALL.union(OperandFeedback.NUMBER)
            == OperandFeedback.NUMBER
        )

    def test_number_and_string_join_to_any(self):
        assert OperandFeedback.NUMBER.union(OperandFeedback.STRING) == OperandFeedback.ANY

    def test_join_is_monotone(self):
        slot = BinaryOpSlot()
        slot.record(OperandFeedback.SIGNED_SMALL)
        slot.record(OperandFeedback.SIGNED_SMALL)
        assert slot.state == OperandFeedback.SIGNED_SMALL
        slot.record(OperandFeedback.STRING)
        assert slot.state == OperandFeedback.ANY
        slot.record(OperandFeedback.SIGNED_SMALL)
        assert slot.state == OperandFeedback.ANY  # never narrows


class TestPropertySlot:
    def make_maps(self, count):
        registry = MapRegistry()
        root = registry.create(InstanceType.JS_OBJECT)
        maps = []
        for i in range(count):
            maps.append(registry.transition_add_property(root, f"p{i}"))
        return maps

    def test_monomorphic(self):
        slot = PropertySlot()
        (m,) = self.make_maps(1)
        slot.record(m, 1)
        slot.record(m, 1)
        assert slot.state == ICState.MONOMORPHIC
        assert slot.monomorphic_map is m

    def test_polymorphic_then_megamorphic(self):
        slot = PropertySlot()
        maps = self.make_maps(5)
        for m in maps[:4]:
            slot.record(m, 1)
        assert slot.state == ICState.POLYMORPHIC
        slot.record(maps[4], 1)
        assert slot.state == ICState.MEGAMORPHIC
        assert slot.monomorphic_map is None

    def test_transition_flag_sticky(self):
        slot = PropertySlot()
        (m,) = self.make_maps(1)
        slot.record(m, 1, transition=True)
        assert slot.saw_transition


class TestElementSlot:
    def test_oob_flag(self):
        slot = ElementSlot()
        registry = MapRegistry()
        m = registry.create(InstanceType.JS_ARRAY, ElementsKind.PACKED_SMI)
        slot.record(m)
        slot.saw_out_of_bounds = True
        assert slot.monomorphic_map is m
        assert slot.saw_out_of_bounds


class TestCallSlot:
    def test_monomorphic_target(self):
        slot = CallSlot()
        slot.record_target(3)
        slot.record_target(3)
        assert slot.state == ICState.MONOMORPHIC
        assert slot.target_shared_index == 3

    def test_second_target_goes_megamorphic(self):
        slot = CallSlot()
        slot.record_target(3)
        slot.record_target(4)
        assert slot.state == ICState.MEGAMORPHIC
        assert slot.target_shared_index == -1

    def test_primitive_method_kind(self):
        slot = CallSlot()
        slot.record_primitive_method("string", "charCodeAt")
        assert slot.method_kind == ("string", "charCodeAt")
        slot.record_primitive_method("string", "charAt")
        assert slot.state == ICState.MEGAMORPHIC


class TestFeedbackVector:
    def test_lazy_slot_creation_typed(self):
        vector = FeedbackVector(4)
        assert not vector.has_feedback(0)
        assert isinstance(vector.binary(0), BinaryOpSlot)
        assert vector.has_feedback(0)
        assert isinstance(vector.property(1), PropertySlot)
        assert isinstance(vector.call(2), CallSlot)
        assert isinstance(vector.global_slot(3), GlobalSlot)
