"""End-to-end interpreter-tier tests (optimizer disabled)."""

import pytest

from repro.engine import Engine, EngineConfig
from repro.lang.errors import JSTypeError


def run(source, call=None, *args):
    engine = Engine(EngineConfig(enable_optimizer=False))
    engine.load(source)
    if call is None:
        return engine
    return engine.call_global(call, *args)


class TestControlFlow:
    def test_if_else(self):
        src = "function f(x) { if (x > 0) { return 1; } else { return -1; } }"
        assert run(src, "f", 5) == 1
        assert run(src, "f", -5) == -1

    def test_while_loop(self):
        src = "function f(n) { var s = 0; while (n > 0) { s = s + n; n = n - 1; } return s; }"
        assert run(src, "f", 5) == 15

    def test_do_while_runs_once(self):
        src = "function f() { var c = 0; do { c = c + 1; } while (false); return c; }"
        assert run(src, "f") == 1

    def test_for_with_break_continue(self):
        src = """
        function f() {
          var s = 0;
          for (var i = 0; i < 100; i++) {
            if (i % 2 == 0) { continue; }
            if (i > 10) { break; }
            s = s + i;
          }
          return s;
        }
        """
        assert run(src, "f") == 1 + 3 + 5 + 7 + 9

    def test_nested_loops(self):
        src = """
        function f(n) {
          var s = 0;
          for (var i = 0; i < n; i++) {
            for (var j = 0; j <= i; j++) { s = s + 1; }
          }
          return s;
        }
        """
        assert run(src, "f", 4) == 10

    def test_short_circuit_evaluation(self):
        src = """
        var calls = 0;
        function bump() { calls = calls + 1; return true; }
        function f() {
          calls = 0;
          var a = false && bump();
          var b = true || bump();
          return calls;
        }
        """
        assert run(src, "f") == 0

    def test_ternary(self):
        assert run("function f(x) { return x > 2 ? 'big' : 'small'; }", "f", 3) == "big"


class TestFunctions:
    def test_recursion(self):
        assert run("function fib(n) { if (n < 2) { return n; } return fib(n-1) + fib(n-2); }", "fib", 10) == 55

    def test_missing_args_are_undefined(self):
        assert run("function f(a, b) { return typeof b; }", "f", 1) == "undefined"

    def test_function_expression_via_global(self):
        src = "var double = function (x) { return x * 2; }; function f(x) { return double(x); }"
        assert run(src, "f", 21) == 42

    def test_top_level_state_shared(self):
        src = """
        var counter = 0;
        function inc() { counter = counter + 1; }
        function get() { return counter; }
        function f() { inc(); inc(); inc(); return get(); }
        """
        assert run(src, "f") == 3

    def test_closure_over_local_rejected(self):
        from repro.bytecode.compiler import UnsupportedFeatureError

        with pytest.raises(UnsupportedFeatureError):
            run("function outer() { var x = 1; return function () { return x; }; }")


class TestObjectsAndArrays:
    def test_constructor_with_this(self):
        src = """
        function Point(x, y) { this.x = x; this.y = y; }
        function f() { var p = new Point(3, 4); return p.x * 10 + p.y; }
        """
        assert run(src, "f") == 34

    def test_method_call_binds_this(self):
        src = """
        function getX() { return this.x; }
        function f() {
          var obj = { x: 7 };
          obj.get = getX;
          return obj.get();
        }
        """
        assert run(src, "f") == 7

    def test_array_literal_and_index(self):
        assert run("function f() { var a = [10, 20, 30]; return a[1]; }", "f") == 20

    def test_array_length_and_append_idiom(self):
        src = """
        function f() {
          var a = [];
          for (var i = 0; i < 5; i++) { a[a.length] = i * i; }
          return a.length * 1000 + a[4];
        }
        """
        assert run(src, "f") == 5016

    def test_array_push_pop(self):
        src = """
        function f() {
          var a = [1];
          a.push(2); a.push(3);
          var last = a.pop();
          return a.length * 10 + last;
        }
        """
        assert run(src, "f") == 23

    def test_out_of_bounds_read_is_undefined(self):
        assert run("function f() { var a = [1]; return typeof a[5]; }", "f") == "undefined"

    def test_property_on_number_raises(self):
        with pytest.raises(JSTypeError):
            run("function f() { var x = 1; return x.y; }", "f")


class TestStringsAndBuiltins:
    def test_string_methods(self):
        src = """
        function f() {
          var s = "Hello, World";
          return s.length * 1000000 + s.indexOf("World") * 1000 + s.charCodeAt(0);
        }
        """
        assert run(src, "f") == 12 * 1000000 + 7 * 1000 + 72

    def test_split_join(self):
        assert run('function f() { return "a,b,c".split(",").join("-"); }', "f") == "a-b-c"

    def test_math_builtins(self):
        src = "function f() { return Math.floor(3.7) * 100 + Math.max(1, 9) * 10 + Math.abs(-2); }"
        assert run(src, "f") == 392

    def test_math_sqrt(self):
        assert run("function f() { return Math.sqrt(144); }", "f") == 12

    def test_parse_int_float(self):
        assert run("function f() { return parseInt('42abc', 10); }", "f") == 42
        assert run("function f() { return parseFloat('2.5rest'); }", "f") == 2.5

    def test_string_from_char_code(self):
        assert run("function f() { return String.fromCharCode(72, 105); }", "f") == "Hi"

    def test_regexp_test_and_exec(self):
        src = """
        var re = null;
        function f() {
          re = new RegExp("(\\\\d+)-(\\\\d+)");
          var m = re.exec("id 12-34 ok");
          return (re.test("55-6") ? 1 : 0) * 10000 + parseInt(m[1], 10) * 100 + parseInt(m[2], 10);
        }
        """
        assert run(src, "f") == 11234

    def test_print_collects_output(self):
        engine = run("print('a', 1); print([1,2] + '');")
        assert engine.print_output == ["a 1", "1,2"]

    def test_array_sort_and_indexOf(self):
        src = """
        function cmp(a, b) { return a - b; }
        function f() {
          var a = [3, 1, 2];
          a.sort(cmp);
          return a.join("") + "@" + a.indexOf(2);
        }
        """
        assert run(src, "f") == "123@1"


class TestFeedbackCollection:
    def test_binary_feedback_recorded(self):
        from repro.interpreter.feedback import BinaryOpSlot, OperandFeedback

        engine = run("function f(a, b) { return a + b; }")
        engine.call_global("f", 1, 2)
        shared = next(fn for fn in engine.functions if fn.name == "f")
        slots = [s for s in shared.feedback.slots if isinstance(s, BinaryOpSlot)]
        assert slots and slots[0].state == OperandFeedback.SIGNED_SMALL
        engine.call_global("f", 1.5, 2)
        assert slots[0].state == OperandFeedback.NUMBER

    def test_property_feedback_monomorphic_then_polymorphic(self):
        from repro.interpreter.feedback import ICState, PropertySlot

        engine = run(
            """
            function get(o) { return o.x; }
            function mk1() { var o = {x: 1}; return o; }
            function mk2() { var o = {y: 1, x: 2}; return o; }
            function mono() { return get(mk1()); }
            function poly() { return get(mk1()) + get(mk2()); }
            """
        )
        engine.call_global("mono")
        shared = next(fn for fn in engine.functions if fn.name == "get")
        slot = next(s for s in shared.feedback.slots if isinstance(s, PropertySlot))
        assert slot.state == ICState.MONOMORPHIC
        engine.call_global("poly")
        assert slot.state == ICState.POLYMORPHIC
