"""JS operator semantics tests (the deopt-safe slow paths)."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.interpreter import runtime
from repro.interpreter.feedback import OperandFeedback
from repro.values.heap import Heap
from repro.values.tagged import SMI_MAX, SMI_MIN, is_heap_pointer, is_smi


@pytest.fixture
def heap():
    return Heap()


def w(heap, value):
    return heap.to_word(value)


class TestAdd:
    def test_smi_add(self, heap):
        result, feedback = runtime.js_add(heap, w(heap, 2), w(heap, 3))
        assert heap.to_python(result) == 5
        assert feedback == OperandFeedback.SIGNED_SMALL

    def test_smi_overflow_records_number(self, heap):
        result, feedback = runtime.js_add(heap, w(heap, SMI_MAX), w(heap, 1))
        assert feedback == OperandFeedback.NUMBER
        assert heap.to_python(result) == SMI_MAX + 1

    def test_double_add(self, heap):
        result, feedback = runtime.js_add(heap, w(heap, 1.5), w(heap, 2))
        assert heap.to_python(result) == 3.5
        assert feedback == OperandFeedback.NUMBER

    def test_string_concat(self, heap):
        result, feedback = runtime.js_add(heap, w(heap, "a"), w(heap, "b"))
        assert heap.to_python(result) == "ab"
        assert feedback == OperandFeedback.STRING

    def test_number_plus_string(self, heap):
        result, _ = runtime.js_add(heap, w(heap, 1), w(heap, "2"))
        assert heap.to_python(result) == "12"

    def test_array_plus_number_coerces_to_string(self, heap):
        # The paper's intro example: [1,2,3] + 7 === "1,2,37"
        result, _ = runtime.js_add(heap, w(heap, [1, 2, 3]), w(heap, 7))
        assert heap.to_python(result) == "1,2,37"

    @given(st.integers(-10**6, 10**6), st.integers(-10**6, 10**6))
    @settings(max_examples=50)
    def test_matches_python(self, a, b):
        heap = Heap()
        result, _ = runtime.js_add(heap, heap.to_word(a), heap.to_word(b))
        assert heap.to_python(result) == a + b


class TestMultiply:
    def test_smi_mul(self, heap):
        result, feedback = runtime.js_multiply(heap, w(heap, 6), w(heap, 7))
        assert heap.to_python(result) == 42
        assert feedback == OperandFeedback.SIGNED_SMALL

    def test_minus_zero_forces_number(self, heap):
        result, feedback = runtime.js_multiply(heap, w(heap, -1), w(heap, 0))
        assert feedback == OperandFeedback.NUMBER
        assert math.copysign(1.0, heap.number_to_float(result)) == -1.0

    def test_positive_zero_stays_smi(self, heap):
        result, feedback = runtime.js_multiply(heap, w(heap, 1), w(heap, 0))
        assert feedback == OperandFeedback.SIGNED_SMALL
        assert is_smi(result)


class TestDivideModulo:
    def test_exact_division_is_smi(self, heap):
        result, feedback = runtime.js_divide(heap, w(heap, 10), w(heap, 2))
        assert heap.to_python(result) == 5
        assert feedback == OperandFeedback.SIGNED_SMALL

    def test_inexact_division_is_number(self, heap):
        result, feedback = runtime.js_divide(heap, w(heap, 7), w(heap, 2))
        assert heap.to_python(result) == 3.5
        assert feedback == OperandFeedback.NUMBER

    def test_division_by_zero(self, heap):
        result, _ = runtime.js_divide(heap, w(heap, 1), w(heap, 0))
        assert heap.to_python(result) == math.inf
        result, _ = runtime.js_divide(heap, w(heap, -1), w(heap, 0))
        assert heap.to_python(result) == -math.inf
        result, _ = runtime.js_divide(heap, w(heap, 0), w(heap, 0))
        assert math.isnan(heap.to_python(result))

    def test_modulo_sign_follows_dividend(self, heap):
        result, _ = runtime.js_modulo(heap, w(heap, -5), w(heap, 3))
        assert heap.to_python(result) == -2.0  # JS: -5 % 3 === -2

    def test_modulo_by_zero_is_nan(self, heap):
        result, _ = runtime.js_modulo(heap, w(heap, 5), w(heap, 0))
        assert math.isnan(heap.to_python(result))

    def test_negative_dividend_mod_is_number_feedback(self, heap):
        _result, feedback = runtime.js_modulo(heap, w(heap, -6), w(heap, 3))
        assert feedback == OperandFeedback.NUMBER  # result -0 territory


class TestBitwise:
    @pytest.mark.parametrize(
        "op,a,b,expected",
        [
            ("or", 0b1010, 0b0110, 0b1110),
            ("and", 0b1010, 0b0110, 0b0010),
            ("xor", 0b1010, 0b0110, 0b1100),
            ("shl", 1, 4, 16),
            ("sar", -8, 1, -4),
            ("shr", -1, 28, 15),
        ],
    )
    def test_basic(self, heap, op, a, b, expected):
        result, _ = runtime.js_bitwise(heap, op, w(heap, a), w(heap, b))
        assert heap.to_python(result) == expected

    def test_shift_count_masked_to_5_bits(self, heap):
        result, _ = runtime.js_bitwise(heap, "shl", w(heap, 1), w(heap, 33))
        assert heap.to_python(result) == 2

    def test_to_int32_wraps(self, heap):
        result, _ = runtime.js_bitwise(heap, "or", w(heap, 2**31 + 5), w(heap, 0))
        assert heap.to_python(result) == -(2**31) + 5

    def test_shr_produces_uint32(self, heap):
        result, _ = runtime.js_bitwise(heap, "shr", w(heap, -1), w(heap, 0))
        assert heap.to_python(result) == 2**32 - 1

    def test_bit_not(self, heap):
        result, _ = runtime.js_bit_not(heap, w(heap, 5))
        assert heap.to_python(result) == -6


class TestCompare:
    def test_smi_compare(self, heap):
        outcome, feedback = runtime.js_compare(heap, "lt", w(heap, 1), w(heap, 2))
        assert outcome and feedback == OperandFeedback.SIGNED_SMALL

    def test_nan_compares_false(self, heap):
        for op in ("lt", "le", "gt", "ge"):
            outcome, _ = runtime.js_compare(heap, op, w(heap, float("nan")), w(heap, 1))
            assert not outcome

    def test_string_compare_is_lexicographic(self, heap):
        outcome, feedback = runtime.js_compare(heap, "lt", w(heap, "abc"), w(heap, "abd"))
        assert outcome and feedback == OperandFeedback.STRING

    def test_mixed_coerces_to_number(self, heap):
        outcome, _ = runtime.js_compare(heap, "lt", w(heap, "2"), w(heap, 10))
        assert outcome


class TestEquality:
    def test_strict_nan_not_equal_itself(self, heap):
        nan = w(heap, float("nan"))
        outcome, _ = runtime.js_strict_equals(heap, nan, nan)
        assert not outcome

    def test_strict_mixed_types_false(self, heap):
        outcome, _ = runtime.js_strict_equals(heap, w(heap, 1), w(heap, "1"))
        assert not outcome

    def test_loose_number_string(self, heap):
        outcome, _ = runtime.js_loose_equals(heap, w(heap, 1), w(heap, "1"))
        assert outcome

    def test_loose_null_undefined(self, heap):
        outcome, _ = runtime.js_loose_equals(heap, heap.null, heap.undefined)
        assert outcome

    def test_loose_null_not_zero(self, heap):
        outcome, _ = runtime.js_loose_equals(heap, heap.null, w(heap, 0))
        assert not outcome

    def test_object_identity(self, heap):
        a, b = heap.alloc_object(), heap.alloc_object()
        assert runtime.js_loose_equals(heap, a, a)[0]
        assert not runtime.js_loose_equals(heap, a, b)[0]


class TestConversions:
    def test_truthiness(self, heap):
        assert runtime.js_truthy(heap, w(heap, 1))
        assert not runtime.js_truthy(heap, w(heap, 0))
        assert not runtime.js_truthy(heap, w(heap, ""))
        assert runtime.js_truthy(heap, w(heap, "x"))
        assert not runtime.js_truthy(heap, heap.undefined)
        assert not runtime.js_truthy(heap, heap.null)
        assert not runtime.js_truthy(heap, w(heap, float("nan")))
        assert runtime.js_truthy(heap, heap.alloc_object())

    def test_to_number_of_strings(self, heap):
        assert runtime.js_to_number(heap, w(heap, "42")) == 42
        assert runtime.js_to_number(heap, w(heap, "0x10")) == 16
        assert runtime.js_to_number(heap, w(heap, "")) == 0
        assert math.isnan(runtime.js_to_number(heap, w(heap, "zzz")))

    def test_to_number_of_oddballs(self, heap):
        assert runtime.js_to_number(heap, heap.true_value) == 1
        assert runtime.js_to_number(heap, heap.null) == 0
        assert math.isnan(runtime.js_to_number(heap, heap.undefined))

    def test_number_to_string_integral(self, heap):
        assert runtime.js_number_to_string(3.0) == "3"
        assert runtime.js_number_to_string(3.5) == "3.5"
        assert runtime.js_number_to_string(float("nan")) == "NaN"
        assert runtime.js_number_to_string(float("inf")) == "Infinity"

    def test_typeof(self, heap):
        assert runtime.js_typeof(heap, w(heap, 1)) == "number"
        assert runtime.js_typeof(heap, w(heap, 1.5)) == "number"
        assert runtime.js_typeof(heap, w(heap, "s")) == "string"
        assert runtime.js_typeof(heap, heap.true_value) == "boolean"
        assert runtime.js_typeof(heap, heap.undefined) == "undefined"
        assert runtime.js_typeof(heap, heap.null) == "object"
        assert runtime.js_typeof(heap, heap.alloc_object()) == "object"

    @given(st.floats(allow_nan=False, allow_infinity=False, width=32))
    @settings(max_examples=50)
    def test_to_int32_matches_spec(self, value):
        wrapped = runtime.js_to_int32(float(value))
        assert -(2**31) <= wrapped < 2**31
        assert (wrapped - int(math.trunc(value))) % 2**32 == 0
