"""Graph-builder tests: speculation, checks, caching, inlining."""

import pytest

from repro.engine import Engine, EngineConfig
from repro.ir.builder import build_graph, callee_is_inlinable
from repro.jit.checks import CheckKind


def graph_for(source, name, calls=20, args_sequence=None, target="arm64"):
    """Warm a function in the interpreter, then build its graph."""
    engine = Engine(EngineConfig(enable_optimizer=False, target=target))
    engine.load(source)
    for i in range(calls):
        engine.call_global(name, *(args_sequence[i % len(args_sequence)] if args_sequence else ()))
    shared = next(f for f in engine.functions if f.name == name)
    return build_graph(shared, engine), engine


def check_kinds(builder):
    return [n.check_kind for n in builder.graph.check_nodes()]


class TestSpeculation:
    def test_smi_feedback_builds_checked_int32(self):
        builder, _ = graph_for(
            "function f(a, b) { return a + b; }", "f", args_sequence=[(1, 2)]
        )
        ops = [n.op for n in builder.graph.all_nodes()]
        assert "checked_int32_add" in ops
        assert CheckKind.NOT_A_SMI in check_kinds(builder)

    def test_number_feedback_builds_float_ops(self):
        builder, _ = graph_for(
            "function f(a, b) { return a + b; }", "f", args_sequence=[(1.5, 2.5)]
        )
        ops = [n.op for n in builder.graph.all_nodes()]
        assert "float64_add" in ops
        assert "checked_int32_add" not in ops
        assert CheckKind.NOT_A_NUMBER in check_kinds(builder)

    def test_string_feedback_builds_generic_call(self):
        builder, _ = graph_for(
            "function f(a, b) { return a + b; }", "f", args_sequence=[("x", "y")]
        )
        names = [n.param("name") for n in builder.graph.all_nodes() if n.op == "call_rt"]
        assert "generic_add" in names

    def test_cold_site_emits_soft_deopt(self):
        source = """
        function f(x) {
          if (x > 0) { return x + 1; }
          return x - 1;
        }
        """
        builder, _ = graph_for(source, "f", args_sequence=[(5,)])
        # The x-1 path never ran: its arithmetic site soft-deopts.
        soft = [
            n for n in builder.graph.check_nodes()
            if n.check_kind == CheckKind.INSUFFICIENT_FEEDBACK
        ]
        assert soft

    def test_element_access_emits_map_bounds_checks(self):
        source = """
        var a = [1, 2, 3, 4];
        function f(i) { return a[i]; }
        """
        builder, _ = graph_for(source, "f", args_sequence=[(1,)])
        kinds = check_kinds(builder)
        assert CheckKind.WRONG_MAP in kinds
        assert CheckKind.OUT_OF_BOUNDS in kinds

    def test_monomorphic_call_guards_target(self):
        source = """
        function callee(x) { this_is_effectful(); return x; }
        function this_is_effectful() { g = 1; }
        var g = 0;
        function f() { return callee(1); }
        """
        builder, _ = graph_for(source, "f")
        assert CheckKind.WRONG_CALL_TARGET in check_kinds(builder)


class TestCheckCaching:
    def test_map_check_deduped_in_straight_line(self):
        source = """
        function f(o) { return o.x + o.y; }
        function go() { var o = {x: 1, y: 2}; return f(o); }
        """
        _builder, engine = graph_for(source, "go")
        shared = next(fn for fn in engine.functions if fn.name == "f")
        builder = build_graph(shared, engine)
        map_checks = [
            n for n in builder.graph.check_nodes()
            if n.check_kind == CheckKind.WRONG_MAP
        ]
        assert len(map_checks) == 1  # same receiver: one check covers both loads

    def test_smi_check_deduped_for_same_value(self):
        builder, _ = graph_for(
            "function f(a) { return a + a + a; }", "f", args_sequence=[(2,)]
        )
        smi_checks = [
            n for n in builder.graph.check_nodes()
            if n.check_kind == CheckKind.NOT_A_SMI
        ]
        assert len(smi_checks) == 1


class TestLoops:
    def test_loop_counter_stays_int32(self):
        source = """
        function f(n) {
          var s = 0;
          for (var i = 0; i < n; i++) { s = s + i; }
          return s;
        }
        """
        builder, _ = graph_for(source, "f", args_sequence=[(10,)])
        from repro.ir.nodes import Repr

        loop_phis = [
            n for n in builder.graph.all_nodes()
            if n.op == "phi" and n.param("loop")
        ]
        assert loop_phis
        assert all(p.out_repr == Repr.INT32 for p in loop_phis)

    def test_bounds_check_eliminated_under_length_guard(self):
        source = """
        function f(a) {
          var s = 0;
          for (var i = 0; i < a.length; i++) { s = s + a[i]; }
          return s;
        }
        var arr = [1,2,3,4];
        function go() { return f(arr); }
        """
        _b, engine = graph_for(source, "go")
        shared = next(fn for fn in engine.functions if fn.name == "f")
        builder = build_graph(shared, engine)
        kinds = check_kinds(builder)
        assert CheckKind.OUT_OF_BOUNDS not in kinds

    def test_bounds_check_kept_without_guard(self):
        source = """
        function f(a, n) {
          var s = 0;
          for (var i = 0; i < n; i++) { s = s + a[i]; }
          return s;
        }
        var arr = [1,2,3,4];
        function go() { return f(arr, 4); }
        """
        _b, engine = graph_for(source, "go")
        shared = next(fn for fn in engine.functions if fn.name == "f")
        builder = build_graph(shared, engine)
        assert CheckKind.OUT_OF_BOUNDS in check_kinds(builder)


class TestInlining:
    SOURCE = """
    function square(x) { return x * x; }
    function caller(a) { return square(a) + square(a + 1); }
    function go() { return caller(3); }
    """

    def test_pure_callee_is_inlinable(self):
        _b, engine = graph_for(self.SOURCE, "go")
        shared = next(fn for fn in engine.functions if fn.name == "square")
        assert callee_is_inlinable(shared)

    def test_call_disappears_after_inlining(self):
        _b, engine = graph_for(self.SOURCE, "go")
        shared = next(fn for fn in engine.functions if fn.name == "caller")
        builder = build_graph(shared, engine)
        call_nodes = [n for n in builder.graph.all_nodes() if n.op == "call_js"]
        assert not call_nodes  # both callees inlined

    def test_effectful_callee_not_inlinable(self):
        source = """
        var g = 0;
        function bump(x) { g = g + x; return g; }
        function caller() { return bump(1); }
        """
        _b, engine = graph_for(source, "caller")
        shared = next(fn for fn in engine.functions if fn.name == "bump")
        assert not callee_is_inlinable(shared)

    def test_inlined_result_is_correct_in_jit(self):
        engine = Engine(EngineConfig(target="arm64"))
        engine.load(self.SOURCE)
        values = {engine.call_global("go") for _ in range(40)}
        assert values == {3 * 3 + 4 * 4}
