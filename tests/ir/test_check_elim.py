"""Check-elimination (Fig. 5) and DCE tests."""

from repro.engine import Engine, EngineConfig
from repro.ir.builder import build_graph
from repro.ir.passes.check_elim import eliminate_checks
from repro.ir.passes.dce import elide_truncated_minus_zero_checks, eliminate_dead_code
from repro.jit.checks import CheckKind


def built(source, name, args_sequence, calls=20):
    engine = Engine(EngineConfig(enable_optimizer=False))
    engine.load(source)
    for i in range(calls):
        engine.call_global(name, *args_sequence[i % len(args_sequence)])
    shared = next(f for f in engine.functions if f.name == name)
    return build_graph(shared, engine)


ELEMENT_SOURCE = """
var arr = [1, 2, 3, 4];
function f(i) { return arr[i] + 1; }
"""


class TestShortCircuit:
    def test_removing_bounds_kills_check_node(self):
        builder = built(ELEMENT_SOURCE, "f", [(1,)])
        before = builder.graph.count_checks()
        assert before.get(CheckKind.OUT_OF_BOUNDS, 0) == 1
        removed = eliminate_checks(builder.graph, {CheckKind.OUT_OF_BOUNDS})
        assert removed == 1
        after = builder.graph.count_checks()
        assert CheckKind.OUT_OF_BOUNDS not in after

    def test_dce_removes_condition_ancestors(self):
        """The paper's Fig. 5 effect: the tagged-index computation feeding
        only the bounds check dies with it."""
        builder = built(ELEMENT_SOURCE, "f", [(1,)])
        eliminate_checks(builder.graph, {CheckKind.OUT_OF_BOUNDS})
        removed = eliminate_dead_code(builder.graph)
        assert removed >= 1
        ops = [n.op for n in builder.graph.all_nodes()]
        assert "check_bounds" not in ops

    def test_checked_op_becomes_unchecked_twin(self):
        builder = built("function f(a, b) { return a + b; }", "f", [(1, 2)])
        eliminate_checks(builder.graph, {CheckKind.OVERFLOW})
        ops = [n.op for n in builder.graph.all_nodes()]
        assert "checked_int32_add" not in ops
        assert "int32_add" in ops

    def test_untag_survives_check_removal(self):
        """Removing the Not-a-SMI check must keep the untagging shift —
        the value still has to be converted (paper Section V's point)."""
        builder = built("function f(a) { return a + 1; }", "f", [(1,)])
        eliminate_checks(builder.graph, {CheckKind.NOT_A_SMI})
        eliminate_dead_code(builder.graph)
        ops = [n.op for n in builder.graph.all_nodes()]
        assert "checked_untag" not in ops
        assert "untag_signed" in ops

    def test_soft_deopts_never_removed(self):
        source = """
        function f(x) {
          if (x > 0) { return x + 1; }
          return x - 1;
        }
        """
        builder = built(source, "f", [(5,)])
        eliminate_checks(builder.graph, set(CheckKind))
        kinds = [n.check_kind for n in builder.graph.check_nodes()]
        assert CheckKind.INSUFFICIENT_FEEDBACK in kinds

    def test_selective_removal_keeps_other_kinds(self):
        builder = built(ELEMENT_SOURCE, "f", [(1,)])
        eliminate_checks(builder.graph, {CheckKind.OUT_OF_BOUNDS})
        kinds = set(builder.graph.count_checks())
        assert CheckKind.WRONG_MAP in kinds  # map checks untouched


class TestMinusZeroElision:
    def test_truncated_mul_loses_minus_zero_check(self):
        builder = built(
            "function f(a, b) { return (a * b) + 1; }", "f", [(2, 3)]
        )
        elided = elide_truncated_minus_zero_checks(builder.graph)
        assert elided == 1
        muls = [n for n in builder.graph.all_nodes() if n.op == "checked_int32_mul"]
        assert muls and muls[0].param("minus_zero_check") is False

    def test_observed_mul_keeps_minus_zero_check(self):
        # The product is returned (tagged): -0 would be observable.
        builder = built("function f(a, b) { return a * b; }", "f", [(2, 3)])
        elided = elide_truncated_minus_zero_checks(builder.graph)
        assert elided == 0


class TestExecutionAfterRemoval:
    def test_results_unchanged_when_checks_never_fire(self):
        source = """
        var arr = [5, 6, 7, 8];
        function f(i) { return arr[i] * 2; }
        """
        reference = Engine(EngineConfig(enable_optimizer=False))
        reference.load(source)
        expected = reference.call_global("f", 2)

        engine = Engine(
            EngineConfig(target="arm64", removed_checks=frozenset(CheckKind))
        )
        engine.load(source)
        for _ in range(40):
            assert engine.call_global("f", 2) == expected
        shared = next(fn for fn in engine.functions if fn.name == "f")
        assert shared.code is not None
        assert not shared.code.deopt_points  # nothing left to deopt on
