"""Loop-invariant check hoisting tests."""

from repro.engine import Engine, EngineConfig
from repro.ir.builder import build_graph
from repro.ir.passes.licm import hoist_invariant_checks
from repro.jit.checks import CheckKind


def builder_for(source, name, calls=25, entry="f"):
    engine = Engine(EngineConfig(enable_optimizer=False))
    engine.load(source)
    for _ in range(calls):
        engine.call_global(entry)
    shared = next(f for f in engine.functions if f.name == name)
    return build_graph(shared, engine), engine


CALL_FREE_LOOP = """
var data = [1, 2, 3, 4, 5, 6, 7, 8];
function sum8(a) {
  var s = 0;
  for (var i = 0; i < 8; i++) { s = s + a[i]; }
  return s;
}
function f() { return sum8(data); }
"""

LOOP_WITH_CALL = """
var data = [1, 2, 3, 4, 5, 6, 7, 8];
var g = 0;
function effect() { g = g + 1; return 0; }
function f() {
  var s = 0;
  for (var i = 0; i < 8; i++) { s = s + data[i] + effect(); }
  return s;
}
"""


def map_checks_in_loop(builder):
    header = next(b for b in builder.graph.blocks if b.loop_header)
    loop_start = builder.block_bytecode_pc[header.id]
    loop_end = builder._loop_end[loop_start]
    in_loop = []
    for block in builder.graph.blocks:
        pc = builder.block_bytecode_pc.get(block.id)
        if pc is None or not (loop_start <= pc <= loop_end):
            continue
        in_loop.extend(
            n for n in block.nodes
            if n.check_kind == CheckKind.WRONG_MAP and not n.dead
        )
    return in_loop


class TestHoisting:
    def test_map_check_hoisted_out_of_call_free_loop(self):
        # The receiver must be loop-invariant *by node identity* (a
        # parameter); globals are re-loaded per use and are not hoistable.
        builder, _ = builder_for(CALL_FREE_LOOP, "sum8")
        assert map_checks_in_loop(builder)  # emitted in-loop by the builder
        hoisted = hoist_invariant_checks(builder)
        assert hoisted >= 1
        assert not map_checks_in_loop(builder)

    def test_not_hoisted_when_loop_calls_out(self):
        builder, _ = builder_for(LOOP_WITH_CALL, "f")
        hoist_invariant_checks(builder)
        # The call can transition maps, so the in-loop check must stay.
        assert map_checks_in_loop(builder)

    def test_hoisted_check_uses_loop_entry_frame_state(self):
        builder, _ = builder_for(CALL_FREE_LOOP, "sum8")
        hoist_invariant_checks(builder)
        header_start = min(builder.loop_headers)
        entry = builder.header_entry_checkpoints[header_start]
        hoisted_checks = [
            n for n in builder.graph.all_nodes()
            if n.check_kind == CheckKind.WRONG_MAP and not n.dead
        ]
        assert hoisted_checks
        assert all(n.checkpoint is entry for n in hoisted_checks)

    def test_end_to_end_correct_after_hoisting(self):
        engine = Engine(EngineConfig(target="arm64"))
        engine.load(CALL_FREE_LOOP)
        for _ in range(40):
            assert engine.call_global("f") == 36

    def test_hoisted_check_still_deopts_on_entry_violation(self):
        engine = Engine(EngineConfig(target="arm64"))
        engine.load(CALL_FREE_LOOP)
        for _ in range(40):
            engine.call_global("f")
        engine.load("function poison() { data[2] = 1.5; }")
        engine.call_global("poison")
        assert engine.call_global("f") == 34.5  # 36 - 3 + 1.5
