"""RPO scheduling pass tests."""

from repro.ir.graph import Graph
from repro.ir.nodes import Repr
from repro.ir.passes.schedule import schedule_rpo


def diamond():
    graph = Graph("diamond")
    entry = graph.entry
    left, right, join = graph.new_block(), graph.new_block(), graph.new_block()
    for block in (entry, left, right, join):
        block.append(graph.new_node("goto", [], Repr.NONE))
    graph.connect(entry, left)
    graph.connect(entry, right)
    graph.connect(left, join)
    graph.connect(right, join)
    return graph, entry, left, right, join


class TestRPO:
    def test_entry_first_join_last(self):
        graph, entry, left, right, join = diamond()
        schedule_rpo(graph)
        order = [b.id for b in graph.blocks]
        assert order[0] == entry.id
        assert order[-1] == join.id
        assert set(order) == {entry.id, left.id, right.id, join.id}

    def test_unreachable_blocks_dropped(self):
        graph, entry, *_rest = diamond()
        orphan = graph.new_block()
        orphan.append(graph.new_node("goto", [], Repr.NONE))
        before = len(graph.blocks)
        schedule_rpo(graph)
        assert len(graph.blocks) == before - 1
        assert orphan not in graph.blocks

    def test_loop_header_precedes_body(self):
        graph = Graph("loop")
        entry = graph.entry
        header, body, exit_block = (
            graph.new_block(), graph.new_block(), graph.new_block(),
        )
        header.loop_header = True
        for block in (entry, header, body, exit_block):
            block.append(graph.new_node("goto", [], Repr.NONE))
        graph.connect(entry, header)
        graph.connect(header, body)
        graph.connect(header, exit_block)
        graph.connect(body, header)  # back edge
        schedule_rpo(graph)
        position = {b.id: i for i, b in enumerate(graph.blocks)}
        assert position[header.id] < position[body.id]

    def test_idempotent(self):
        graph, *_ = diamond()
        schedule_rpo(graph)
        first = [b.id for b in graph.blocks]
        schedule_rpo(graph)
        assert [b.id for b in graph.blocks] == first
