"""ISA model and assembly-printer tests."""

import pytest

from repro.isa.asmprint import format_code, format_instr
from repro.isa.base import (
    ARM64,
    ARM64_SMI,
    CC,
    FRAME_BASE,
    MachineInstr,
    MOp,
    TARGETS,
    X64,
    resolve_target,
)


class TestTargets:
    def test_registry(self):
        assert set(TARGETS) == {"x64", "arm64", "arm64+smi"}
        assert resolve_target("x64") is X64
        with pytest.raises(ValueError):
            resolve_target("riscv")

    def test_paper_windows(self):
        # Section III-A: 1 instruction before the branch on x64, 2 on ARM64.
        assert X64.check_window == 1
        assert ARM64.check_window == 2

    def test_cisc_risc_flags(self):
        assert X64.is_cisc and not X64.has_smi_extension
        assert ARM64.is_risc and not ARM64.has_smi_extension
        assert ARM64_SMI.is_risc and ARM64_SMI.has_smi_extension


class TestPrinter:
    def test_core_mnemonics(self):
        cases = [
            (MachineInstr(MOp.MOVI, dst=3, imm=7), "mov x3, #7"),
            (MachineInstr(MOp.ADDS, dst=1, s1=2, s2=3), "adds x1, x2, x3"),
            (MachineInstr(MOp.TSTI, s1=0, imm=1), "tst x0, #1"),
            (MachineInstr(MOp.ASRI, dst=0, s1=0, imm=1), "asr x0, x0, #1"),
            (MachineInstr(MOp.LDR, dst=1, mem=(0, -1, 0, 2)), "ldr x1, [x0, #2]"),
            (MachineInstr(MOp.LDRF, dst=1, mem=(0, 2, 0, 3)), "ldr d1, [x0, x2, #3]"),
            (MachineInstr(MOp.STR, s1=4, mem=(FRAME_BASE, -1, 0, 5)), "str x4, [fp, #5]"),
            (MachineInstr(MOp.FADD, dst=0, s1=1, s2=2), "fadd d0, d1, d2"),
        ]
        for instr, expected in cases:
            assert format_instr(instr).strip().startswith(expected)

    def test_deopt_branch_label(self):
        instr = MachineInstr(MOp.BCC, cc=CC.NE, target=42, is_deopt_branch=True)
        assert "b.ne deopt_42" in format_instr(instr)

    def test_check_annotation(self):
        instr = MachineInstr(MOp.CMP, s1=1, s2=2, check_id=5)
        assert ";; check#5" in format_instr(instr)

    def test_shared_annotation_marker(self):
        instr = MachineInstr(MOp.ADDS, dst=0, s1=1, s2=2, check_id=3, shared_with_main=True)
        assert "~check#3" in format_instr(instr)

    def test_jsldrsmi_mnemonics(self):
        scaled = MachineInstr(MOp.JSLDRSMI, dst=0, mem=(1, 2, 0, 2))
        unscaled = MachineInstr(MOp.JSLDRSMI, dst=0, mem=(1, -1, 0, 2))
        assert "jsldrsmi" in format_instr(scaled)
        assert "jsldursmi" in format_instr(unscaled)

    def test_cisc_memory_compare(self):
        instr = MachineInstr(MOp.CMPI_MEM, mem=(3, -1, 0, 0), imm=19)
        assert format_instr(instr).strip().startswith("cmp [x3], #19")

    def test_format_code_with_title(self):
        listing = format_code([MachineInstr(MOp.RET, s1=0)], title="fn [x64]")
        assert listing.splitlines()[0] == "-- fn [x64] --"
        assert "   0: ret" in listing
