"""Check-taxonomy tests (paper Section II-B)."""

from repro.jit.checks import (
    CHECK_GROUPS,
    REASON_CODES,
    REASON_CODES_REVERSE,
    CheckGroup,
    CheckKind,
    DeoptCategory,
    category_of,
    group_of,
)


class TestTaxonomy:
    def test_every_kind_has_group_and_category(self):
        for kind in CheckKind:
            assert group_of(kind) in CheckGroup
            assert category_of(kind) in DeoptCategory

    def test_paper_groups_present(self):
        names = {g.value for g in CheckGroup}
        assert names == {"Type", "SMI", "Bounds", "Map", "Arithmetic", "Other"}

    def test_smi_group_members(self):
        assert group_of(CheckKind.NOT_A_SMI) == CheckGroup.SMI
        assert group_of(CheckKind.SMI) == CheckGroup.SMI

    def test_arithmetic_group_members(self):
        for kind in (
            CheckKind.OVERFLOW,
            CheckKind.LOST_PRECISION,
            CheckKind.DIVISION_BY_ZERO,
            CheckKind.MINUS_ZERO,
        ):
            assert group_of(kind) == CheckGroup.ARITHMETIC

    def test_soft_kinds(self):
        assert category_of(CheckKind.INSUFFICIENT_FEEDBACK) == DeoptCategory.SOFT
        assert category_of(CheckKind.NOT_OPTIMIZABLE_CALL) == DeoptCategory.SOFT
        assert category_of(CheckKind.NOT_A_SMI) == DeoptCategory.EAGER

    def test_reason_codes_are_nonzero_bytes_and_bijective(self):
        # REG_RE uses 0 for "no pending bailout" (paper Section V-A).
        for kind, code in REASON_CODES.items():
            assert 1 <= code <= 255
            assert REASON_CODES_REVERSE[code] is kind
        assert len(set(REASON_CODES.values())) == len(CheckKind)
