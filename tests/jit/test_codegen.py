"""Code-generation tests: ISA shapes, deopt stubs, suppression, fusion."""

import pytest

from repro.engine import Engine, EngineConfig
from repro.isa.base import MOp
from repro.jit.checks import CheckKind


def compiled(source, name, target="arm64", calls=30, args=(), branches=True):
    engine = Engine(
        EngineConfig(target=target, emit_check_branches=branches)
    )
    engine.load(source)
    for _ in range(calls):
        engine.call_global(name, *args)
    shared = next(f for f in engine.functions if f.name == name)
    assert shared.code is not None, f"{name} did not tier up"
    return shared.code, engine


ELEMENT_SOURCE = """
var arr = [1, 2, 3, 4];
function f(i) { return arr[i] + 1; }
"""


class TestISAShapes:
    def test_x64_map_check_uses_memory_operand(self):
        code, _ = compiled(ELEMENT_SOURCE, "f", target="x64", args=(1,))
        ops = [i.op for i in code.instrs]
        assert MOp.CMPI_MEM in ops  # cmp [obj], #map
        assert MOp.CMP_MEM in ops  # cmp idx, [arr+len]

    def test_arm64_map_check_uses_explicit_load(self):
        code, _ = compiled(ELEMENT_SOURCE, "f", target="arm64", args=(1,))
        ops = [i.op for i in code.instrs]
        assert MOp.CMPI_MEM not in ops
        assert MOp.CMP_MEM not in ops

    def test_arm64_check_spans_more_instructions(self):
        x64_code, _ = compiled(ELEMENT_SOURCE, "f", target="x64", args=(1,))
        arm_code, _ = compiled(ELEMENT_SOURCE, "f", target="arm64", args=(1,))
        x64_stats = x64_code.check_instruction_stats()
        arm_stats = arm_code.check_instruction_stats()
        assert arm_stats["check_instructions"] > x64_stats["check_instructions"]
        # Same number of *checks* on both (paper Section III-A).
        assert len(arm_code.deopt_points) == len(x64_code.deopt_points)

    def test_smi_check_shape(self):
        code, _ = compiled("function f(a) { return a + 1; }", "f", args=(1,))
        # tst reg,#1 followed by a deopt b.ne somewhere in the body.
        pcs = [
            pc for pc, i in enumerate(code.instrs)
            if i.op == MOp.TSTI and i.imm == 1 and i.check_id >= 0
        ]
        assert pcs
        follow = code.instrs[pcs[0] + 1]
        assert follow.op == MOp.BCC and follow.is_deopt_branch


class TestDeoptStubs:
    def test_unique_stub_per_check(self):
        code, _ = compiled(ELEMENT_SOURCE, "f", args=(1,))
        stub_pcs = [pc for pc, i in enumerate(code.instrs) if i.op == MOp.DEOPT]
        assert len(stub_pcs) == len(code.deopt_points)
        targets = [
            i.target for i in code.instrs if i.is_deopt_branch and i.op == MOp.BCC
        ]
        assert len(targets) == len(set(targets))  # every check has its own target

    def test_stubs_live_at_end_of_function(self):
        code, _ = compiled(ELEMENT_SOURCE, "f", args=(1,))
        first_stub = min(
            pc for pc, i in enumerate(code.instrs) if i.op == MOp.DEOPT
        )
        assert all(i.op == MOp.DEOPT for i in code.instrs[first_stub:])

    def test_deopt_metadata_has_frame_state(self):
        code, _ = compiled(ELEMENT_SOURCE, "f", args=(1,))
        for point in code.deopt_points.values():
            assert point.bytecode_pc >= 0


class TestBranchSuppression:
    def test_no_deopt_branches_but_conditions_remain(self):
        base, _ = compiled(ELEMENT_SOURCE, "f", args=(1,), branches=True)
        suppressed, _ = compiled(ELEMENT_SOURCE, "f", args=(1,), branches=False)
        base_stats = base.check_instruction_stats()
        supp_stats = suppressed.check_instruction_stats()
        assert supp_stats["deopt_branches"] == 0
        assert base_stats["deopt_branches"] > 0
        # Condition computations are still there.
        assert supp_stats["check_instructions"] > 0
        delta = base_stats["body_instructions"] - supp_stats["body_instructions"]
        assert delta == base_stats["deopt_branches"]


class TestSmiExtension:
    LOOP_SOURCE = """
    var data = [1,2,3,4,5,6,7,8];
    function f() {
      var s = 0;
      for (var i = 0; i < 8; i++) { s = s + data[i]; }
      return s;
    }
    """

    def test_jsldrsmi_emitted_on_extension_target(self):
        code, _ = compiled(self.LOOP_SOURCE, "f", target="arm64+smi")
        assert any(i.op == MOp.JSLDRSMI for i in code.instrs)

    def test_plain_arm64_has_no_jsldrsmi(self):
        code, _ = compiled(self.LOOP_SOURCE, "f", target="arm64")
        assert not any(i.op == MOp.JSLDRSMI for i in code.instrs)

    def test_extension_installs_bailout_handler(self):
        code, _ = compiled(self.LOOP_SOURCE, "f", target="arm64+smi")
        assert any(i.op == MOp.MSR for i in code.instrs)

    def test_extension_reduces_instruction_count(self):
        base, _ = compiled(self.LOOP_SOURCE, "f", target="arm64")
        ext, _ = compiled(self.LOOP_SOURCE, "f", target="arm64+smi")
        # ldr+asr pairs fused; prologue adds 3, so compare without it.
        assert ext.body_instruction_count() <= base.body_instruction_count() + 3
        assert any(i.op == MOp.JSLDRSMI for i in ext.instrs)

    def test_results_identical_across_targets(self):
        results = set()
        for target in ("x64", "arm64", "arm64+smi"):
            engine = Engine(EngineConfig(target=target))
            engine.load(self.LOOP_SOURCE)
            for _ in range(30):
                results.add(engine.call_global("f"))
        assert results == {36}


class TestBoilerplate:
    def test_frame_save_restore_present(self):
        code, _ = compiled("function f(a) { return a + 1; }", "f", args=(1,))
        comments = [i.comment for i in code.instrs]
        assert "push fp" in comments and "pop fp" in comments

    def test_stack_and_loop_interrupt_checks(self):
        code, _ = compiled(
            "function f(n) { var s = 0; for (var i = 0; i < n; i++) { s = s + 1; } return s; }",
            "f",
            args=(5,),
        )
        comments = [i.comment for i in code.instrs]
        assert "stack check" in comments
        assert "loop interrupt check" in comments

    def test_write_barrier_on_tagged_store(self):
        source = """
        function Box(v) { this.value = v; }
        var keep = null;
        function f(o) { keep = new Box(o); keep.value = o; return 1; }
        function go() { var x = {a: 1}; return f(x); }
        """
        code, _ = compiled(source, "f", calls=40, args=({"a": 1},))
        comments = [i.comment for i in code.instrs]
        assert "barrier: smi skip" in comments
