"""Deoptimization tests: every eager kind, lazy, soft, state reconstruction.

These tests pin the *classic* bailout machinery — discard the optimized
code, generalize feedback, re-tier behind a raised threshold — so they
run with `continuations=False`. Under the default config an eager deopt
instead re-dispatches into a specialized continuation and the code stays
installed; that path is covered by tests/resilience/test_continuations.py.
"""

import pytest

from repro.engine import Engine, EngineConfig
from repro.jit.checks import CheckKind, DeoptCategory, category_of


def warmed(source, name, warm_args, calls=40, target="arm64"):
    engine = Engine(EngineConfig(target=target, continuations=False))
    engine.load(source)
    for _ in range(calls):
        engine.call_global(name, *warm_args)
    shared = next(f for f in engine.functions if f.name == name)
    assert shared.code is not None
    return engine, shared


def deopt_kinds(engine):
    return [e.kind for e in engine.deopt_events]


class TestEagerDeopts:
    def test_not_a_smi(self):
        engine, shared = warmed("function f(x) { return x + 1; }", "f", (1,))
        assert engine.call_global("f", 2.5) == 3.5
        assert CheckKind.NOT_A_SMI in deopt_kinds(engine)
        assert shared.code is None  # discarded

    def test_overflow(self):
        engine, _ = warmed("function f(x) { return x + 1; }", "f", (1,))
        big = 2**30 - 1
        assert engine.call_global("f", big) == big + 1
        assert CheckKind.OVERFLOW in deopt_kinds(engine)

    def test_out_of_bounds(self):
        source = """
        var a = [1, 2, 3, 4];
        function f(i) { return a[i]; }
        """
        engine, _ = warmed(source, "f", (1,))
        assert engine.call_global("f", 99) is None  # undefined
        assert CheckKind.OUT_OF_BOUNDS in deopt_kinds(engine)

    def test_wrong_map_on_shape_change(self):
        source = """
        function get(o) { return o.x; }
        var a = {x: 1};
        var b = {y: 9, x: 2};
        function warm() { return get(a); }
        """
        engine, _ = warmed(source, "warm", ())
        shared = next(f for f in engine.functions if f.name == "get")
        assert engine.call_global("get", {"y": 9, "x": 2}) == 2
        assert CheckKind.WRONG_MAP in deopt_kinds(engine)

    def test_wrong_call_target(self):
        source = """
        function one() { return 1; }
        function two() { return 2; }
        var fn = one;
        function f() { return fn(); }
        function swap() { fn = two; }
        """
        engine, _ = warmed(source, "f", ())
        engine.call_global("swap")
        assert engine.call_global("f") == 2
        assert CheckKind.WRONG_CALL_TARGET in deopt_kinds(engine)

    def test_division_by_zero(self):
        import math

        engine, _ = warmed("function f(a, b) { return a / b; }", "f", (10, 2))
        assert engine.call_global("f", 1, 0) == math.inf
        assert CheckKind.DIVISION_BY_ZERO in deopt_kinds(engine)

    def test_lost_precision(self):
        engine, _ = warmed("function f(a, b) { return a / b; }", "f", (10, 2))
        assert engine.call_global("f", 7, 2) == 3.5
        assert CheckKind.LOST_PRECISION in deopt_kinds(engine)

    def test_minus_zero(self):
        import math

        # Result is returned (observable), so the -0 check stays.
        engine, _ = warmed("function f(a, b) { return a * b; }", "f", (3, 4))
        result = engine.call_global("f", -1, 0)
        assert result == 0 and math.copysign(1.0, result) == -1.0
        assert CheckKind.MINUS_ZERO in deopt_kinds(engine)

    def test_not_a_number(self):
        engine, _ = warmed("function f(x) { return x + 0.5; }", "f", (1.5,))
        assert engine.call_global("f", "s") == "s0.5"
        assert CheckKind.NOT_A_NUMBER in deopt_kinds(engine)


class TestStateReconstruction:
    def test_deopt_mid_loop_preserves_accumulator(self):
        """Deopt in iteration k must resume with the partial sum intact."""
        source = """
        var a = [1, 2, 3, 4, 5, 6, 7, 8];
        function f(n) {
          var s = 0;
          for (var i = 0; i < n; i++) { s = s + a[i]; }
          return s;
        }
        """
        engine, shared = warmed(source, "f", (8,))
        # Store a double mid-array: the PACKED_SMI load deopts on WRONG_MAP
        # at some iteration > 0; the sum so far must carry over.
        engine.load("function poison() { a[5] = 0.5; }")
        engine.call_global("poison")
        assert engine.call_global("f", 8) == 1 + 2 + 3 + 4 + 5 + 0.5 + 7 + 8
        assert engine.deopt_events

    def test_recursive_deopt_unwinds_all_frames(self):
        source = """
        function f(n) {
          if (n < 2) { return n; }
          return f(n - 1) + f(n - 2);
        }
        """
        engine, _ = warmed(source, "f", (12,))
        assert engine.call_global("f", 12.0) == 144.0


class TestReoptimization:
    def test_recompiles_with_generalized_feedback(self):
        engine, shared = warmed("function f(x) { return x + 1; }", "f", (1,))
        engine.call_global("f", 1.5)  # deopt -> NUMBER feedback
        assert shared.code is None
        for _ in range(80):
            engine.call_global("f", 1.5)
        assert shared.code is not None  # reoptimized
        assert shared.reopt_count == 1
        # The new code handles doubles without deopting.
        before = len(engine.deopt_events)
        engine.call_global("f", 2.5)
        assert len(engine.deopt_events) == before

    def test_feedback_generalization_prevents_deopt_loops(self):
        """Feeding ever-new shapes drives the IC megamorphic, after which
        the recompiled code uses the generic path and stops deopting —
        the mechanism that prevents deopt storms in V8."""
        engine, shared = warmed(
            "function f(o) { return o.x; }",
            "f",
            ({"x": 1},),
        )
        for round_number in range(6):
            shape = {f"k{round_number}": 0, "x": round_number}
            for _ in range(120):
                assert engine.call_global("f", shape) == round_number
        shared = next(f for f in engine.functions if f.name == "f")
        assert shared.code is not None  # stable generic code
        deopts_before = len(engine.deopt_events)
        engine.call_global("f", {"z": 1, "q": 2, "x": 42})
        assert len(engine.deopt_events) == deopts_before  # no further deopts

    def test_reopt_raises_tierup_threshold(self):
        engine, shared = warmed("function f(x) { return x + 1; }", "f", (1,))
        engine.call_global("f", 1.5)  # deopt; counters reset
        assert shared.reopt_count == 1
        threshold = engine.config.tierup_invocations
        for _ in range(threshold + 1):  # old threshold no longer suffices
            engine.call_global("f", 1.5)
        assert shared.code is None
        for _ in range(threshold + 2):  # doubled threshold reached
            engine.call_global("f", 1.5)
        assert shared.code is not None

    def test_soft_deopt_then_stable(self):
        source = """
        function f(x) {
          if (x > 0) { return x + 1; }
          return x - 1;
        }
        """
        engine, shared = warmed(source, "f", (5,))
        # Cold path triggers the soft deopt; result must still be right.
        assert engine.call_global("f", -5) == -6
        soft = [
            e for e in engine.deopt_events
            if category_of(e.kind) == DeoptCategory.SOFT
        ]
        assert soft
        for _ in range(100):
            engine.call_global("f", -5)
            engine.call_global("f", 5)
        shared = next(f for f in engine.functions if f.name == "f")
        assert shared.code is not None


class TestLazyDeopt:
    def test_elements_transition_invalidates_dependent_code(self):
        source = """
        var data = [1, 2, 3, 4];
        function f() { return data[2]; }
        function poison() { data[0] = 0.5; }
        """
        engine, shared = warmed(source, "f", ())
        assert not shared.code.invalidated
        engine.call_global("poison")
        assert shared.code.invalidated
        lazy_before = engine.lazy_deopts
        assert engine.call_global("f") == 3
        assert engine.lazy_deopts == lazy_before + 1
        assert shared.code is None  # discarded at next invocation
