"""Register-allocation invariant tests."""

import pytest

from repro.engine import Engine, EngineConfig
from repro.ir.builder import build_graph
from repro.ir.passes.dce import eliminate_dead_code
from repro.ir.passes.schedule import schedule_rpo
from repro.jit.regalloc import allocate
from repro.jit.codegen import CodeGenerator
from repro.isa.base import resolve_target


def allocation_for(source, name, args_sequence, calls=25):
    engine = Engine(EngineConfig(enable_optimizer=False))
    engine.load(source)
    for i in range(calls):
        engine.call_global(name, *args_sequence[i % len(args_sequence)])
    shared = next(f for f in engine.functions if f.name == name)
    builder = build_graph(shared, engine)
    eliminate_dead_code(builder.graph)
    schedule_rpo(builder.graph)
    generator = CodeGenerator(builder, resolve_target("arm64"))
    blocks = [b for b in builder.graph.blocks if b.nodes]
    allocation = allocate(blocks, generator.int_pool, generator.float_pool)
    return allocation, builder, generator


LOOP = """
function f(a, b, c, n) {
  var s = 0;
  var t = 1;
  for (var i = 0; i < n; i++) {
    s = s + a * i;
    t = t + b * i + c;
  }
  return s + t;
}
"""


class TestAllocationInvariants:
    def test_every_live_value_has_a_location(self):
        allocation, builder, _gen = allocation_for(LOOP, "f", [(1, 2, 3, 4)])
        from repro.jit.regalloc import REMAT_OPS

        for node in builder.graph.all_nodes():
            if node.dead or not node.produces_value or node.op in REMAT_OPS:
                continue
            assert allocation.location_of(node) is not None, node

    def test_no_location_outside_pools(self):
        allocation, _builder, generator = allocation_for(LOOP, "f", [(1, 2, 3, 4)])
        for assignment in allocation.assignments.values():
            if assignment.kind == "reg":
                assert assignment.index in generator.int_pool
            elif assignment.kind == "freg":
                assert assignment.index in generator.float_pool
            else:
                assert 0 <= assignment.index < max(1, allocation.slot_count)

    def test_spilling_under_pressure(self):
        # Many simultaneously-live values force spills with a 3-register pool.
        allocation, builder, generator = allocation_for(LOOP, "f", [(1, 2, 3, 4)])
        blocks = [b for b in builder.graph.blocks if b.nodes]
        tight = allocate(blocks, generator.int_pool[:3], generator.float_pool)
        assert tight.slot_count > 0

    def test_execution_correct_under_extreme_pressure(self):
        """End-to-end with a tiny register file: spilled code must still
        compute the right answer."""
        from repro.isa.base import TargetISA

        tiny = TargetISA(
            name="arm64", is_cisc=False, has_smi_extension=False, gpr_count=16
        )
        engine = Engine(EngineConfig(target="arm64"))
        engine.target = tiny
        engine.load(LOOP)
        reference = Engine(EngineConfig(enable_optimizer=False))
        reference.load(LOOP)
        expected = reference.call_global("f", 2, 3, 4, 10)
        for _ in range(40):
            assert engine.call_global("f", 2, 3, 4, 10) == expected
        shared = next(fn for fn in engine.functions if fn.name == "f")
        assert shared.code is not None
        assert shared.code.stack_slots > 2  # actually spilled


class TestLoopExtension:
    def test_value_defined_before_loop_live_through_it(self):
        source = """
        function f(k, n) {
          var s = 0;
          for (var i = 0; i < n; i++) { s = s + k; }
          return s;
        }
        """
        # If k's interval were not extended across the loop, its register
        # would be reused and iteration 2+ would read garbage.
        engine = Engine(EngineConfig(target="arm64"))
        engine.load(source)
        for _ in range(40):
            assert engine.call_global("f", 7, 10) == 70
