"""Lexer tests."""

import pytest

from repro.lang.errors import JSSyntaxError
from repro.lang.lexer import tokenize


def kinds(source):
    return [(t.kind, t.value) for t in tokenize(source)[:-1]]


class TestNumbers:
    def test_integer(self):
        token = tokenize("42")[0]
        assert token.kind == "number"
        assert token.number_value == 42
        assert token.is_integer

    def test_float(self):
        token = tokenize("3.25")[0]
        assert token.number_value == 3.25
        assert not token.is_integer

    def test_leading_dot(self):
        assert tokenize(".5")[0].number_value == 0.5

    def test_exponent(self):
        assert tokenize("1e3")[0].number_value == 1000.0
        assert tokenize("2.5e-2")[0].number_value == 0.025

    def test_hex(self):
        token = tokenize("0xff")[0]
        assert token.number_value == 255
        assert token.is_integer

    def test_malformed_exponent(self):
        with pytest.raises(JSSyntaxError):
            tokenize("1e+")


class TestStrings:
    def test_double_and_single_quotes(self):
        assert tokenize('"hi"')[0].value == "hi"
        assert tokenize("'hi'")[0].value == "hi"

    def test_escapes(self):
        assert tokenize(r'"a\nb\tc\\d"')[0].value == "a\nb\tc\\d"

    def test_unicode_escape(self):
        assert tokenize(r'"A"')[0].value == "A"

    def test_hex_escape(self):
        assert tokenize(r'"\x41"')[0].value == "A"

    def test_unterminated(self):
        with pytest.raises(JSSyntaxError):
            tokenize('"oops')

    def test_newline_in_string(self):
        with pytest.raises(JSSyntaxError):
            tokenize('"a\nb"')


class TestIdentifiersAndKeywords:
    def test_identifier(self):
        assert kinds("foo _bar $x x9") == [
            ("identifier", "foo"),
            ("identifier", "_bar"),
            ("identifier", "$x"),
            ("identifier", "x9"),
        ]

    def test_keywords(self):
        for word in ("var", "function", "return", "if", "while", "new", "typeof"):
            assert tokenize(word)[0].kind == "keyword"

    def test_keyword_prefix_is_identifier(self):
        assert tokenize("variable")[0].kind == "identifier"


class TestPunctuators:
    def test_longest_match(self):
        values = [t.value for t in tokenize(">>> >> > >= === == =")[:-1]]
        assert values == [">>>", ">>", ">", ">=", "===", "==", "="]

    def test_compound_assignment(self):
        values = [t.value for t in tokenize("+= -= <<= >>>=")[:-1]]
        assert values == ["+=", "-=", "<<=", ">>>="]

    def test_unexpected_character(self):
        with pytest.raises(JSSyntaxError):
            tokenize("a # b")


class TestTrivia:
    def test_line_comment(self):
        assert kinds("a // comment\n b") == [("identifier", "a"), ("identifier", "b")]

    def test_block_comment(self):
        assert kinds("a /* x\ny */ b") == [("identifier", "a"), ("identifier", "b")]

    def test_unterminated_block_comment(self):
        with pytest.raises(JSSyntaxError):
            tokenize("/* never ends")

    def test_positions(self):
        tokens = tokenize("a\n  b")
        assert (tokens[0].line, tokens[0].column) == (1, 1)
        assert (tokens[1].line, tokens[1].column) == (2, 3)

    def test_eof_token(self):
        assert tokenize("")[-1].kind == "eof"
