"""Parser tests."""

import pytest

from repro.lang import ast_nodes as ast
from repro.lang.errors import JSSyntaxError
from repro.lang.parser import parse


def expr(source):
    program = parse(source + ";")
    assert isinstance(program.body[0], ast.ExpressionStatement)
    return program.body[0].expression


class TestPrecedence:
    def test_multiplication_binds_tighter(self):
        node = expr("1 + 2 * 3")
        assert node.operator == "+"
        assert node.right.operator == "*"

    def test_parentheses_override(self):
        node = expr("(1 + 2) * 3")
        assert node.operator == "*"
        assert node.left.operator == "+"

    def test_comparison_below_additive(self):
        node = expr("a + 1 < b - 2")
        assert node.operator == "<"

    def test_logical_layers(self):
        node = expr("a || b && c")
        assert isinstance(node, ast.LogicalExpression)
        assert node.operator == "||"
        assert node.right.operator == "&&"

    def test_shift_and_bitwise(self):
        node = expr("a | b ^ c & d << 2")
        assert node.operator == "|"
        assert node.right.operator == "^"
        assert node.right.right.operator == "&"
        assert node.right.right.right.operator == "<<"

    def test_left_associativity(self):
        node = expr("a - b - c")
        assert node.left.operator == "-"

    def test_ternary(self):
        node = expr("a ? b : c ? d : e")
        assert isinstance(node, ast.ConditionalExpression)
        assert isinstance(node.alternate, ast.ConditionalExpression)


class TestExpressions:
    def test_call_with_arguments(self):
        node = expr("f(1, x, g())")
        assert isinstance(node, ast.CallExpression)
        assert len(node.arguments) == 3

    def test_member_chain(self):
        node = expr("a.b.c")
        assert isinstance(node, ast.MemberExpression)
        assert node.property.name == "c"
        assert node.object.property.name == "b"

    def test_computed_member(self):
        node = expr("a[i + 1]")
        assert node.computed
        assert isinstance(node.property, ast.BinaryExpression)

    def test_method_call(self):
        node = expr("s.charCodeAt(0)")
        assert isinstance(node, ast.CallExpression)
        assert isinstance(node.callee, ast.MemberExpression)

    def test_new_expression(self):
        node = expr("new Foo(1, 2)")
        assert isinstance(node, ast.NewExpression)
        assert len(node.arguments) == 2

    def test_new_then_method(self):
        node = expr("new Foo().bar()")
        assert isinstance(node, ast.CallExpression)
        assert isinstance(node.callee.object, ast.NewExpression)

    def test_unary_chain(self):
        node = expr("-!x")
        assert node.operator == "-"
        assert node.operand.operator == "!"

    def test_typeof(self):
        node = expr("typeof x")
        assert node.operator == "typeof"

    def test_update_prefix_postfix(self):
        pre, post = expr("++i"), expr("i++")
        assert pre.prefix and not post.prefix

    def test_assignment_right_associative(self):
        node = expr("a = b = 1")
        assert isinstance(node.value, ast.AssignmentExpression)

    def test_compound_assignment(self):
        node = expr("a += 2")
        assert node.operator == "+="

    def test_invalid_assignment_target(self):
        with pytest.raises(JSSyntaxError):
            parse("1 = 2;")

    def test_array_literal(self):
        node = expr("[1, 2.5, 'x']")
        assert isinstance(node, ast.ArrayLiteral)
        assert len(node.elements) == 3

    def test_object_literal(self):
        node = expr("({a: 1, 'b': 2, 3: 4})")
        assert isinstance(node, ast.ObjectLiteral)
        assert [k for k, _v in node.properties] == ["a", "b", "3"]

    def test_function_expression(self):
        node = expr("(function add(a, b) { return a + b; })")
        assert isinstance(node, ast.FunctionExpression)
        assert node.params == ["a", "b"]

    def test_this(self):
        node = expr("this.x")
        assert isinstance(node.object, ast.ThisExpression)


class TestStatements:
    def test_var_declaration_multi(self):
        program = parse("var a = 1, b, c = 3;")
        declaration = program.body[0]
        assert [name for name, _init in declaration.declarations] == ["a", "b", "c"]
        assert declaration.declarations[1][1] is None

    def test_function_declaration(self):
        program = parse("function f(x) { return x; }")
        fn = program.body[0]
        assert isinstance(fn, ast.FunctionDeclaration)
        assert fn.name == "f"

    def test_if_else_chain(self):
        program = parse("if (a) x = 1; else if (b) x = 2; else x = 3;")
        node = program.body[0]
        assert isinstance(node.alternate, ast.IfStatement)

    def test_for_loop_parts(self):
        program = parse("for (var i = 0; i < n; i++) { }")
        node = program.body[0]
        assert isinstance(node.init, ast.VariableDeclaration)
        assert node.test.operator == "<"
        assert isinstance(node.update, ast.UpdateExpression)

    def test_for_with_empty_parts(self):
        program = parse("for (;;) { break; }")
        node = program.body[0]
        assert node.init is None and node.test is None and node.update is None

    def test_while_and_do_while(self):
        program = parse("while (a) { } do { } while (b);")
        assert isinstance(program.body[0], ast.WhileStatement)
        assert isinstance(program.body[1], ast.DoWhileStatement)

    def test_return_without_value(self):
        program = parse("function f() { return; }")
        assert program.body[0].body[0].argument is None

    def test_break_continue(self):
        program = parse("while (1) { if (a) break; continue; }")
        body = program.body[0].body.body
        assert isinstance(body[0].consequent, ast.BreakStatement)
        assert isinstance(body[1], ast.ContinueStatement)

    def test_missing_paren_raises(self):
        with pytest.raises(JSSyntaxError):
            parse("if (a { }")

    def test_unbalanced_brace_raises(self):
        with pytest.raises(JSSyntaxError):
            parse("function f() {")

    def test_error_carries_position(self):
        with pytest.raises(JSSyntaxError) as info:
            parse("var\n  = 3;")
        assert "line 2" in str(info.value)
