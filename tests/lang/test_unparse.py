"""Pretty-printer: parse -> unparse -> parse must be a fixed point."""

from __future__ import annotations

import pytest

from repro.lang import parse, unparse
from repro.suite.spec import all_benchmarks


def _names(specs):
    return [spec.name for spec in specs]


@pytest.mark.parametrize("name", _names(all_benchmarks()))
def test_suite_program_roundtrips(name):
    """unparse(parse(src)) reparses to the identical printed form."""
    from repro.suite.spec import get_benchmark

    source = get_benchmark(name).source
    printed = unparse(parse(source))
    reprinted = unparse(parse(printed))
    assert printed == reprinted, f"{name}: unparse is not a fixed point"


@pytest.mark.parametrize("name", _names(all_benchmarks()))
def test_roundtrip_preserves_behavior(name):
    """The reprinted program is structurally identical to the original.

    Comparing second-generation prints pins the whole loop: if unparse
    dropped or reordered anything the reparse would show it.
    """
    from repro.suite.spec import get_benchmark

    source = get_benchmark(name).source
    first = unparse(parse(source))
    second = unparse(parse(first))
    third = unparse(parse(second))
    assert second == third


def test_unparse_covers_core_forms():
    source = """
    function f(a, b) {
      var x = a + b * 2;
      if (x > 3) { x = x - 1; } else { x = -x; }
      while (x > 0) { x = x - 1; }
      for (var i = 0; i < 4; i = i + 1) { x = x + i; }
      var o = {a: 1, b: "two"};
      o.c = [1, 2.5, true, null];
      o["d"] = !false;
      return f2(x, o.a, o["b"], o.c[1], typeof x);
    }
    """
    printed = unparse(parse(source))
    assert printed == unparse(parse(printed))
    for token in ("function f(a, b)", "else", "while", "for (", "typeof"):
        assert token in printed


def test_unparse_string_escapes_roundtrip():
    source = 'var s = "a\\"b\\\\c"; var t = s + "\\n";'
    printed = unparse(parse(source))
    assert printed == unparse(parse(printed))


def test_unparse_parenthesizes_by_precedence():
    source = "var x = (1 + 2) * (3 - 4); var y = -(x + 1); var z = 1 - (2 - 3);"
    printed = unparse(parse(source))
    assert printed == unparse(parse(printed))
    # the grouping must actually survive, not just reprint
    assert "(1 + 2) * (3 - 4)" in printed
    assert "1 - (2 - 3)" in printed
