"""Differential fuzz: the block-compiled executor vs the step loop.

The block executor's contract (DESIGN.md "Two-tier executor") is that
heap results, cycle totals, per-pc sample attributions, deopt records and
hardware-counter stats are *bitwise identical* to the step loop — the
fast tier may bail out, never diverge.  These tests run real benchmarks
with ``EngineConfig(blockjit=...)`` toggled and compare everything:

* the tier-1 subset covers the smoke suite on both ISAs, including a
  PC-sampled run and a fault-injected run;
* ``test_full_sweep_identity`` (marked slow) widens to every benchmark on
  both ISAs in all three modes — the acceptance sweep, also runnable as
  ``scripts/blockjit_sweep.py``.
"""

import pytest

from repro.engine import Engine, EngineConfig
from repro.profiling.sampler import attach_sampler, window_straddles_tick
from repro.resilience.faults import FaultInjector, plan_for
from repro.suite.runner import BenchmarkRunner
from repro.suite.spec import all_benchmarks, get_benchmark

SMOKE = ("AES2", "FIB", "SPECTRAL", "JSONLIKE", "DP", "SPMV-CSR-INT")
TARGETS = ("arm64", "x64")
SAMPLE_PERIOD = 467.0


def run_fingerprint(name, target, blockjit, inject=False, iterations=12):
    spec = get_benchmark(name)
    config = EngineConfig(target=target, blockjit=blockjit)
    injector = (
        FaultInjector(plan_for(name, seed=7, iterations=iterations))
        if inject
        else None
    )
    r = BenchmarkRunner(spec, config).run(iterations=iterations, injector=injector)
    return {
        "result": r.result,
        "cycles": r.total_cycles,
        "deopts": r.deopts,
        "hw": r.hw_stats,
    }


def sampled_fingerprint(name, target, blockjit, iterations=12):
    spec = get_benchmark(name)
    engine = Engine(EngineConfig(target=target, blockjit=blockjit))
    engine.load(spec.source)
    engine.call_global("setup")
    for i in range(6):
        engine.current_iteration = i
        engine.call_global("run")
    sampler = attach_sampler(engine, SAMPLE_PERIOD)
    values = []
    for i in range(iterations):
        engine.current_iteration = 6 + i
        values.append(engine.call_global("run"))
    # id(code) differs between engines, but deterministic execution
    # registers code objects in the same order — normalize on that.
    order = {cid: n for n, cid in enumerate(sampler._code_by_id)}
    samples = sorted(
        ((order[cid], pc), count)
        for (cid, pc), count in sampler.jit_samples.items()
    )
    return {
        "values": values,
        "cycles": engine.executor.cycles,
        "samples": samples,
        "other_samples": sampler.other_samples,
    }


@pytest.mark.parametrize("target", TARGETS)
@pytest.mark.parametrize("name", SMOKE)
def test_smoke_identity(name, target):
    assert run_fingerprint(name, target, False) == run_fingerprint(
        name, target, True
    )


@pytest.mark.parametrize("name", ("FIB", "SPECTRAL"))
def test_sampled_identity(name):
    """Per-pc sample counts match exactly: blocks whose cycle window may
    straddle a sample tick run the stepped tier, so attribution is
    defined by the step loop in both modes."""
    assert sampled_fingerprint(name, "arm64", False) == sampled_fingerprint(
        name, "arm64", True
    )


@pytest.mark.parametrize("name", ("AES2", "JSONLIKE"))
def test_injected_fault_identity(name):
    """Forced deopt trips land on the exact same branch in both tiers
    (pending trips route every block through its stepped twin)."""
    off = run_fingerprint(name, "arm64", False, inject=True)
    on = run_fingerprint(name, "arm64", True, inject=True)
    assert off == on
    assert off["deopts"], "fault plan injected no deopts; test is vacuous"


def test_window_straddle_contract():
    assert window_straddles_tick(100.0, 100.0)
    assert window_straddles_tick(100.0, 100.5)
    assert not window_straddles_tick(100.0, 99.9999)
    assert not window_straddles_tick(float("inf"), 1e300)


def test_blockjit_config_switch(monkeypatch):
    from repro.machine.blockjit import default_blockjit

    monkeypatch.setenv("REPRO_BLOCKJIT", "0")
    assert not default_blockjit()
    assert not Engine(EngineConfig()).executor.blockjit
    monkeypatch.setenv("REPRO_BLOCKJIT", "1")
    assert default_blockjit()
    assert Engine(EngineConfig(blockjit=False)).executor.blockjit is False
    assert Engine(EngineConfig(blockjit=True)).executor.blockjit is True


def test_tracing_forces_step_loop():
    """The pipeline models' traces are only defined by the step loop: a
    blockjit engine with tracing on still materializes a full per-retire
    trace identical to a step-loop engine's."""
    def traced(blockjit):
        spec = get_benchmark("FIB")
        engine = Engine(EngineConfig(blockjit=blockjit, collect_trace=True))
        engine.load(spec.source)
        engine.call_global("setup")
        for i in range(12):
            engine.current_iteration = i
            engine.call_global("run")
        return [
            (instr.op, taken, address)
            for instr, taken, address in engine.executor.trace
        ]

    off = traced(False)
    on = traced(True)
    assert on  # tracing produced retires despite blockjit=True
    assert off == on


@pytest.mark.slow
@pytest.mark.parametrize("target", TARGETS)
@pytest.mark.parametrize("spec", all_benchmarks(), ids=lambda s: s.name)
def test_full_sweep_identity(spec, target):
    assert run_fingerprint(spec.name, target, False) == run_fingerprint(
        spec.name, target, True
    )
    assert sampled_fingerprint(spec.name, target, False) == sampled_fingerprint(
        spec.name, target, True
    )
    assert run_fingerprint(spec.name, target, False, inject=True) == run_fingerprint(
        spec.name, target, True, inject=True
    )
