"""Functional-simulator instruction semantics tests."""

import math

import pytest

from repro.engine import Engine, EngineConfig
from repro.isa.base import CC, FRAME_BASE, MachineInstr, MOp
from repro.jit.codegen import CodeObject
from repro.jit.deopt import DeoptPoint, DeoptSignal
from repro.jit.checks import CheckKind
from repro.machine.executor import BranchPredictor, CostModel, MachineError


def make_code(engine, instrs, stack_slots=4, target_name=None):
    from repro.isa.base import resolve_target

    class FakeShared:
        class info:  # noqa: N801 - structural stub
            name = "<test>"
            params = []

        name = "<test>"

    code = CodeObject(FakeShared, resolve_target(target_name or "arm64"))
    code.instrs = instrs
    code.stack_slots = stack_slots
    return code


def run_instrs(instrs, args=(), engine=None):
    engine = engine or Engine(EngineConfig())
    code = make_code(engine, instrs)
    return engine.executor.run(code, list(args), engine.heap.undefined), engine


def I(op, **kw):  # noqa: E743 - terse instruction builder
    return MachineInstr(op, **kw)


class TestAluAndFlags:
    def test_add_sub_mul(self):
        result, _ = run_instrs(
            [
                I(MOp.MOVI, dst=1, imm=6),
                I(MOp.MOVI, dst=2, imm=7),
                I(MOp.MUL, dst=3, s1=1, s2=2),
                I(MOp.SUBI, dst=3, s1=3, imm=2),
                I(MOp.MOVR, dst=0, s1=3),
                I(MOp.RET, s1=0),
            ]
        )
        assert result == 40

    def test_adds_sets_smi_overflow_flag(self):
        smi_max = 2**30 - 1
        result, _ = run_instrs(
            [
                I(MOp.MOVI, dst=1, imm=smi_max),
                I(MOp.MOVI, dst=2, imm=1),
                I(MOp.ADDS, dst=3, s1=1, s2=2),
                I(MOp.CSET, dst=0, cc=CC.VS),
                I(MOp.RET, s1=0),
            ]
        )
        assert result == 1

    def test_cmp_signed_conditions(self):
        for a, b, cc, expected in [
            (1, 2, CC.LT, 1),
            (2, 1, CC.LT, 0),
            (-1, 1, CC.LT, 1),
            (5, 5, CC.EQ, 1),
            (5, 5, CC.GE, 1),
        ]:
            result, _ = run_instrs(
                [
                    I(MOp.MOVI, dst=1, imm=a),
                    I(MOp.MOVI, dst=2, imm=b),
                    I(MOp.CMP, s1=1, s2=2),
                    I(MOp.CSET, dst=0, cc=cc),
                    I(MOp.RET, s1=0),
                ]
            )
            assert result == expected, (a, b, cc)

    def test_cmp_unsigned_hs_catches_negative_index(self):
        # The bounds-check trick: a negative tagged index is huge unsigned.
        result, _ = run_instrs(
            [
                I(MOp.MOVI, dst=1, imm=-2),  # tagged -1
                I(MOp.MOVI, dst=2, imm=8),  # tagged 4 (length)
                I(MOp.CMP, s1=1, s2=2),
                I(MOp.CSET, dst=0, cc=CC.HS),
                I(MOp.RET, s1=0),
            ]
        )
        assert result == 1

    def test_tsti_tag_bit(self):
        for word, expected in [(6, 0), (7, 1)]:
            result, _ = run_instrs(
                [
                    I(MOp.MOVI, dst=1, imm=word),
                    I(MOp.TSTI, s1=1, imm=1),
                    I(MOp.CSET, dst=0, cc=CC.NE),
                    I(MOp.RET, s1=0),
                ]
            )
            assert result == expected

    def test_shifts(self):
        result, _ = run_instrs(
            [
                I(MOp.MOVI, dst=1, imm=-8),
                I(MOp.ASRI, dst=2, s1=1, imm=1),  # arithmetic: -4
                I(MOp.MOVI, dst=3, imm=1),
                I(MOp.LSL, dst=4, s1=3, s2=1),  # 1 << (-8 & 31) = 1 << 24
                I(MOp.ADD, dst=0, s1=2, s2=4),
                I(MOp.RET, s1=0),
            ]
        )
        assert result == -4 + (1 << 24)

    def test_sdiv_truncates_toward_zero(self):
        result, _ = run_instrs(
            [
                I(MOp.MOVI, dst=1, imm=-7),
                I(MOp.MOVI, dst=2, imm=2),
                I(MOp.SDIV, dst=0, s1=1, s2=2),
                I(MOp.RET, s1=0),
            ]
        )
        assert result == -3  # C-style, like ARM sdiv

    def test_mzcmp(self):
        for value, sign, expected in [(0, -1, 1), (0, 1, 0), (5, -1, 0)]:
            result, _ = run_instrs(
                [
                    I(MOp.MOVI, dst=1, imm=value),
                    I(MOp.MOVI, dst=2, imm=sign),
                    I(MOp.MZCMP, s1=1, s2=2),
                    I(MOp.CSET, dst=0, cc=CC.EQ),
                    I(MOp.RET, s1=0),
                ]
            )
            assert result == expected


class TestFloat:
    def test_fcmp_nan_is_unordered(self):
        engine = Engine(EngineConfig())
        code = make_code(
            engine,
            [
                I(MOp.FMOVI, dst=1, imm=float("nan")),
                I(MOp.FMOVI, dst=2, imm=1.0),
                I(MOp.FCMP, s1=1, s2=2),
                I(MOp.CSET, dst=0, cc=CC.MI),  # "<" for floats: false on NaN
                I(MOp.RET, s1=0),
            ],
        )
        assert engine.executor.run(code, [], engine.heap.undefined) == 0

    def test_fcvtzs_wraps_to_int32(self):
        result, _ = run_instrs(
            [
                I(MOp.FMOVI, dst=1, imm=float(2**32 + 5)),
                I(MOp.FCVTZS, dst=0, s1=1),
                I(MOp.RET, s1=0),
            ]
        )
        assert result == 5  # JS ToInt32 semantics

    def test_fdiv_by_zero_gives_infinity(self):
        engine = Engine(EngineConfig())
        code = make_code(
            engine,
            [
                I(MOp.FMOVI, dst=1, imm=1.0),
                I(MOp.FMOVI, dst=2, imm=0.0),
                I(MOp.FDIV, dst=3, s1=1, s2=2),
                I(MOp.FCVTZS, dst=0, s1=3),
                I(MOp.RET, s1=0),
            ],
        )
        assert engine.executor.run(code, [], engine.heap.undefined) == 0  # inf -> 0


class TestMemory:
    def test_heap_load_through_tagged_base(self):
        engine = Engine(EngineConfig())
        arr = engine.heap.to_word([10, 20, 30])
        from repro.values.heap import JS_ARRAY_LENGTH_OFFSET

        code = make_code(
            engine,
            [
                I(MOp.LDR, dst=3, mem=(0, -1, 0, JS_ARRAY_LENGTH_OFFSET)),
                I(MOp.MOVR, dst=0, s1=3),
                I(MOp.RET, s1=0),
            ],
        )
        result = engine.executor.run(code, [arr], engine.heap.undefined)
        assert result == 3 << 1  # the SMI-tagged length

    def test_frame_slot_roundtrip(self):
        result, _ = run_instrs(
            [
                I(MOp.MOVI, dst=1, imm=99),
                I(MOp.STR, s1=1, mem=(FRAME_BASE, -1, 0, 2)),
                I(MOp.LDR, dst=0, mem=(FRAME_BASE, -1, 0, 2)),
                I(MOp.RET, s1=0),
            ]
        )
        assert result == 99

    def test_ldr_of_float_slot_is_machine_error(self):
        engine = Engine(EngineConfig())
        number = engine.heap.alloc_number(1.5)
        code = make_code(
            engine,
            [I(MOp.LDR, dst=3, mem=(0, -1, 0, 1)), I(MOp.RET, s1=3)],
        )
        with pytest.raises(MachineError):
            engine.executor.run(code, [number], engine.heap.undefined)


class TestDeoptPlumbing:
    def test_deopt_instruction_raises_signal_with_state(self):
        engine = Engine(EngineConfig())
        code = make_code(
            engine,
            [I(MOp.MOVI, dst=5, imm=123), I(MOp.DEOPT, imm=7)],
        )
        with pytest.raises(DeoptSignal) as info:
            engine.executor.run(code, [], engine.heap.undefined)
        assert info.value.check_id == 7
        regs, _fregs, _frame = engine.executor.deopt_state
        assert regs[5] == 123

    def test_jsldrsmi_loads_and_untags(self):
        engine = Engine(EngineConfig(target="arm64+smi"))
        arr = engine.heap.to_word([42])
        from repro.values.heap import FIXED_ARRAY_ELEMENTS_OFFSET, JS_ARRAY_ELEMENTS_OFFSET

        code = make_code(
            engine,
            [
                I(MOp.LDR, dst=2, mem=(0, -1, 0, JS_ARRAY_ELEMENTS_OFFSET)),
                I(MOp.JSLDRSMI, dst=3, mem=(2, -1, 0, FIXED_ARRAY_ELEMENTS_OFFSET)),
                I(MOp.RET, s1=3),
            ],
            target_name="arm64+smi",
        )
        assert engine.executor.run(code, [arr], engine.heap.undefined) == 42

    def test_jsldrsmi_bailout_on_pointer(self):
        engine = Engine(EngineConfig(target="arm64+smi"))
        arr = engine.heap.to_word(["not-a-smi"])
        from repro.values.heap import FIXED_ARRAY_ELEMENTS_OFFSET, JS_ARRAY_ELEMENTS_OFFSET

        code = make_code(
            engine,
            [
                I(MOp.LDR, dst=2, mem=(0, -1, 0, JS_ARRAY_ELEMENTS_OFFSET)),
                I(MOp.JSLDRSMI, dst=3, mem=(2, -1, 0, FIXED_ARRAY_ELEMENTS_OFFSET)),
                I(MOp.RET, s1=3),
            ],
            target_name="arm64+smi",
        )
        code.smi_load_checks[1] = 3
        code.deopt_points[3] = DeoptPoint(3, CheckKind.NOT_A_SMI, 0, ())
        with pytest.raises(DeoptSignal) as info:
            engine.executor.run(code, [arr], engine.heap.undefined)
        assert info.value.check_id == 3


class TestBranchPredictor:
    def test_learns_biased_branch(self):
        predictor = BranchPredictor()
        for _ in range(8):
            predictor.predict_and_update(100, False)
        assert not predictor.predict_and_update(100, False)

    def test_mispredicts_on_flip_after_saturation(self):
        predictor = BranchPredictor()
        for _ in range(50):  # enough for the gshare history to stabilize
            predictor.predict_and_update(100, True)
        assert predictor.predict_and_update(100, False)

    def test_steady_loop_branch_rarely_mispredicted(self):
        """The property the paper's Fig. 10 relies on: biased (deopt-style)
        branches are almost always predicted correctly."""
        predictor = BranchPredictor()
        for _ in range(400):
            predictor.predict_and_update(7, False)   # a never-taken check
            predictor.predict_and_update(9, True)    # a loop back edge
        assert predictor.mispredictions / predictor.predictions < 0.10


class TestCostAccounting:
    def test_cycles_accumulate(self):
        engine = Engine(EngineConfig())
        before = engine.executor.cycles
        run_instrs(
            [I(MOp.MOVI, dst=0, imm=1), I(MOp.RET, s1=0)], engine=engine
        )
        assert engine.executor.cycles > before

    def test_cost_model_op_table_complete(self):
        table = CostModel().op_costs()
        for op in MOp:
            assert op in table
