"""Lazy basic block versioning (repro.machine.lbbv): bit-identical
results, net-elision superiority over the static typed tier, guard-free
version chaining, widening termination, mclint's version-entry-guard
invariant, and ladder/sentinel teardown."""

from __future__ import annotations

import pytest

from repro.engine import Engine, EngineConfig
from repro.machine.lbbv import MAX_VERSIONS
from repro.suite.runner import BenchmarkRunner
from repro.suite.spec import get_benchmark

SMOKE = ("AES2", "FIB", "JSONLIKE", "SPMV-CSR-INT")
#: benchmarks whose merge-lost edges rechain into version chains
CHAINY = ("SPLAY", "AES2")


def run_fingerprint(name, target, lbbv, blockjit=True, iterations=12):
    spec = get_benchmark(name)
    config = EngineConfig(
        target=target, blockjit=blockjit, typed_blocks=True, lbbv=lbbv
    )
    runner = BenchmarkRunner(spec, config)
    r = runner.run(iterations=iterations)
    fingerprint = {
        "result": r.result,
        "cycles": r.total_cycles,
        "deopts": r.deopts,
        "hw": r.hw_stats,
        "valid": r.valid,
    }
    return fingerprint, runner.last_engine


def net_elisions(engine) -> int:
    """Checks elided minus entry tests paid — the dynamic-vs-static
    scoreboard (dispatcher guard tests land in the same counter the
    static tier's hoisted guards do, so the comparison is honest)."""
    stats = engine.typed_check_stats()
    return (stats["branch_checks_elided"]
            + stats["condition_instrs_elided"]
            + stats["smi_tag_tests_elided"]
            - stats["entry_guards_evaluated"])


def live_table(engine):
    tables = [t for t in engine._version_tables() if t.created]
    assert tables, "no live version table (lbbv inactive?)"
    return max(tables, key=lambda t: t.created)


@pytest.mark.parametrize("target", ("arm64", "x64"))
@pytest.mark.parametrize("name", SMOKE)
def test_version_identity(name, target):
    """Version bodies, dispatchers and rechained edges must be
    observationally invisible: every simulated statistic matches the
    static typed tier; only the Python-level counters move."""
    off, _ = run_fingerprint(name, target, lbbv=False)
    on, engine = run_fingerprint(name, target, lbbv=True)
    assert on == off
    stats = engine.typed_check_stats()
    assert stats["versions_registered"] > 0
    assert stats["version_executions"] >= stats["version_dispatch_entries"]


def test_version_vs_step_loop_identity():
    step, _ = run_fingerprint("FIB", "arm64", lbbv=False, blockjit=False)
    versioned, _ = run_fingerprint("FIB", "arm64", lbbv=True)
    assert versioned == step


@pytest.mark.parametrize("name", CHAINY)
def test_versions_beat_static_tier_net_elision(name):
    """The tentpole's bar: the dynamic tier must elide strictly more
    checks net of its own entry tests than the static typed tier, and
    some of its entries must be guard-free chained transfers."""
    _, static_engine = run_fingerprint(name, "arm64", lbbv=False)
    _, version_engine = run_fingerprint(name, "arm64", lbbv=True)
    assert net_elisions(version_engine) > net_elisions(static_engine)
    stats = version_engine.typed_check_stats()
    assert stats["version_chained_entries"] > 0


def test_chained_entries_pay_zero_guards():
    """Chained entries are exactly the body executions that bypassed a
    dispatcher — each one entered a specialized body without a single
    entry test."""
    _, engine = run_fingerprint("SPLAY", "arm64", lbbv=True)
    stats = engine.typed_check_stats()
    assert stats["version_chained_entries"] == (
        stats["version_executions"] - stats["version_dispatch_entries"]
    )
    assert stats["version_chained_entries"] > 0


def test_version_cap_and_widening_terminate():
    """Synthetic state pressure: registration is capped per block, the
    overflow widens to the best registered subset (or the base block),
    and widening events are counted — specialization terminates."""
    _, engine = run_fingerprint("AES2", "arm64", lbbv=True)
    table = live_table(engine)
    bid = next(b for b, entry in sorted(table.ctx.static_entry.items()))
    for n in range(MAX_VERSIONS + 3):
        table.request(bid, frozenset(
            (("par", 40 + n, 0), ("par", 60 + n, 1))
        ))
    assert len(table.versions[bid]) <= MAX_VERSIONS
    assert table.widenings > 0
    assert table.widened.get(bid, 0) > 0
    # A widened request whose state covers a registered key reuses that
    # version instead of falling all the way back to the base block.
    keyed = table.versions[bid][0]
    wide = frozenset(keyed.key) | frozenset((("par", 99, 0),))
    assert table.request(bid, wide) == keyed.index
    for versions in table.versions.values():
        assert len(versions) <= MAX_VERSIONS


def test_mclint_flags_unjustified_chain():
    """Corrupting a chained edge so the target's key facts are no longer
    established by the source state must fail the version-entry-guard
    invariant loudly."""
    from repro.analysis.mclint import (
        assert_version_chains_clean,
        check_version_chains,
    )
    from repro.analysis.verifier import VerificationError

    _, engine = run_fingerprint("SPLAY", "arm64", lbbv=True)
    tables = [t for t in engine._version_tables() if t.created]
    assert tables
    for table in tables:  # the real tables must verify clean
        assert check_version_chains(table) == []
    table = live_table(engine)
    victim = next(
        v for vs in table.versions.values() for v in vs
        if v.compiled is not None
    )
    bogus = next(
        v for vs in table.versions.values() for v in vs
        if v.key and not table.ctx.establishes(
            table._entry_state(victim.bid, victim.key), v.key
        )
    )
    victim.chained_out.append((bogus.bid, bogus.index))
    diagnostics = check_version_chains(table)
    assert any(d.invariant == "version-entry-guard" for d in diagnostics)
    with pytest.raises(VerificationError):
        assert_version_chains_clean(table)


def test_ladder_descent_drops_version_table():
    """A rung descent tears the version table down with the block
    table (tests/resilience/test_storm_blockjit.py drives the full
    ladder; this covers the engine hook directly)."""
    engine = Engine(EngineConfig(blockjit=True, lbbv=True,
                                 continuations=False))
    engine.load("function f(x) { return x + 1; }")
    for _ in range(40):
        engine.call_global("f", 1)
    shared = next(fn for fn in engine.functions if fn.name == "f")
    assert shared.code._versions is not None
    last_code = None
    for _ in range(200):
        if shared.tier_rung > 0 or shared.optimization_disabled:
            break
        while shared.code is None:  # re-tier after each discarding deopt
            engine.call_global("f", 1)
        last_code = shared.code
        engine.call_global("f", 1)  # clean call: block table + versions
        engine.executor.forced_deopt_trips += 1
        assert engine.call_global("f", 1) == 2
    assert shared.tier_rung > 0 or shared.optimization_disabled
    assert last_code is not None
    assert last_code._versions is None
    assert last_code._blocks is None


def test_lbbv_config_switch(monkeypatch):
    from repro.machine.lbbv import default_lbbv

    monkeypatch.setenv("REPRO_LBBV", "0")
    assert not default_lbbv()
    assert not Engine(EngineConfig()).executor.lbbv
    monkeypatch.setenv("REPRO_LBBV", "1")
    assert default_lbbv()
    assert Engine(EngineConfig(lbbv=False)).executor.lbbv is False
    assert Engine(EngineConfig(lbbv=True)).executor.lbbv is True
    # The tier rides the typed tier's plans: no typed blocks, no lbbv.
    assert Engine(
        EngineConfig(lbbv=True, typed_blocks=False)
    ).executor.lbbv is False
    assert Engine(
        EngineConfig(lbbv=True, blockjit=False)
    ).executor.lbbv is False


def test_version_stats_report():
    _, engine = run_fingerprint("AES2", "arm64", lbbv=True)
    stats = engine.version_stats()
    assert stats["versions_registered"] > 0
    assert stats["tables"]
    for table in stats["tables"]:
        assert all(0 < n <= MAX_VERSIONS
                   for n in table["occupancy"].values())
        for row in table["states"]:
            assert set(row) >= {"block", "index", "state", "hits",
                                "compiled", "negated", "chained_out"}


def test_sentinel_version_divergence_demotes_table(monkeypatch):
    """A corrupted version audit must demote the version table along
    with its block table and disable further versioning (the CLI/CI
    driver is `python -m repro.supervise inject AES2 --version`)."""
    monkeypatch.setenv("REPRO_AUDIT", "25")
    monkeypatch.setenv("REPRO_CHAOS_LBBV", "corrupt")
    monkeypatch.setenv("REPRO_BUNDLE_DIR", "/tmp/lbbv-test-bundles")
    _, engine = run_fingerprint("AES2", "arm64", lbbv=True)
    sentinel = engine.executor._audit
    assert sentinel is not None
    assert sentinel.version_audits > 0
    assert sentinel.demotions
    demoted = [
        code for code in engine._code_objects
        if getattr(code, "_supervise_demoted", False)
    ]
    assert demoted
    for code in demoted:
        assert code._versions is None or code._versions.disabled
        assert code._blocks is None or code._blocks.demoted
