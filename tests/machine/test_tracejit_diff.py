"""Differential fuzz: the trace tier vs the block tier vs the step loop.

The trace tier's contract (DESIGN.md "Three-tier executor") is the same
as the block tier's, one level up: heap results, cycle totals, per-pc
sample attributions, deopt records and hardware-counter stats are
*bitwise identical* to the step loop — a trace may side-exit back to the
block table, never diverge.  These tests run real benchmarks with
``EngineConfig(tracejit=...)`` toggled under low promotion thresholds
(so chains actually form within a 12-iteration test) and compare
everything across all three tiers:

* the tier-1 subset covers the smoke suite on both ISAs, including a
  PC-sampled run and a fault-injected run — the fault run exercises the
  post-call resume path, since pending forced trips force every segment
  side-exit;
* ``test_call_spanning_chain_forms`` asserts the tentpole feature is
  actually active: at least one compiled chain crosses a
  ``call_runtime``/``call_shared``/``call_value`` boundary;
* ``test_chain_guard_elision`` unit-tests the chain walk that lets a
  trace skip guards an earlier chained block already established;
* ``test_full_sweep_identity`` (marked slow) widens to every benchmark
  on both ISAs in all three modes — the acceptance sweep, also runnable
  as ``scripts/blockjit_sweep.py``.
"""

import pytest

from repro.engine import Engine, EngineConfig
from repro.isa.base import MachineInstr, MOp
from repro.machine.tracejit import _chain_guard_sets
from repro.profiling.sampler import attach_sampler
from repro.resilience.faults import FaultInjector, plan_for
from repro.suite.runner import BenchmarkRunner
from repro.suite.spec import all_benchmarks, get_benchmark

SMOKE = ("AES2", "FIB", "SPECTRAL", "JSONLIKE", "DP", "SPMV-CSR-INT")
TARGETS = ("arm64", "x64")
SAMPLE_PERIOD = 467.0

#: tier name -> EngineConfig knobs (typed blocks on, so chain stitching
#: runs over guarded typed variants — the hardest identity case)
TIERS = {
    "step": dict(blockjit=False, tracejit=False),
    "block": dict(blockjit=True, tracejit=False),
    "trace": dict(blockjit=True, tracejit=True),
}


@pytest.fixture(autouse=True)
def _hot_thresholds(monkeypatch):
    """Low promotion thresholds: traces must form AND run within the
    short test workloads, otherwise the trace rows test nothing."""
    monkeypatch.setenv("REPRO_TRACEJIT_BUDGET", "400")
    monkeypatch.setenv("REPRO_TRACEJIT_HOT", "8")
    monkeypatch.setenv("REPRO_TRACEJIT_ENTRY", "8")


def run_fingerprint(name, target, tier, inject=False, iterations=12):
    spec = get_benchmark(name)
    config = EngineConfig(target=target, typed_blocks=True, **TIERS[tier])
    injector = (
        FaultInjector(plan_for(name, seed=7, iterations=iterations))
        if inject
        else None
    )
    runner = BenchmarkRunner(spec, config)
    r = runner.run(iterations=iterations, injector=injector)
    fingerprint = {
        "result": r.result,
        "cycles": r.total_cycles,
        "deopts": r.deopts,
        "hw": r.hw_stats,
    }
    return fingerprint, runner.last_engine


def sampled_fingerprint(name, target, tier, iterations=12):
    spec = get_benchmark(name)
    engine = Engine(EngineConfig(target=target, typed_blocks=True,
                                 **TIERS[tier]))
    engine.load(spec.source)
    engine.call_global("setup")
    for i in range(6):
        engine.current_iteration = i
        engine.call_global("run")
    sampler = attach_sampler(engine, SAMPLE_PERIOD)
    values = []
    for i in range(iterations):
        engine.current_iteration = 6 + i
        values.append(engine.call_global("run"))
    order = {cid: n for n, cid in enumerate(sampler._code_by_id)}
    samples = sorted(
        ((order[cid], pc), count)
        for (cid, pc), count in sampler.jit_samples.items()
    )
    return {
        "values": values,
        "cycles": engine.executor.cycles,
        "samples": samples,
        "other_samples": sampler.other_samples,
    }


@pytest.mark.parametrize("target", TARGETS)
@pytest.mark.parametrize("name", SMOKE)
def test_smoke_identity(name, target):
    step, _ = run_fingerprint(name, target, "step")
    block, _ = run_fingerprint(name, target, "block")
    trace, engine = run_fingerprint(name, target, "trace")
    assert step == block
    assert step == trace
    stats = engine.trace_stats()
    assert stats["trace_entries"] > 0, (
        "no trace ever ran; the trace row of this test is vacuous"
    )


@pytest.mark.parametrize("name", ("FIB", "SPECTRAL"))
def test_sampled_identity(name):
    """Per-pc sample counts match exactly: a trace segment whose cycle
    bound may straddle a sample tick side-exits to the block path, which
    in turn defers to the stepped twin, so attribution is defined by the
    step loop in all three tiers."""
    step = sampled_fingerprint(name, "arm64", "step")
    assert step == sampled_fingerprint(name, "arm64", "block")
    assert step == sampled_fingerprint(name, "arm64", "trace")


@pytest.mark.parametrize("name", ("AES2", "JSONLIKE"))
def test_injected_fault_identity(name):
    """Forced deopt trips land on the same branch in all tiers: pending
    trips make every trace segment check fail, so the resumed-after-call
    path and the table round-trip retire identically."""
    step, _ = run_fingerprint(name, "arm64", "step", inject=True)
    block, _ = run_fingerprint(name, "arm64", "block", inject=True)
    trace, _ = run_fingerprint(name, "arm64", "trace", inject=True)
    assert step == block
    assert step == trace
    assert step["deopts"], "fault plan injected no deopts; test is vacuous"


@pytest.mark.parametrize("name", ("FIB", "RICH"))
def test_call_spanning_chain_forms(name):
    """The tentpole feature is active: at least one compiled chain
    crosses a call boundary (the call is a mid-trace superinstruction,
    not a flush back to the dispatch table)."""
    _, engine = run_fingerprint(name, "arm64", "trace")
    stats = engine.trace_stats()
    assert stats["traces"] > 0
    assert stats["call_spanning_traces"] > 0
    assert stats["calls_chained"] > 0


def test_tracejit_config_switch(monkeypatch):
    from repro.machine.tracejit import default_tracejit

    monkeypatch.setenv("REPRO_TRACEJIT", "0")
    assert not default_tracejit()
    assert not Engine(EngineConfig()).executor.tracejit
    monkeypatch.setenv("REPRO_TRACEJIT", "1")
    assert default_tracejit()
    assert Engine(EngineConfig(blockjit=True, tracejit=False)).executor.tracejit is False
    assert Engine(EngineConfig(blockjit=True, tracejit=True)).executor.tracejit is True
    # No block tier, no trace tier: tracing rides on the block table.
    assert Engine(EngineConfig(blockjit=False, tracejit=True)).executor.tracejit is False


# -- chain guard elision ---------------------------------------------------


class _FakePlan:
    def __init__(self, guards):
        self.guards = tuple(guards)


class _FakeTable:
    def __init__(self, spans, plans):
        self.spans = spans
        self.typed_plans = plans


class _FakeCode:
    def __init__(self, instrs):
        self.instrs = list(instrs)


def _guard_case(body_op, fact):
    """Two single-instruction blocks, both guarding ``fact``; the first
    block's body is ``body_op``.  Returns (eval_guards, elided)."""
    instrs = [body_op, MachineInstr(MOp.MOVI, dst=0, imm=0)]
    table = _FakeTable(
        spans=[(0, 1), (1, 2)],
        plans={0: _FakePlan([fact]), 1: _FakePlan([fact])},
    )
    return _chain_guard_sets(_FakeCode(instrs), table, [0, 1])


def test_chain_guard_elision():
    """A fact established by an earlier chained block and not killed in
    between is not re-evaluated; any redefinition of its registers — or
    a heap clobber, for heap-dependent facts — revives the guard."""
    par = ("par", 5, 0)
    # Neutral body (defines r1, fact lives on r5): second guard elided.
    out, elided = _guard_case(MachineInstr(MOp.MOVI, dst=1, imm=7), par)
    assert out == [(par,), ()]
    assert elided == 1
    # Body redefines r5: the fact dies, the second guard stays.
    out, elided = _guard_case(MachineInstr(MOp.MOVI, dst=5, imm=7), par)
    assert out == [(par,), (par,)]
    assert elided == 0
    # Heap-dependent fact survives register writes but not a store.
    mapfact = ("map", 5, 0, 19)
    out, elided = _guard_case(MachineInstr(MOp.MOVI, dst=1, imm=7), mapfact)
    assert elided == 1
    out, elided = _guard_case(
        MachineInstr(MOp.STR, s1=1, mem=(0, -1, 0, 0)), mapfact
    )
    assert out == [(mapfact,), (mapfact,)]
    assert elided == 0


def test_chain_guard_elision_end_to_end():
    """The compiled looping variant of a trace with an elided guard stays
    bit-identical to the step loop.  Typeflow keeps a guard only where
    some CFG path kills the fact; along a hot chain that avoids the
    killing path the trace drops the re-check, and the sweep-style
    fingerprint proves the elision sound on a real workload."""
    candidates = []
    for name in ("AES2", "SPMV-CSR-INT", "SPECTRAL", "RICH"):
        _, engine = run_fingerprint(name, "arm64", "trace")
        if engine.trace_stats()["chain_guards_elided"]:
            candidates.append(name)
    # Elision is opportunistic: typeflow already removes intra-path
    # redundancy, so it is legitimate for no smoke chain to elide.  The
    # unit test above pins the walk's semantics either way; when a chain
    # does elide, the identity assertions in run_fingerprint's callers
    # (test_smoke_identity) have already covered those benchmarks.
    for name in candidates:
        step, _ = run_fingerprint(name, "arm64", "step")
        trace, _ = run_fingerprint(name, "arm64", "trace")
        assert step == trace


@pytest.mark.slow
@pytest.mark.parametrize("target", TARGETS)
@pytest.mark.parametrize("spec", all_benchmarks(), ids=lambda s: s.name)
def test_full_sweep_identity(spec, target):
    step, _ = run_fingerprint(spec.name, target, "step")
    trace, _ = run_fingerprint(spec.name, target, "trace")
    assert step == trace
    assert sampled_fingerprint(spec.name, target, "step") == sampled_fingerprint(
        spec.name, target, "trace"
    )
    step_i, _ = run_fingerprint(spec.name, target, "step", inject=True)
    trace_i, _ = run_fingerprint(spec.name, target, "trace", inject=True)
    assert step_i == trace_i
