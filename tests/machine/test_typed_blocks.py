"""Typed block variants (repro.analysis.typeflow plans executed by
repro.machine.blockjit): bit-identical results, check-elision counters,
hoisted-guard fallback, and the elements-kind jsldrsmi proof."""

from __future__ import annotations

import pytest

from repro.engine import Engine, EngineConfig
from repro.isa.base import CC, MachineInstr, MOp, resolve_target
from repro.jit.checks import CheckKind
from repro.jit.codegen import CodeObject
from repro.jit.deopt import DeoptPoint, DeoptSignal
from repro.suite.runner import BenchmarkRunner
from repro.suite.spec import get_benchmark
from repro.values.maps import ElementsKind
from repro.values.tagged import pointer_tag

SMOKE = ("AES2", "FIB", "JSONLIKE", "SPMV-CSR-INT")


def run_fingerprint(name, target, typed, blockjit=True, iterations=12):
    spec = get_benchmark(name)
    config = EngineConfig(target=target, blockjit=blockjit, typed_blocks=typed)
    runner = BenchmarkRunner(spec, config)
    r = runner.run(iterations=iterations)
    fingerprint = {
        "result": r.result,
        "cycles": r.total_cycles,
        "deopts": r.deopts,
        "hw": r.hw_stats,
        "valid": r.valid,
    }
    return fingerprint, runner.last_engine


@pytest.mark.parametrize("target", ("arm64", "x64"))
@pytest.mark.parametrize("name", SMOKE)
def test_typed_identity(name, target):
    """Typed variants must be observationally invisible: every simulated
    statistic matches the untyped block tier; only the Python-level
    elision counters move."""
    off, _ = run_fingerprint(name, target, typed=False)
    on, engine = run_fingerprint(name, target, typed=True)
    assert on == off
    typed = engine.typed_check_stats()
    assert typed["branch_checks_elided"] > 0
    assert typed["guard_failures"] == 0


def test_typed_vs_step_loop_identity():
    step, _ = run_fingerprint("FIB", "arm64", typed=False, blockjit=False)
    typed, _ = run_fingerprint("FIB", "arm64", typed=True)
    assert typed == step


def test_typed_counters_stay_zero_when_disabled():
    _, engine = run_fingerprint("FIB", "arm64", typed=False)
    assert all(v == 0 for v in engine.typed_check_stats().values())


def test_typed_config_switch(monkeypatch):
    from repro.machine.blockjit import default_typed_blocks

    monkeypatch.setenv("REPRO_TYPED_BLOCKS", "0")
    assert not default_typed_blocks()
    assert not Engine(EngineConfig()).executor.typed_blocks
    monkeypatch.setenv("REPRO_TYPED_BLOCKS", "1")
    assert default_typed_blocks()
    assert Engine(EngineConfig(typed_blocks=False)).executor.typed_blocks is False
    assert Engine(EngineConfig(typed_blocks=True)).executor.typed_blocks is True


# -- hand-built code ------------------------------------------------------


def make_code(instrs, target="arm64", deopt_points=None, smi_load_checks=None):
    class FakeShared:
        class info:  # noqa: N801 - structural stub
            name = "<typed-test>"
            params = []

        name = "<typed-test>"

    code = CodeObject(FakeShared, resolve_target(target))
    code.instrs = list(instrs)
    code.deopt_points = dict(deopt_points or {})
    code.smi_load_checks = dict(smi_load_checks or {})
    code.stack_slots = 2
    return code


def I(op, **kw):  # noqa: E743 - terse instruction builder
    return MachineInstr(op, **kw)


def _engine(typed):
    return Engine(EngineConfig(blockjit=True, typed_blocks=typed))


def _smi_arg_code():
    """A hoistable smi check on the first argument register."""
    return make_code(
        [
            I(MOp.TSTI, s1=0, imm=1, check_id=0),
            I(MOp.BCC, cc=CC.NE, target=3, check_id=0, is_deopt_branch=True),
            I(MOp.RET, s1=0),
            I(MOp.DEOPT, imm=0),
        ],
        deopt_points={0: DeoptPoint(0, CheckKind.NOT_A_SMI, 0, ())},
    )


def test_hoisted_guard_elides_check():
    typed_engine = _engine(True)
    plain_engine = _engine(False)
    want = plain_engine.executor.run(_smi_arg_code(), [4], 0)
    got = typed_engine.executor.run(_smi_arg_code(), [4], 0)
    assert got == want == 4
    assert typed_engine.executor.cycles == plain_engine.executor.cycles
    elided, conds, smi, guards, failures = typed_engine.executor.typed_counters[:5]
    assert (elided, conds, smi, guards, failures) == (1, 1, 0, 1, 0)
    assert plain_engine.executor.typed_counters == [0, 0, 0, 0, 0, 0, 0]


def test_guard_failure_falls_back_to_generic():
    """An odd (tagged-pointer) argument fails the hoisted parity guard;
    the generic twin must reproduce the exact deopt the step loop takes,
    with identical cycle accounting."""
    typed_engine = _engine(True)
    plain_engine = _engine(False)
    with pytest.raises(DeoptSignal) as plain_signal:
        plain_engine.executor.run(_smi_arg_code(), [5], 0)
    with pytest.raises(DeoptSignal) as typed_signal:
        typed_engine.executor.run(_smi_arg_code(), [5], 0)
    assert typed_signal.value.check_id == plain_signal.value.check_id == 0
    assert typed_engine.executor.cycles == plain_engine.executor.cycles
    elided, conds, smi, guards, failures = typed_engine.executor.typed_counters[:5]
    assert failures == 1
    assert elided == 0  # the site ran generically, nothing was elided
    assert smi == 0


def _packed_smi_load_code(map_word):
    """map check -> bounds check -> jsldrsmi: with a PACKED_SMI map
    dependency the element load's tag test is provably redundant."""
    code = make_code(
        [
            # heap[(r0 >> 1) + 0] == map_word, else deopt (map check)
            I(MOp.CMPI_MEM, imm=map_word, mem=(0, -1, 0, 0), check_id=0),
            I(MOp.BCC, cc=CC.NE, target=7, check_id=0, is_deopt_branch=True),
            # r1 u< heap[(r0 >> 1) + 1], else deopt (bounds check)
            I(MOp.CMP_MEM, s1=1, mem=(0, -1, 0, 1), check_id=1),
            I(MOp.BCC, cc=CC.HS, target=8, check_id=1, is_deopt_branch=True),
            # element load with commit-time smi bailout
            I(MOp.JSLDRSMI, dst=2, mem=(0, 1, 0, 2), check_id=2),
            I(MOp.MOVR, dst=0, s1=2),
            I(MOp.RET, s1=0),
            I(MOp.DEOPT, imm=0),
            I(MOp.DEOPT, imm=1),
            I(MOp.DEOPT, imm=2),
        ],
        target="x64",
        deopt_points={
            0: DeoptPoint(0, CheckKind.WRONG_MAP, 0, ()),
            1: DeoptPoint(1, CheckKind.OUT_OF_BOUNDS, 0, ()),
            2: DeoptPoint(2, CheckKind.NOT_A_SMI, 0, ()),
        },
        smi_load_checks={4: 2},
    )
    return code


class _PackedSmiMap:
    def __init__(self, address):
        self.address = address
        self.elements_kind = ElementsKind.PACKED_SMI


def _run_packed_smi(typed):
    engine = _engine(typed)
    heap = engine.heap.words
    map_address = 500
    map_word = pointer_tag(map_address)
    base = len(heap)
    heap.extend([map_word, 2, 14])  # map, tagged length 1, tagged element 7
    code = _packed_smi_load_code(map_word)
    code.map_dependencies = {_PackedSmiMap(map_address)}
    result = engine.executor.run(code, [pointer_tag(base), 0], 0)
    return result, engine


def test_jsldrsmi_elided_under_packed_smi_proof():
    want, plain_engine = _run_packed_smi(False)
    got, typed_engine = _run_packed_smi(True)
    assert got == want == 7
    assert typed_engine.executor.cycles == plain_engine.executor.cycles
    elided, conds, smi, guards, failures = typed_engine.executor.typed_counters[:5]
    assert smi == 1  # the jsldrsmi tag test was proven away
    assert elided == 2  # both deopt branches
    assert conds == 2  # cmpi_mem + cmp_mem condition instructions
    assert guards == 2  # hoisted map + bounds entry guards
    assert failures == 0


def test_jsldrsmi_needs_guard_without_map_dependency():
    """Same code, but the compiler recorded no map dependency: the map
    word cannot be resolved to PACKED_SMI, so the elements-kind proof
    fails and the tag test is only *hoistable* — elidable, but behind an
    extra entry guard on the element word instead of proof-free."""
    from repro.analysis.typeflow import HOISTABLE, REDUNDANT, analyze_typeflow

    engine = _engine(True)
    heap = engine.heap.words
    map_word = pointer_tag(500)
    base = len(heap)
    heap.extend([map_word, 2, 14])
    code = _packed_smi_load_code(map_word)  # map_dependencies left empty
    assert analyze_typeflow(code).classifications[2].klass == HOISTABLE
    result = engine.executor.run(code, [pointer_tag(base), 0], 0)
    assert result == 7
    assert engine.executor.typed_counters[3] == 3  # map + bounds + element

    proven = _packed_smi_load_code(map_word)
    proven.map_dependencies = {_PackedSmiMap(500)}
    assert analyze_typeflow(proven).classifications[2].klass == REDUNDANT
