"""PC-sampling and attribution tests."""

import pytest

from repro.engine import Engine, EngineConfig
from repro.jit.checks import CheckGroup, CheckKind
from repro.profiling.annotate import annotated_listing
from repro.profiling.attribution import (
    attribute_samples,
    static_check_density,
    truth_check_pcs,
    window_check_pcs,
)
from repro.profiling.sampler import attach_sampler

LOOP_SOURCE = """
var data = [1,2,3,4,5,6,7,8];
function f(n) {
  var s = 0;
  for (var i = 0; i < n; i++) { s = s + data[i & 7]; }
  return s;
}
"""


def profiled_engine(target="arm64", iterations=60):
    engine = Engine(EngineConfig(target=target))
    engine.load(LOOP_SOURCE)
    for _ in range(10):
        engine.call_global("f", 64)
    sampler = attach_sampler(engine, period=97.0)
    for _ in range(iterations):
        engine.call_global("f", 64)
    shared = next(fn for fn in engine.functions if fn.name == "f")
    assert shared.code is not None
    return engine, sampler, shared.code


class TestWindowHeuristic:
    def test_deopt_branches_identified_by_target(self):
        _engine, _sampler, code = profiled_engine()
        assignment = window_check_pcs(code, window=2)
        branch_pcs = [
            pc for pc, i in enumerate(code.instrs)
            if i.is_deopt_branch
        ]
        for pc in branch_pcs:
            assert pc in assignment

    def test_window_includes_preceding_instructions(self):
        _engine, _sampler, code = profiled_engine()
        zero = window_check_pcs(code, window=0)
        two = window_check_pcs(code, window=2)
        assert len(two) > len(zero)

    def test_window_does_not_cross_control_flow(self):
        _engine, _sampler, code = profiled_engine()
        from repro.isa.base import MOp

        assignment = window_check_pcs(code, window=3)
        for pc in assignment:
            instr = code.instrs[pc]
            # a plain (non-deopt) branch can never be attributed as check work
            if instr.op in (MOp.B, MOp.RET):
                pytest.fail(f"control-flow instr at {pc} attributed to a check")


class TestGroundTruth:
    def test_truth_excludes_shared_by_default(self):
        _engine, _sampler, code = profiled_engine()
        without = truth_check_pcs(code, count_shared=False)
        with_shared = truth_check_pcs(code, count_shared=True)
        assert set(without) <= set(with_shared)

    def test_heuristic_and_truth_overlap(self):
        _engine, _sampler, code = profiled_engine()
        heuristic = set(window_check_pcs(code, code.target.check_window))
        truth = set(truth_check_pcs(code, count_shared=True))
        overlap = len(heuristic & truth) / max(1, len(truth))
        assert overlap > 0.5  # same phenomenon, imperfect estimator


class TestSampling:
    def test_samples_collected_and_attributed(self):
        _engine, sampler, _code = profiled_engine()
        assert sampler.total_samples > 50
        result = attribute_samples(sampler, "window")
        assert 0.0 < result.overhead < 1.0
        assert result.jit_share > 0.2

    def test_overhead_by_group_sums_to_total(self):
        _engine, sampler, _code = profiled_engine()
        result = attribute_samples(sampler, "window")
        assert sum(result.by_group().values()) == pytest.approx(result.overhead)

    def test_estimated_speedup_formula(self):
        _engine, sampler, _code = profiled_engine()
        result = attribute_samples(sampler, "window")
        assert result.estimated_speedup == pytest.approx(
            1.0 / (1.0 - result.overhead)
        )

    def test_other_samples_counted(self):
        engine = Engine(EngineConfig(enable_optimizer=False))
        engine.load(LOOP_SOURCE)
        sampler = attach_sampler(engine, period=50.0)
        engine.call_global("f", 64)
        # No JIT code at all: every sample is "other".
        assert sampler.total_samples > 0
        assert sampler.other_samples == sampler.total_samples


class TestStaticDensity:
    def test_density_positive_and_bounded(self):
        _engine, _sampler, code = profiled_engine()
        density = static_check_density(code)
        assert 0 < density < 50

    def test_x64_denser_than_arm64(self):
        """Same checks over fewer CISC instructions (paper Fig. 1)."""
        _e1, _s1, x64_code = profiled_engine(target="x64")
        _e2, _s2, arm_code = profiled_engine(target="arm64")
        assert static_check_density(x64_code) >= static_check_density(arm_code)


class TestAnnotatedListing:
    def test_listing_renders_with_markers(self):
        _engine, sampler, code = profiled_engine()
        listing = annotated_listing(code, sampler)
        assert "<- check" in listing
        assert "deopt branch" in listing
        assert "samples" in listing.splitlines()[1]
