"""Irregexp-lite tests, cross-checked against Python's `re` where the
semantics coincide."""

import re as python_re

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.regex.engine import Regex, RegexSyntaxError, compile_pattern


class TestBasics:
    def test_literal(self):
        assert compile_pattern("abc").test("xxabcxx")
        assert not compile_pattern("abc").test("abd")

    def test_dot_excludes_newline(self):
        assert compile_pattern("a.c").test("abc")
        assert not compile_pattern("a.c").test("a\nc")

    def test_anchors(self):
        assert compile_pattern("^ab$").test("ab")
        assert not compile_pattern("^ab$").test("xab")

    def test_word_boundary(self):
        assert compile_pattern(r"\bcat\b").test("a cat sat")
        assert not compile_pattern(r"\bcat\b").test("concatenate")

    def test_classes_and_ranges(self):
        assert compile_pattern("[a-c]+").search("zzabz").matched == "ab"
        assert compile_pattern("[^0-9]+").search("12ab3").matched == "ab"

    def test_shorthands(self):
        assert compile_pattern(r"\d+").search("a123b").matched == "123"
        assert compile_pattern(r"\w+").search("!!ab_9!").matched == "ab_9"
        assert compile_pattern(r"\s").test("a b")
        assert compile_pattern(r"\D+").search("12ab").matched == "ab"


class TestQuantifiers:
    def test_star_plus_question(self):
        assert compile_pattern("ab*c").test("ac")
        assert compile_pattern("ab+c").test("abbc")
        assert not compile_pattern("ab+c").test("ac")
        assert compile_pattern("ab?c").test("ac")

    def test_greedy_vs_lazy(self):
        assert compile_pattern("<.*>").search("<a><b>").matched == "<a><b>"
        assert compile_pattern("<.*?>").search("<a><b>").matched == "<a>"

    def test_counted(self):
        assert compile_pattern("a{3}").test("aaa")
        assert not compile_pattern("^a{3}$").test("aa")
        assert compile_pattern("^a{2,}$").test("aaaa")
        assert compile_pattern("^a{1,2}$").test("aa")
        assert not compile_pattern("^a{1,2}$").test("aaa")

    def test_brace_literal_when_not_quantifier(self):
        assert compile_pattern(r"a\{x").test("a{x")


class TestGroupsAlternation:
    def test_capture_groups(self):
        match = compile_pattern(r"(\w+)@(\w+)").search("mail bob@host end")
        assert match.group(0) == "bob@host"
        assert match.group(1) == "bob"
        assert match.group(2) == "host"

    def test_non_capturing(self):
        match = compile_pattern(r"(?:ab)+(c)").search("ababc")
        assert match.group_count == 1
        assert match.group(1) == "c"

    def test_alternation_order(self):
        assert compile_pattern("cat|category").search("category").matched == "cat"

    def test_unbalanced_paren_raises(self):
        with pytest.raises(RegexSyntaxError):
            compile_pattern("(ab")


class TestApi:
    def test_global_exec_advances(self):
        regex = Regex(r"\d+", "g")
        text = "a1 b22 c333"
        results = []
        while True:
            match = regex.exec(text)
            if match is None:
                break
            results.append(match.matched)
        assert results == ["1", "22", "333"]
        assert regex.last_index == 0  # reset after exhaustion

    def test_non_global_exec_restarts(self):
        regex = Regex(r"\d+")
        assert regex.exec("a1 b2").matched == "1"
        assert regex.exec("a1 b2").matched == "1"

    def test_ignore_case(self):
        assert Regex("hello", "i").test("HeLLo world")

    def test_replace_with_groups(self):
        regex = Regex(r"(\w+)=(\d+)", "g")
        assert regex.replace("a=1 b=2", "$2:$1") == "1:a 2:b"

    def test_replace_first_only_without_global(self):
        regex = Regex(r"\d")
        assert regex.replace("1 2 3", "x") == "x 2 3"

    def test_find_all_empty_match_progress(self):
        regex = Regex("a*")
        results = regex.find_all("bab")
        assert len(results) >= 2  # no infinite loop on empty matches

    def test_steps_counter_advances(self):
        regex = Regex("a+b")
        regex.steps = 0
        regex.test("aaaaab")
        assert regex.steps > 0


SAFE_PATTERNS = [
    r"\d+", r"[a-z]+\d", r"(ab|cd)+", r"a.?b", r"^\w+", r"x{2,4}y",
    r"(a)(b)?c", r"[^abc]+", r"a+?b+",
]


@pytest.mark.parametrize("pattern", SAFE_PATTERNS)
@given(text=st.text(alphabet="abcdxy019 \n", max_size=25))
@settings(max_examples=30, deadline=None)
def test_agrees_with_python_re(pattern, text):
    ours = compile_pattern(pattern).search(text)
    theirs = python_re.search(pattern, text)
    if theirs is None:
        assert ours is None
    else:
        assert ours is not None
        assert ours.matched == theirs.group(0)
