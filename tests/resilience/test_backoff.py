"""Deopt storms, the degradation ladder, re-tier backoff, DeoptStateError.

Storm handling changed with the deoptless tier
(:mod:`repro.machine.continuations`): with continuation dispatch enabled
a tripping guard re-dispatches instead of bailing out, so these tests
pin ``continuations=False`` to exercise the classic path — and the
classic path no longer falls off a cliff.  A storm (or an exhausted
re-optimization budget) steps the function down ONE degradation-ladder
rung, dropping that rung's tier artifacts; only the final rung disables
optimization permanently.  The dispatch path itself is covered by
``tests/resilience/test_continuations.py``.
"""

import pytest

from repro.engine import Engine, EngineConfig
from repro.jit.deopt import DeoptStateError
from repro.machine.continuations import RUNG_INTERP, RUNG_NAMES


def warmed(source, name, warm_args, calls=40, **config_kwargs):
    config_kwargs.setdefault("continuations", False)
    engine = Engine(EngineConfig(**config_kwargs))
    engine.load(source)
    for _ in range(calls):
        engine.call_global(name, *warm_args)
    shared = next(f for f in engine.functions if f.name == name)
    assert shared.code is not None
    return engine, shared


def force_trip(engine, shared, name, *args):
    """Re-tier if needed, then force the next deopt branch to be taken."""
    while shared.code is None:
        if shared.optimization_disabled:
            return None
        engine.call_global(name, *args)
    engine.executor.forced_deopt_trips += 1
    return engine.call_global(name, *args)


def drive_to_disable(engine, shared, name="f", arg=1, bound=200):
    """Force same-kind trips until the ladder bottoms out; returns the
    number of trips it took."""
    trips = 0
    for _ in range(bound):
        if shared.optimization_disabled:
            return trips
        result = force_trip(engine, shared, name, arg)
        if result is not None:
            assert result == arg + 1  # semantics survive every deopt
            trips += 1
    raise AssertionError(f"ladder never bottomed out in {bound} trips")


class TestStormGuard:
    def test_storm_descends_one_rung_not_a_cliff(self):
        engine, shared = warmed("function f(x) { return x + 1; }", "f", (1,))
        for _ in range(engine.config.storm_strikes):
            result = force_trip(engine, shared, "f", 1)
            assert result == 2
        # One storm = one rung down, NOT permanent disable.
        assert shared.tier_rung == 1
        assert not shared.optimization_disabled
        assert engine.storms_detected == 1
        assert engine.storm_disabled == []
        assert shared.deopts_by_kind  # per-kind strikes recorded
        # The rung's strike counters reset on descent: a fresh storm is
        # needed to descend again.
        assert shared.rung_strikes == {}

    def test_persistent_storm_walks_the_whole_ladder(self):
        engine, shared = warmed("function f(x) { return x + 1; }", "f", (1,))
        drive_to_disable(engine, shared)
        assert shared.optimization_disabled
        assert shared.tier_rung == RUNG_INTERP
        # Five descents: full -> no-trace -> generic-blocks ->
        # classic-deopt -> stepped -> interpreter.
        assert engine.storms_detected == RUNG_INTERP
        assert len(engine.storm_disabled) == 1
        function_name, _kind_name = engine.storm_disabled[0]
        assert function_name == "f"
        assert [rung for _, _, _, rung in engine.ladder_descents] == list(
            RUNG_NAMES[1:]
        )

    def test_disabled_function_still_runs_correctly(self):
        engine, shared = warmed("function f(x) { return x + 1; }", "f", (1,))
        drive_to_disable(engine, shared)
        assert shared.optimization_disabled
        for _ in range(50):
            assert engine.call_global("f", 41) == 42
        assert shared.code is None  # never re-tiers

    def test_storm_counters_in_resilience_stats(self):
        engine, shared = warmed("function f(x) { return x + 1; }", "f", (1,))
        drive_to_disable(engine, shared)
        stats = engine.resilience_stats()
        assert stats["storms_detected"] == RUNG_INTERP
        assert ("f", engine.storm_disabled[0][1]) in stats["storm_disabled"]
        assert "f" in stats["disabled_functions"]
        assert stats["tier_rungs"]["f"] == "interpreter"
        assert len(stats["ladder_descents"]) == RUNG_INTERP
        # Storms and budget exhaustion are distinct failure accounts.
        assert stats["budget_exhaustions"] == 0
        assert stats["budget_disabled"] == []

    def test_different_kinds_do_not_count_as_one_storm(self):
        # A NOT_A_SMI deopt and forced branch trips are different kinds of
        # strike only if their check kinds differ; reopt_count still
        # accumulates toward the total budget.
        engine, shared = warmed("function f(x) { return x + 1; }", "f", (1,), storm_strikes=99)
        engine.call_global("f", 1.5)  # NOT_A_SMI
        assert not shared.optimization_disabled
        assert shared.tier_rung == 0
        assert shared.reopt_count == 1


class TestExponentialBackoff:
    def test_retier_threshold_doubles_per_reopt(self):
        engine, shared = warmed(
            "function f(x) { return x + 1; }", "f", (1,),
            storm_strikes=99, max_reoptimizations=99,
        )
        threshold = engine.config.tierup_invocations
        for round_number in (1, 2):
            force_trip(engine, shared, "f", 1)
            assert shared.code is None
            scale = 2 ** round_number
            # One invocation short of the scaled threshold: still bytecode.
            for _ in range(threshold * scale - 1):
                engine.call_global("f", 1)
            assert shared.code is None, f"re-tiered too early at reopt {round_number}"
            engine.call_global("f", 1)
            engine.call_global("f", 1)
            assert shared.code is not None, f"failed to re-tier at reopt {round_number}"

    def test_backoff_cap_bounds_the_scale(self):
        engine, shared = warmed(
            "function f(x) { return x + 1; }", "f", (1,),
            storm_strikes=99, max_reoptimizations=99, backoff_cap=2,
        )
        for _ in range(5):
            force_trip(engine, shared, "f", 1)
        assert shared.reopt_count >= 5
        threshold = engine.config.tierup_invocations
        # Scale is capped at 2**2 even after 5 reopts.
        for _ in range(threshold * 4 + 2):
            engine.call_global("f", 1)
        assert shared.code is not None


class TestDeoptStateError:
    def test_missing_machine_state_raises_typed_error(self):
        engine, shared = warmed("function f(x) { return x + 1; }", "f", (1,))
        code = shared.code
        check_id = next(iter(code.deopt_points))
        from repro.jit.deopt import DeoptSignal

        engine.executor.deopt_state = None
        with pytest.raises(DeoptStateError) as excinfo:
            engine._deoptimize(shared, code, DeoptSignal(check_id))
        error = excinfo.value
        assert error.check_id == check_id
        assert error.function == "f"
        assert error.kind == code.deopt_points[check_id].kind.name
        assert "bytecode pc" in str(error)
