"""Deopt-storm detection, exponential re-tier backoff, DeoptStateError."""

import pytest

from repro.engine import Engine, EngineConfig
from repro.jit.deopt import DeoptStateError


def warmed(source, name, warm_args, calls=40, **config_kwargs):
    engine = Engine(EngineConfig(**config_kwargs))
    engine.load(source)
    for _ in range(calls):
        engine.call_global(name, *warm_args)
    shared = next(f for f in engine.functions if f.name == name)
    assert shared.code is not None
    return engine, shared


def force_trip(engine, shared, name, *args):
    """Re-tier if needed, then force the next deopt branch to be taken."""
    while shared.code is None:
        if shared.optimization_disabled:
            return None
        engine.call_global(name, *args)
    engine.executor.forced_deopt_trips += 1
    return engine.call_global(name, *args)


class TestStormGuard:
    def test_repeated_same_kind_deopts_disable_speculation(self):
        engine, shared = warmed("function f(x) { return x + 1; }", "f", (1,))
        for _ in range(engine.config.storm_strikes):
            result = force_trip(engine, shared, "f", 1)
            assert result == 2  # semantics survive every spurious deopt
        assert shared.optimization_disabled
        assert engine.storms_detected == 1
        assert len(engine.storm_disabled) == 1
        function_name, kind_name = engine.storm_disabled[0]
        assert function_name == "f"
        assert shared.deopts_by_kind  # per-kind strikes recorded

    def test_disabled_function_still_runs_correctly(self):
        engine, shared = warmed("function f(x) { return x + 1; }", "f", (1,))
        for _ in range(engine.config.storm_strikes):
            force_trip(engine, shared, "f", 1)
        assert shared.optimization_disabled
        for _ in range(50):
            assert engine.call_global("f", 41) == 42
        assert shared.code is None  # never re-tiers

    def test_storm_counters_in_resilience_stats(self):
        engine, shared = warmed("function f(x) { return x + 1; }", "f", (1,))
        for _ in range(engine.config.storm_strikes):
            force_trip(engine, shared, "f", 1)
        stats = engine.resilience_stats()
        assert stats["storms_detected"] == 1
        assert ("f", engine.storm_disabled[0][1]) in stats["storm_disabled"]
        assert "f" in stats["disabled_functions"]

    def test_different_kinds_do_not_count_as_one_storm(self):
        # A NOT_A_SMI deopt and forced branch trips are different kinds of
        # strike only if their check kinds differ; reopt_count still
        # accumulates toward the total budget.
        engine, shared = warmed("function f(x) { return x + 1; }", "f", (1,), storm_strikes=99)
        engine.call_global("f", 1.5)  # NOT_A_SMI
        assert not shared.optimization_disabled
        assert shared.reopt_count == 1


class TestExponentialBackoff:
    def test_retier_threshold_doubles_per_reopt(self):
        engine, shared = warmed(
            "function f(x) { return x + 1; }", "f", (1,),
            storm_strikes=99, max_reoptimizations=99,
        )
        threshold = engine.config.tierup_invocations
        for round_number in (1, 2):
            force_trip(engine, shared, "f", 1)
            assert shared.code is None
            scale = 2 ** round_number
            # One invocation short of the scaled threshold: still bytecode.
            for _ in range(threshold * scale - 1):
                engine.call_global("f", 1)
            assert shared.code is None, f"re-tiered too early at reopt {round_number}"
            engine.call_global("f", 1)
            engine.call_global("f", 1)
            assert shared.code is not None, f"failed to re-tier at reopt {round_number}"

    def test_backoff_cap_bounds_the_scale(self):
        engine, shared = warmed(
            "function f(x) { return x + 1; }", "f", (1,),
            storm_strikes=99, max_reoptimizations=99, backoff_cap=2,
        )
        for _ in range(5):
            force_trip(engine, shared, "f", 1)
        assert shared.reopt_count >= 5
        threshold = engine.config.tierup_invocations
        # Scale is capped at 2**2 even after 5 reopts.
        for _ in range(threshold * 4 + 2):
            engine.call_global("f", 1)
        assert shared.code is not None


class TestDeoptStateError:
    def test_missing_machine_state_raises_typed_error(self):
        engine, shared = warmed("function f(x) { return x + 1; }", "f", (1,))
        code = shared.code
        check_id = next(iter(code.deopt_points))
        from repro.jit.deopt import DeoptSignal

        engine.executor.deopt_state = None
        with pytest.raises(DeoptStateError) as excinfo:
            engine._deoptimize(shared, code, DeoptSignal(check_id))
        error = excinfo.value
        assert error.check_id == check_id
        assert error.function == "f"
        assert error.kind == code.deopt_points[check_id].kind.name
        assert "bytecode pc" in str(error)
