"""Deoptless re-dispatch: continuation table, ladder interplay, breaker.

Covers the dispatch path end to end: a tripped guard re-dispatches into
a specialized continuation (keeping the optimized code installed and the
re-optimization budget untouched), the typeflow lattice pre-seeds the
variant table, a storm on one type-state evicts only that token's
variants, injected re-dispatch loops terminate through the cycle-budget
breaker with interpreter-identical results, and the sentinel refuses —
and poisons — spurious dispatches whose guard fact still holds.
"""

from repro.engine import Engine, EngineConfig
from repro.machine.continuations import (
    CONTINUATION_COMPILE_CYCLES,
    DISPATCH_CYCLES,
    RUNG_INTERP,
    ContinuationTable,
    fact_holds,
)
from repro.resilience.faults import Fault, FaultKind, FaultPlan
from repro.resilience.oracle import differential_run

SOURCE = "function f(x) { return x + 1; }"


def warmed(calls=40, **config_kwargs):
    engine = Engine(EngineConfig(**config_kwargs))
    engine.load(SOURCE)
    for _ in range(calls):
        engine.call_global("f", 1)
    shared = next(f for f in engine.functions if f.name == "f")
    assert shared.code is not None
    return engine, shared


def force_trip(engine, shared):
    while shared.code is None:
        if shared.optimization_disabled:
            return None
        engine.call_global("f", 1)
    engine.executor.forced_deopt_trips += 1
    return engine.call_global("f", 1)


class TestDispatch:
    def test_dispatch_keeps_optimized_code_installed(self):
        engine, shared = warmed()
        code = shared.code
        assert force_trip(engine, shared) == 2
        # Deoptless: the code object survives, no strike, no budget burn,
        # no tier-up counter reset cascade into a recompile.
        assert shared.code is code
        assert shared.reopt_count == 0
        assert shared.rung_strikes == {}
        assert shared.tier_rung == 0
        stats = engine.resilience_stats()
        assert stats["continuation_dispatches"] == 1
        assert stats["continuation_compiles"] == 1  # first miss compiled
        # The deopt itself is still fully accounted: event, trip counter,
        # per-function deopt count (cross-validation depends on these).
        assert shared.deopt_count == 1
        assert engine.deopt_events

    def test_second_dispatch_reuses_the_variant(self):
        engine, shared = warmed()
        force_trip(engine, shared)
        force_trip(engine, shared)
        cont = engine.continuations
        assert cont.dispatches == 2
        assert cont.lazy_compiles == 1  # compiled once, re-entered warm

    def test_dispatch_charges_cheaper_than_classic_bailout(self):
        assert DISPATCH_CYCLES + CONTINUATION_COMPILE_CYCLES < 250
        engine, shared = warmed()
        before = engine.buckets.get("deopt", 0.0)
        force_trip(engine, shared)
        force_trip(engine, shared)
        charged = engine.buckets["deopt"] - before
        assert charged == (2 * DISPATCH_CYCLES + CONTINUATION_COMPILE_CYCLES)

    def test_continuations_off_restores_classic_bailout(self):
        engine, shared = warmed(continuations=False)
        assert engine.continuations is None
        assert force_trip(engine, shared) == 2
        assert shared.code is None  # classic: discard and re-tier later
        assert shared.reopt_count == 1


class TestTable:
    def test_seed_harvests_typeflow_lattice_and_hits_warm(self):
        from repro.analysis.typeflow import analyze_typeflow
        from repro.suite.spec import get_benchmark

        spec = get_benchmark("CRC32")
        engine = Engine(EngineConfig())
        engine.load(spec.source)
        engine.call_global("setup")
        for i in range(12):
            engine.current_iteration = i
            engine.call_global("run")
        shared = next(f for f in engine.functions
                      if f.code is not None
                      and analyze_typeflow(f.code).plans)
        table = ContinuationTable(2000.0)
        table.seed(shared.index, shared.code)
        assert table.seeded  # the lattice named at least one type-state
        index, pc, token = next(iter(sorted(table.seeded)))
        cost = table.dispatch_cost(index, pc, token)
        # A seeded key dispatches warm: no lazy-compile charge.
        assert cost == DISPATCH_CYCLES
        assert table.seeded_hits == 1
        assert table.lazy_compiles == 0

    def test_token_eviction_spares_other_type_states(self):
        table = ContinuationTable(2000.0)
        table.variants[(0, 4, "!smi(r1)")] = 3
        table.variants[(0, 9, "!smi(r1)")] = 1
        table.variants[(0, 4, "!map(r2)")] = 2
        table.variants[(1, 4, "!smi(r1)")] = 5
        assert table.evict_token(0, "!smi(r1)") == 2
        # The storming token is gone at every pc of that function...
        assert (0, 4, "!smi(r1)") not in table.variants
        assert (0, 9, "!smi(r1)") not in table.variants
        # ...but tokens that never tripped, and other functions, survive.
        assert (0, 4, "!map(r2)") in table.variants
        assert (1, 4, "!smi(r1)") in table.variants

    def test_poisoned_lookup_recompiles_on_the_spot(self):
        engine, shared = warmed()
        force_trip(engine, shared)
        cont = engine.continuations
        assert cont.lazy_compiles == 1
        cont.poison_misses = 1  # what the POISON_VARIANT fault arms
        assert force_trip(engine, shared) == 2  # dispatch still succeeds
        assert cont.poisoned_lookups == 1
        assert cont.lazy_compiles == 2  # the lost variant was recompiled
        assert cont.evictions == 1


class TestFactHolds:
    def test_parity_fact(self):
        assert fact_holds(("par", 0, 0), [2], []) is True
        assert fact_holds(("par", 0, 0), [3], []) is False
        assert fact_holds(("par", 0, 1), [3], []) is True

    def test_regeq_fact(self):
        assert fact_holds(("regeq", 1, 7), [0, 7], []) is True
        assert fact_holds(("regeq", 1, 7), [0, 8], []) is False

    def test_map_fact_reads_the_heap(self):
        heap = [0, 0, 0, 0xBEEF]
        # regs[0] is a tagged pointer to address 2; disp 1 -> word 3.
        assert fact_holds(("map", 0, 1, 0xBEEF), [2 << 1], heap) is True
        assert fact_holds(("map", 0, 1, 0xDEAD), [2 << 1], heap) is False

    def test_unreadable_state_is_none_not_a_guess(self):
        assert fact_holds(("par", 5, 0), [1], []) is None  # reg OOB
        assert fact_holds(("map", 0, 99, 1), [0], []) is None  # heap OOB
        assert fact_holds(("wat", 1), [0], []) is None  # unknown tag


class TestLivelockBreaker:
    def test_breaker_terminates_an_unbounded_redispatch_loop(self):
        # A tiny budget plus a forced trip on EVERY optimized entry: only
        # the cycle-budget breaker can end the dispatch streaks, and the
        # ladder must then absorb the storm without ever wedging.
        engine, shared = warmed(redispatch_budget=100.0)
        cont = engine.continuations
        for _ in range(300):
            if shared.optimization_disabled:
                break
            result = force_trip(engine, shared)
            if result is not None:
                assert result == 2
        assert shared.optimization_disabled  # terminated, gracefully
        assert shared.tier_rung == RUNG_INTERP
        assert cont.breaker_trips >= 1
        assert cont.dispatches >= 1
        for _ in range(10):
            assert engine.call_global("f", 41) == 42

    def test_redispatch_loop_fault_is_interpreter_identical(self):
        # The injected guard re-arms itself after every dispatch; the run
        # must terminate through the breaker with bit-identical results.
        plan = FaultPlan("FIB", 0, (Fault(6, FaultKind.REDISPATCH_LOOP),))
        outcome = differential_run("FIB", "arm64", plan=plan, iterations=14)
        assert outcome.ok, outcome.mismatches
        assert outcome.error is None
        assert outcome.continuation_dispatches >= 1

    def test_clean_exit_resets_the_streak(self):
        engine, shared = warmed(redispatch_budget=100.0)
        cont = engine.continuations
        force_trip(engine, shared)
        assert cont.streaks  # streak open after a dispatch
        engine.call_global("f", 1)  # clean optimized exit
        assert not cont.streaks  # budget restored


class TestSentinelAudit:
    def test_spurious_dispatch_is_refused_and_poisoned(self, monkeypatch,
                                                       tmp_path):
        monkeypatch.setenv("REPRO_CHAOS_CONT", "spurious")
        monkeypatch.setenv("REPRO_BUNDLE_DIR", str(tmp_path))
        engine, shared = warmed(audit=True)
        assert force_trip(engine, shared) == 2  # refused, classic path
        sentinel = engine.executor._audit
        assert sentinel is not None
        assert sentinel.cont_audits == 1
        assert sentinel.cont_demotions == 1
        cont = engine.continuations
        assert shared.index in cont.demoted
        assert cont.dispatches == 0  # the dispatch never happened
        assert cont.spurious_dispatches == 1
        assert shared.reopt_count == 1  # the classic ladder saw the deopt
        bundles = list(tmp_path.glob("continuation-divergence-*.json"))
        assert bundles, "no continuation-divergence bundle captured"
        # Poisoned functions never dispatch again — fails closed.
        force_trip(engine, shared)
        assert cont.dispatches == 0
        assert sentinel.cont_audits == 1  # not even audited: refused early

    def test_unaudited_engine_dispatches_normally(self):
        engine, shared = warmed()  # audit off: no sentinel in the loop
        assert engine.executor._audit is None
        force_trip(engine, shared)
        assert engine.continuations.dispatches == 1
