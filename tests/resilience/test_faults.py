"""Fault plans and injector: determinism, spurious deopts, value preservation."""

from repro.engine import EngineConfig
from repro.resilience import Fault, FaultInjector, FaultKind, FaultPlan, plan_for
from repro.suite.runner import BenchmarkRunner, NoiseModel
from repro.suite.spec import get_benchmark


def quiet_runner(name, **config_kwargs):
    spec = get_benchmark(name)
    return BenchmarkRunner(spec, EngineConfig(**config_kwargs), NoiseModel(enabled=False))


class TestPlans:
    def test_same_arguments_same_plan(self):
        assert plan_for("FIB", 5, 30) == plan_for("FIB", 5, 30)

    def test_seed_changes_plan(self):
        assert plan_for("FIB", 0, 30) != plan_for("FIB", 1, 30)

    def test_benchmark_changes_plan(self):
        a = plan_for("FIB", 0, 30)
        b = plan_for("NBODY", 0, 30)
        assert (a.faults != b.faults) or (a.benchmark != b.benchmark)

    def test_two_anchored_trips(self):
        plan = plan_for("FIB", 0, 30)
        trips = [f for f in plan.faults if f.kind is FaultKind.TRIP_CHECK]
        assert [f.iteration for f in trips] == [10, 20]

    def test_describe_names_every_fault(self):
        plan = plan_for("FIB", 0, 30)
        text = plan.describe()
        for fault in plan.faults:
            assert f"{fault.kind.value}@{fault.iteration}" in text


class TestTripCheck:
    def test_forced_trip_is_a_real_eager_deopt(self):
        plan = FaultPlan("FIB", 0, (Fault(8, FaultKind.TRIP_CHECK),))
        runner = quiet_runner("FIB")
        faulted = runner.run(
            iterations=16, injector=FaultInjector(plan), collect_values=True
        )
        clean = quiet_runner("FIB").run(iterations=16, collect_values=True)
        eager = [d for d in faulted.deopts if d[0] >= 8]
        assert eager, "forced trip produced no eager deopt"
        # The spurious deopt transfers valid state: results are unchanged.
        assert faulted.values == clean.values
        assert faulted.valid

    def test_trip_is_noop_in_interpreter(self):
        plan = FaultPlan("FIB", 0, (Fault(3, FaultKind.TRIP_CHECK),))
        runner = quiet_runner("FIB", enable_optimizer=False)
        result = runner.run(iterations=8, injector=FaultInjector(plan), collect_values=True)
        assert result.deopts == []
        assert result.valid


class TestStateFaults:
    def test_every_fault_kind_reports_application(self):
        # NBODY has object and function globals; BITS has SMI globals.
        faults = tuple(
            Fault(4, kind, salt=i) for i, kind in enumerate(FaultKind)
        )
        plan = FaultPlan("NBODY", 0, faults)
        runner = quiet_runner("NBODY")
        injector = FaultInjector(plan)
        result = runner.run(iterations=10, injector=injector, collect_values=True)
        assert len(injector.applied) == len(faults)
        assert result.valid

    def test_faults_preserve_values(self):
        for name in ("NBODY", "BITS", "SPLAY"):
            plan = plan_for(name, 2, 14)
            faulted = quiet_runner(name).run(
                iterations=14, injector=FaultInjector(plan), collect_values=True
            )
            clean = quiet_runner(name).run(iterations=14, collect_values=True)
            assert faulted.values == clean.values, name
            assert faulted.valid, name

    def test_resilience_counters_in_run_result(self):
        plan = plan_for("FIB", 0, 14)
        result = quiet_runner("FIB").run(iterations=14, injector=FaultInjector(plan))
        stats = result.resilience
        assert stats is not None
        eager_total = sum(stats["eager_deopts_by_kind"].values())
        assert eager_total >= 1
        # Forced trips are absorbed by continuation dispatch now — they
        # no longer burn the re-optimization budget.
        assert stats["continuation_dispatches"] >= 1
