"""Lazy-deopt accounting stays consistent when assumptions die off-stack."""

from repro.engine import Engine, EngineConfig
from repro.resilience import Fault, FaultInjector, FaultKind, FaultPlan
from repro.suite.runner import BenchmarkRunner, NoiseModel
from repro.suite.spec import get_benchmark


class TestLazyDeoptEvents:
    def test_invalidation_while_off_stack_is_lazy_not_eager(self):
        source = """
        var data = [1, 2, 3, 4];
        function f() { return data[2]; }
        function poison() { data[0] = 0.5; }
        """
        engine = Engine(EngineConfig())
        engine.load(source)
        for _ in range(40):
            engine.call_global("f")
        shared = next(fn for fn in engine.functions if fn.name == "f")
        assert shared.code is not None
        engine.call_global("poison")  # assumption dies with f off-stack
        assert shared.code.invalidated
        lazy_before = engine.lazy_deopts
        compilations_before = engine.compilations
        eager_before = len(engine.deopt_events)
        assert engine.call_global("f") == 3
        # The invalidation is booked exactly once, as a lazy event.
        assert engine.lazy_deopts == lazy_before + 1
        assert engine.lazy_deopts == len(engine.lazy_deopt_events)
        assert engine.lazy_deopt_events[-1].function_name == "f"
        # The still-hot function may re-tier immediately and take a real
        # eager deopt from its fresh code; any new eager event must come
        # from such a recompilation, never from the invalidation itself.
        if len(engine.deopt_events) > eager_before:
            assert engine.compilations > compilations_before

    def test_lazy_accounting_under_fault_injection(self):
        plan = FaultPlan(
            "NBODY",
            0,
            (
                Fault(4, FaultKind.INVALIDATE_CODE),
                Fault(8, FaultKind.INVALIDATE_CODE, salt=1),
            ),
        )
        spec = get_benchmark("NBODY")
        runner = BenchmarkRunner(spec, EngineConfig(), NoiseModel(enabled=False))
        injector = FaultInjector(plan)
        result = runner.run(iterations=12, injector=injector, collect_values=True)
        engine = runner.last_engine
        assert engine.lazy_deopts == len(engine.lazy_deopt_events)
        assert engine.lazy_deopts >= 1
        assert result.valid
        # Every recorded lazy event names a real function and a sane cycle.
        names = {fn.name for fn in engine.functions}
        for event in engine.lazy_deopt_events:
            assert event.function_name in names
            assert 0 <= event.iteration < 12
            assert event.cycle >= 0
        assert result.resilience["lazy_deopts"] == engine.lazy_deopts
