"""N-way tier matrix: ladder composition, agreement, seeded tampering."""

from __future__ import annotations

import pytest

from repro.engine import Engine, EngineConfig
from repro.resilience.faults import FaultPlan
from repro.resilience.oracle import (
    EXECUTOR_LADDER,
    LADDER_BY_NAME,
    MatrixOutcome,
    matrix_run,
    snapshot_globals,
)
from repro.suite.spec import get_benchmark


class TestLadder:
    def test_seven_tiers_in_escalation_order(self):
        names = [tier.name for tier in EXECUTOR_LADDER]
        assert names == [
            "interp", "opt", "block", "typed", "trace", "lbbv", "deoptless",
        ]
        assert set(LADDER_BY_NAME) == set(names)

    def test_interp_tier_disables_everything(self):
        config = LADDER_BY_NAME["interp"].apply(EngineConfig())
        assert config.enable_optimizer is False

    def test_tiers_pin_executors_against_env(self, monkeypatch):
        """Explicit tier flags must override ambient REPRO_* defaults."""
        monkeypatch.setenv("REPRO_LBBV", "1")
        config = LADDER_BY_NAME["block"].apply(EngineConfig())
        assert config.lbbv is False

    def test_deopt_streams_not_compared_at_the_ends(self):
        # interp never deopts; deoptless legitimately diverts eager
        # deopts into continuation dispatches — neither can anchor the
        # deopt-stream comparison.
        assert not LADDER_BY_NAME["interp"].compare_deopts
        assert not LADDER_BY_NAME["deoptless"].compare_deopts
        for name in ("opt", "block", "typed", "trace", "lbbv"):
            assert LADDER_BY_NAME[name].compare_deopts


class TestMatrixRun:
    @pytest.mark.parametrize("name", ["FIB", "JSONLIKE"])
    def test_suite_benchmark_agrees_across_ladder(self, name):
        outcome = matrix_run(get_benchmark(name), iterations=8)
        assert isinstance(outcome, MatrixOutcome)
        assert outcome.ok, outcome.mismatches
        assert set(outcome.tiers) == set(LADDER_BY_NAME)

    def test_tamper_forces_named_tier_mismatch(self):
        def tamper(tier_name, values):
            if tier_name == "typed" and values:
                values[-1] = -1.5
            return values

        outcome = matrix_run(
            get_benchmark("FIB"), iterations=8, capture=False, tamper=tamper
        )
        assert not outcome.ok
        assert any(line.startswith("[typed]") for line in outcome.mismatches)
        assert not outcome.tiers["typed"].ok
        assert outcome.tiers["block"].ok

    def test_fault_plan_threads_through_every_tier(self):
        plan = FaultPlan(benchmark="FIB", seed=3, faults=())
        outcome = matrix_run(
            get_benchmark("FIB"), plan=plan, iterations=6, capture=False
        )
        assert outcome.seed == 3
        assert outcome.ok


class TestSnapshotGlobals:
    def test_sorted_and_canonical(self):
        engine = Engine(EngineConfig(enable_optimizer=False))
        engine.load("var zz = 1; var aa = 2.0; function f() { return 0; }")
        snapshot = snapshot_globals(engine)
        assert list(snapshot) == sorted(snapshot)
        assert "aa" in snapshot and "zz" in snapshot

    def test_integral_double_and_int_agree(self):
        first = Engine(EngineConfig(enable_optimizer=False))
        first.load("var x = 2;")
        second = Engine(EngineConfig(enable_optimizer=False))
        second.load("var x = 2.0;")
        assert snapshot_globals(first) == snapshot_globals(second)
