"""Differential oracle: canonical forms, end-to-end equality, sensitivity."""

import pytest

from repro.resilience import canonical_value, differential_run
from repro.resilience.oracle import _chaos_run, snapshot_globals
from repro.resilience.faults import FaultInjector, FaultPlan


class TestCanonicalValue:
    def test_int_and_float_of_same_value_agree(self):
        assert canonical_value(6) == canonical_value(6.0)

    def test_minus_zero_is_distinct(self):
        assert canonical_value(0.0) != canonical_value(-0.0)

    def test_bool_is_not_a_number(self):
        assert canonical_value(True) != canonical_value(1)

    def test_containers_recurse(self):
        assert canonical_value([1, 2.0]) == canonical_value([1.0, 2])
        assert canonical_value({"a": 1}) == canonical_value({"a": 1.0})
        assert canonical_value({"a": 1}) != canonical_value({"a": 2})

    def test_strings_and_none(self):
        assert canonical_value("x") != canonical_value("y")
        assert canonical_value(None) != canonical_value(0)


class TestDifferentialRun:
    @pytest.mark.parametrize(
        "bench,target",
        [("FIB", "arm64"), ("NBODY", "x64"), ("SPLAY", "arm64"), ("CRC32", "x64")],
    )
    def test_oracle_holds_under_canonical_plan(self, bench, target):
        outcome = differential_run(bench, target, seed=0, iterations=18)
        assert outcome.error is None
        assert outcome.ok, outcome.mismatches
        assert outcome.eager_deopts >= 1  # the anchored trips engaged
        assert outcome.faults_applied

    def test_outcome_carries_resilience_counters(self):
        outcome = differential_run("FIB", "arm64", seed=0, iterations=18)
        assert "eager_deopts_by_kind" in outcome.resilience
        # The anchored trips are absorbed deoptlessly: dispatched, not
        # burned against the re-optimization budget.
        assert outcome.continuation_dispatches >= 1
        assert outcome.resilience["storm_disabled"] == []


class _CorruptingInjector(FaultInjector):
    """Diverges on the optimized engine only — the oracle must catch it."""

    def before_iteration(self, engine, iteration):
        super().before_iteration(engine, iteration)
        if iteration == 5 and engine.config.enable_optimizer:
            from repro.values.tagged import is_smi

            for name in engine.user_global_names():
                word = engine.get_global_word(name)
                if word is not None and is_smi(word):
                    engine.set_global_word(name, engine.heap.to_word(7))
                    return


class TestSensitivity:
    def test_oracle_detects_engine_only_divergence(self, monkeypatch):
        import repro.resilience.oracle as oracle_module

        # PRIMES keeps its sieve LIMIT in an SMI global that run() reads.
        monkeypatch.setattr(oracle_module, "FaultInjector", _CorruptingInjector)
        outcome = differential_run("PRIMES", "arm64", seed=0, iterations=12)
        assert not outcome.ok
        assert outcome.mismatches or outcome.error

    def test_snapshot_covers_user_globals(self):
        from repro.engine import EngineConfig
        from repro.suite.spec import get_benchmark

        plan = FaultPlan("NBODY", 0, ())
        _result, engine, _inj = _chaos_run(
            get_benchmark("NBODY"), EngineConfig(), plan, 4
        )
        snapshot = snapshot_globals(engine)
        assert snapshot  # NBODY defines globals
        assert set(snapshot) == set(engine.user_global_names())
