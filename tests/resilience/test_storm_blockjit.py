"""Degradation-ladder descent × the block-compiled fast tier.

A descending function must not keep any stale tier artifacts alive:
every ladder rung drops ``code._blocks``, ``code._traces`` AND the
cached ``code._typeflow`` analysis the typed variants compile from, and
a function that bottoms out runs interpreter-only from then on with
identical results to a never-compiled engine.

``continuations=False`` throughout: these tests exercise the classic
bailout ladder, not the deoptless dispatch path
(``tests/resilience/test_continuations.py`` covers that).
"""

from repro.engine import Engine, EngineConfig
from repro.machine.continuations import RUNG_INTERP, RUNG_STEPPED

SOURCE = "function f(x) { return x + 1; }"


def warmed_blockjit(calls=40, tracejit=None, **config_kwargs):
    config_kwargs.setdefault("continuations", False)
    engine = Engine(EngineConfig(blockjit=True, tracejit=tracejit,
                                 **config_kwargs))
    engine.load(SOURCE)
    for _ in range(calls):
        engine.call_global("f", 1)
    shared = next(fn for fn in engine.functions if fn.name == "f")
    assert shared.code is not None
    return engine, shared


def trip_once(engine, shared):
    """Re-tier if needed, materialize the fused block table, then force a
    deopt.  Returns the code object the deopt landed on (None once the
    function is permanently disabled)."""
    while shared.code is None:
        if shared.optimization_disabled:
            return None
        engine.call_global("f", 1)
    code = shared.code
    engine.call_global("f", 1)  # clean call: compiles the block table
    if shared.tier_rung < RUNG_STEPPED:
        assert code._blocks is not None
    engine.executor.forced_deopt_trips += 1
    assert engine.call_global("f", 1) == 2  # semantics survive the deopt
    return code


def drive_to_disable(engine, shared, bound=100):
    last_code = None
    for _ in range(bound):
        if shared.optimization_disabled:
            return last_code
        code = trip_once(engine, shared)
        if code is not None:
            last_code = code
    raise AssertionError(f"ladder never bottomed out in {bound} trips")


def test_final_descent_invalidates_compiled_blocks():
    engine, shared = warmed_blockjit()
    last_code = drive_to_disable(engine, shared)
    assert shared.optimization_disabled
    assert shared.tier_rung == RUNG_INTERP
    assert last_code is not None
    assert last_code._blocks is None  # stale fused closures are dropped
    assert last_code._typeflow is None  # cached type analysis too
    assert shared.code is None  # never re-tiers


def test_ladder_descent_drops_compiled_traces(monkeypatch):
    """Regression (extended from the PR 5 storm x blockjit test): a rung
    descent must drop ``code._blocks``, the promoted trace table in
    ``code._traces`` (whose chains anchor into the dead block table) AND
    the cached ``code._typeflow`` result — and the no-trace rung must
    never re-form traces on recompiled code."""
    monkeypatch.setenv("REPRO_TRACEJIT_BUDGET", "20")
    monkeypatch.setenv("REPRO_TRACEJIT_HOT", "2")
    monkeypatch.setenv("REPRO_TRACEJIT_ENTRY", "2")
    engine, shared = warmed_blockjit(tracejit=True)
    last_code = None
    for _ in range(engine.config.storm_strikes):
        while shared.code is None:
            engine.call_global("f", 1)
        last_code = shared.code
        engine.call_global("f", 1)  # clean call: compiles blocks + traces
        assert last_code._blocks is not None
        assert last_code._traces is not None  # trace tier was really live
        engine.executor.forced_deopt_trips += 1
        assert engine.call_global("f", 1) == 2
    assert shared.tier_rung == 1  # first descent: the no-trace rung
    assert last_code._blocks is None
    assert last_code._traces is None  # stale traces are dropped too
    assert last_code._typeflow is None
    # Recompiles on the no-trace rung run fused blocks but never chain
    # traces over them again.
    while shared.code is None:
        engine.call_global("f", 1)
    for _ in range(5):
        engine.call_global("f", 1)
    assert shared.code._blocks is not None
    assert shared.code._traces is None
    for _ in range(10):
        assert engine.call_global("f", 41) == 42


def test_bottomed_out_function_runs_interpreter_only_and_identically():
    engine, shared = warmed_blockjit()
    drive_to_disable(engine, shared)

    reference = Engine(EngineConfig(enable_optimizer=False))
    reference.load(SOURCE)
    for argument in range(-5, 50):
        assert engine.call_global("f", argument) == reference.call_global(
            "f", argument
        )
    assert shared.code is None  # stayed interpreter-only throughout


def test_every_rung_descent_drops_block_versions():
    """Each ladder descent must drop ``code._versions`` alongside
    ``_blocks``/``_traces``/``_typeflow``: version bodies and rechained
    edges jump into driver slots of the dead block table, so a stale
    version table on a recompiled code object would dispatch into
    freed closures."""
    engine, shared = warmed_blockjit(lbbv=True)
    descents = 0
    for _ in range(200):
        if shared.optimization_disabled:
            break
        rung = shared.tier_rung
        dropped = None
        while shared.tier_rung == rung and not shared.optimization_disabled:
            code = trip_once(engine, shared)
            if code is not None:
                dropped = code
                if code._blocks is not None:
                    # lbbv attaches on every fused run (inactive past
                    # rung 2, but always present to be torn down)
                    assert code._versions is not None
        descents += 1
        assert dropped is not None
        assert dropped._versions is None  # dropped on THIS descent
        assert dropped._blocks is None
        assert dropped._traces is None
        assert dropped._typeflow is None
    assert shared.optimization_disabled
    assert shared.tier_rung == RUNG_INTERP
    assert descents == RUNG_INTERP  # one descent per rung, all checked


def test_storm_disabled_lbbv_function_runs_interpreter_identically():
    """A function that bottoms out with the versioning tier armed runs
    interpreter-only from then on, bit-identical to a never-compiled
    engine (mirrors the PR 5 storm x blockjit guarantee)."""
    engine, shared = warmed_blockjit(lbbv=True)
    last_code = drive_to_disable(engine, shared)
    assert shared.optimization_disabled
    assert last_code is not None
    assert last_code._versions is None

    reference = Engine(EngineConfig(enable_optimizer=False))
    reference.load(SOURCE)
    for argument in range(-5, 50):
        assert engine.call_global("f", argument) == reference.call_global(
            "f", argument
        )
    assert shared.code is None  # stayed interpreter-only throughout


def test_reopt_budget_exhaustion_descends_with_distinct_counters():
    """Budget exhaustion rides the same ladder as storms but keeps its
    own books: ``budget_exhaustions``/``budget_disabled``, never
    ``storms_detected``/``storm_disabled``."""
    engine, shared = warmed_blockjit(storm_strikes=99, max_reoptimizations=2,
                                     tracejit=True)
    last_code = drive_to_disable(engine, shared)
    assert shared.optimization_disabled
    assert last_code is not None
    assert last_code._blocks is None
    assert last_code._traces is None
    assert last_code._typeflow is None
    stats = engine.resilience_stats()
    assert stats["budget_exhaustions"] == RUNG_INTERP  # one per rung
    assert [name for name, _ in stats["budget_disabled"]] == ["f"]
    assert stats["storms_detected"] == 0
    assert stats["storm_disabled"] == []
    assert all(cause == "budget" for _, _, cause, _ in stats["ladder_descents"])
    for _ in range(20):
        assert engine.call_global("f", 41) == 42
