"""Deopt-storm permanent disable × the block-compiled fast tier.

A storm-disabled function must not keep any stale fused blocks — or
stale compiled traces — alive: the engine drops ``code._blocks`` AND
``code._traces`` when it turns speculation off, and the function runs
interpreter-only from then on with identical results to a never-compiled
engine.
"""

from repro.engine import Engine, EngineConfig

SOURCE = "function f(x) { return x + 1; }"


def warmed_blockjit(calls=40, tracejit=None, **config_kwargs):
    engine = Engine(EngineConfig(blockjit=True, tracejit=tracejit,
                                 **config_kwargs))
    engine.load(SOURCE)
    for _ in range(calls):
        engine.call_global("f", 1)
    shared = next(fn for fn in engine.functions if fn.name == "f")
    assert shared.code is not None
    return engine, shared


def trip_once(engine, shared):
    """Re-tier if needed, materialize the fused block table, then force a
    deopt.  Returns the code object the deopt landed on (None once the
    function is permanently disabled)."""
    while shared.code is None:
        if shared.optimization_disabled:
            return None
        engine.call_global("f", 1)
    code = shared.code
    engine.call_global("f", 1)  # clean call: compiles the block table
    assert code._blocks is not None
    engine.executor.forced_deopt_trips += 1
    assert engine.call_global("f", 1) == 2  # semantics survive the deopt
    return code


def test_storm_disable_invalidates_compiled_blocks():
    engine, shared = warmed_blockjit()
    last_code = None
    for _ in range(engine.config.storm_strikes):
        code = trip_once(engine, shared)
        if code is not None:
            last_code = code
    assert shared.optimization_disabled
    assert last_code is not None
    assert last_code._blocks is None  # stale fused closures are dropped
    assert shared.code is None  # never re-tiers


def test_storm_disable_also_drops_compiled_traces(monkeypatch):
    """Regression: the storm strike used to drop only ``code._blocks``,
    leaving a promoted trace table (and its anchors into the dead block
    table) reachable through ``code._traces``."""
    monkeypatch.setenv("REPRO_TRACEJIT_BUDGET", "20")
    monkeypatch.setenv("REPRO_TRACEJIT_HOT", "2")
    monkeypatch.setenv("REPRO_TRACEJIT_ENTRY", "2")
    engine, shared = warmed_blockjit(tracejit=True)
    last_code = None
    for _ in range(engine.config.storm_strikes):
        while shared.code is None and not shared.optimization_disabled:
            engine.call_global("f", 1)
        if shared.code is None:
            break
        code = shared.code
        engine.call_global("f", 1)  # clean call: compiles blocks + traces
        assert code._blocks is not None
        assert code._traces is not None  # trace tier was really live
        engine.executor.forced_deopt_trips += 1
        assert engine.call_global("f", 1) == 2
        last_code = code
    assert shared.optimization_disabled
    assert last_code is not None
    assert last_code._blocks is None
    assert last_code._traces is None  # stale traces are dropped too
    for _ in range(10):
        assert engine.call_global("f", 41) == 42


def test_storm_disabled_function_runs_interpreter_only_and_identically():
    engine, shared = warmed_blockjit()
    while not shared.optimization_disabled:
        trip_once(engine, shared)

    reference = Engine(EngineConfig(enable_optimizer=False))
    reference.load(SOURCE)
    for argument in range(-5, 50):
        assert engine.call_global("f", argument) == reference.call_global(
            "f", argument
        )
    assert shared.code is None  # stayed interpreter-only throughout


def test_reopt_budget_exhaustion_also_drops_blocks():
    engine, shared = warmed_blockjit(storm_strikes=99, max_reoptimizations=2,
                                     tracejit=True)
    last_code = None
    for _ in range(40):
        if shared.optimization_disabled:
            break
        code = trip_once(engine, shared)
        if code is not None:
            last_code = code
    assert shared.optimization_disabled
    assert last_code is not None
    assert last_code._blocks is None
    assert last_code._traces is None
    for _ in range(20):
        assert engine.call_global("f", 41) == 42
