"""Statistics toolkit tests."""

import math
import random

import pytest

from repro.stats.analysis import (
    bonferroni_alpha,
    bootstrap_interval,
    compare_populations,
    geometric_mean,
    linear_regression,
    pearson_correlation,
    summarize,
)


class TestRegression:
    def test_exact_line(self):
        xs = [1, 2, 3, 4, 5]
        ys = [2 * x + 1 for x in xs]
        result = linear_regression(xs, ys)
        assert result.slope == pytest.approx(2.0)
        assert result.intercept == pytest.approx(1.0)
        assert result.r_squared == pytest.approx(1.0)

    def test_noisy_line_ci_contains_truth(self):
        rng = random.Random(1)
        xs = [i / 10 for i in range(50)]
        ys = [3 * x + rng.gauss(0, 0.2) for x in xs]
        result = linear_regression(xs, ys)
        low, high = result.slope_ci
        assert low < 3.0 < high
        assert 0.9 < result.r_squared <= 1.0

    def test_rejects_degenerate_input(self):
        with pytest.raises(ValueError):
            linear_regression([1, 1, 1], [1, 2, 3])
        with pytest.raises(ValueError):
            linear_regression([1, 2], [1, 2])

    def test_predict(self):
        result = linear_regression([0, 1, 2], [0, 2, 4])
        assert result.predict(10) == pytest.approx(20.0)


class TestCorrelation:
    def test_perfect_positive(self):
        result = pearson_correlation([1, 2, 3, 4], [2, 4, 6, 8])
        assert result.r == pytest.approx(1.0)
        assert result.significant

    def test_independent_data_weak_correlation(self):
        rng = random.Random(11)
        xs = [rng.random() for _ in range(200)]
        ys = [rng.random() for _ in range(200)]
        result = pearson_correlation(xs, ys)
        assert abs(result.r) < 0.2
        assert not result.significant

    def test_r_squared_consistency(self):
        result = pearson_correlation([1, 2, 3, 9], [1, 3, 2, 8])
        assert result.r_squared == pytest.approx(result.r**2)


class TestSignificance:
    def test_bonferroni(self):
        assert bonferroni_alpha(10) == pytest.approx(0.005)
        assert bonferroni_alpha(1) == pytest.approx(0.05)
        assert bonferroni_alpha(0) == pytest.approx(0.05)

    def test_clear_difference_is_practically_significant(self):
        rng = random.Random(3)
        slower = [100 + rng.gauss(0, 1) for _ in range(30)]
        faster = [90 + rng.gauss(0, 1) for _ in range(30)]
        result = compare_populations(slower, faster, test_count=5)
        assert result.statistically_significant
        assert result.practically_significant
        assert result.effect == pytest.approx(100 / 90 - 1, rel=0.05)

    def test_tiny_effect_not_practical(self):
        """Statistically significant but below the paper's 2 % threshold."""
        rng = random.Random(4)
        slower = [100.5 + rng.gauss(0, 0.05) for _ in range(40)]
        faster = [100.0 + rng.gauss(0, 0.05) for _ in range(40)]
        result = compare_populations(slower, faster)
        assert result.statistically_significant
        assert not result.practically_significant

    def test_identical_populations_not_significant(self):
        values = [100.0] * 10
        result = compare_populations(values, list(values))
        assert not result.statistically_significant

    def test_unpaired_lengths_use_ranksums(self):
        result = compare_populations([10] * 12, [9] * 9)
        assert 0 <= result.p_value <= 1


class TestBootstrap:
    def test_interval_contains_mean(self):
        rng = random.Random(5)
        values = [rng.gauss(50, 5) for _ in range(60)]
        low, high = bootstrap_interval(values, seed=9)
        mean = sum(values) / len(values)
        assert low <= mean <= high
        assert high - low < 5

    def test_deterministic_given_seed(self):
        values = [1.0, 2.0, 3.0, 4.0]
        assert bootstrap_interval(values, seed=1) == bootstrap_interval(values, seed=1)

    def test_empty_input(self):
        assert bootstrap_interval([]) == (0.0, 0.0)


class TestSummaries:
    def test_geometric_mean(self):
        assert geometric_mean([1, 4]) == pytest.approx(2.0)
        assert geometric_mean([]) == 0.0
        assert geometric_mean([2, 0, 8]) == pytest.approx(4.0)  # ignores <= 0

    def test_summarize_quartiles(self):
        stats = summarize(range(1, 101))
        assert stats["median"] == pytest.approx(50.5)
        assert stats["p25"] == pytest.approx(25.75)
        assert stats["min"] == 1 and stats["max"] == 100

    def test_summarize_empty(self):
        assert summarize([])["mean"] == 0.0
