"""Benchmark-suite validation: every benchmark, every target."""

import pytest

from repro.engine import EngineConfig
from repro.jit.checks import CheckKind
from repro.suite import (
    BenchmarkRunner,
    CATEGORIES,
    NoiseModel,
    all_benchmarks,
    benchmarks_by_category,
    determine_removable_kinds,
    get_benchmark,
    run_benchmark,
    smi_kernels,
)

ALL = all_benchmarks()


class TestRegistry:
    def test_suite_size(self):
        assert len(ALL) >= 28  # JetStream2-like breadth

    def test_every_category_populated(self):
        for category in CATEGORIES:
            assert benchmarks_by_category(category), category

    def test_gem5_subset_matches_paper(self):
        names = {s.name for s in smi_kernels()}
        # Section V's kernels: SPMV, MMUL, IM2COL, SPMM, BLUR, AES2, HASH, DP
        assert {
            "SPMV-CSR-SMI", "MMUL", "IM2COL", "SPMM", "BLUR", "AES2", "HASH", "DP"
        } <= names

    def test_lookup(self):
        assert get_benchmark("DP").category == "Sparse"


@pytest.mark.parametrize("spec", ALL, ids=lambda s: s.name)
def test_benchmark_valid_on_arm64(spec):
    result = BenchmarkRunner(spec, EngineConfig(target="arm64")).run(iterations=10)
    assert result.valid, result.result
    assert result.code_stats["body_instructions"] > 0 or spec.category == "Regex"


@pytest.mark.slow
@pytest.mark.parametrize("target", ["x64", "arm64+smi"])
@pytest.mark.parametrize("spec", ALL, ids=lambda s: s.name)
def test_benchmark_valid_on_other_targets(spec, target):
    result = BenchmarkRunner(spec, EngineConfig(target=target)).run(iterations=10)
    assert result.valid, result.result


class TestRunnerMechanics:
    def test_reps_are_consistent(self):
        spec = get_benchmark("PRIMES")
        results = run_benchmark(
            spec, EngineConfig(), iterations=10, reps=3, noise=NoiseModel(enabled=True)
        )
        assert len(results) == 3
        assert all(r.valid for r in results)
        assert len({r.result for r in results}) == 1

    def test_noise_changes_timings_not_results(self):
        spec = get_benchmark("PRIMES")
        results = run_benchmark(
            spec, EngineConfig(), iterations=10, reps=2, noise=NoiseModel(enabled=True)
        )
        assert results[0].cycles != results[1].cycles
        assert results[0].result == results[1].result

    def test_noiseless_runs_are_deterministic(self):
        spec = get_benchmark("DP")
        runner_a = BenchmarkRunner(spec, EngineConfig(), NoiseModel(enabled=False))
        runner_b = BenchmarkRunner(spec, EngineConfig(), NoiseModel(enabled=False))
        assert runner_a.run(iterations=8).cycles == runner_b.run(iterations=8).cycles

    def test_steady_state_faster_than_first_iteration(self):
        spec = get_benchmark("MANDEL")
        result = BenchmarkRunner(spec, EngineConfig(), NoiseModel(enabled=False)).run(
            iterations=25
        )
        assert result.steady_state_cycles < result.cycles[0]


class TestCheckRemoval:
    def test_removable_kinds_exclude_fired(self):
        spec = get_benchmark("SPMV-CSR-SMI")
        removable, leftovers = determine_removable_kinds(
            spec, EngineConfig(), iterations=20
        )
        assert removable | leftovers  # non-empty union of eager kinds
        assert not (removable & leftovers)

    def test_removal_is_faster_and_valid(self):
        spec = get_benchmark("DP")
        removable, _ = determine_removable_kinds(spec, EngineConfig(), iterations=20)
        base = BenchmarkRunner(spec, EngineConfig(), NoiseModel(enabled=False)).run(
            iterations=25
        )
        removed = BenchmarkRunner(
            spec,
            EngineConfig(removed_checks=removable),
            NoiseModel(enabled=False),
        ).run(iterations=25)
        assert removed.valid
        assert removed.result == base.result
        assert removed.steady_state_cycles < base.steady_state_cycles
