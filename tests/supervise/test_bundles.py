"""Crash bundles: content addressing, atomicity, run context, gating."""

import json

import pytest

from repro.supervise.bundles import (
    bundle_digest,
    bundles_enabled,
    capture_bundle,
    clear_run_context,
    list_bundles,
    load_bundle,
    serialize_plan,
    set_run_context,
)


@pytest.fixture(autouse=True)
def _clean_context():
    yield
    clear_run_context()


class TestContentAddressing:
    def test_same_payload_same_bundle(self, tmp_path):
        first = capture_bundle("divergence", {"a": 1}, root=tmp_path)
        second = capture_bundle("divergence", {"a": 1}, root=tmp_path)
        assert first == second
        assert len(list(tmp_path.glob("*.json"))) == 1

    def test_volatile_keys_do_not_change_the_digest(self):
        a = bundle_digest({"kind": "x", "a": 1, "captured_at": "now", "pid": 1})
        b = bundle_digest({"kind": "x", "a": 1, "captured_at": "later", "pid": 2})
        assert a == b

    def test_different_payloads_get_different_files(self, tmp_path):
        first = capture_bundle("divergence", {"a": 1}, root=tmp_path)
        second = capture_bundle("divergence", {"a": 2}, root=tmp_path)
        assert first != second

    def test_filename_carries_kind_and_digest(self, tmp_path):
        path = capture_bundle("oracle-failure", {"b": 3}, root=tmp_path)
        assert path.name.startswith("oracle-failure-")
        record = load_bundle(path)
        assert record["bundle_id"] == path.stem
        assert record["kind"] == "oracle-failure"


class TestAtomicityAndHygiene:
    def test_no_temp_files_left_behind(self, tmp_path):
        capture_bundle("divergence", {"a": 1}, root=tmp_path)
        leftovers = [p for p in tmp_path.iterdir() if not p.name.endswith(".json")]
        assert leftovers == []

    def test_bundle_is_valid_json_with_schema(self, tmp_path):
        path = capture_bundle("divergence", {"a": 1}, root=tmp_path)
        record = json.loads(path.read_text())
        assert record["schema"] == 1
        assert "captured_at" in record and "pid" in record

    def test_capture_survives_unwritable_root(self, tmp_path):
        # chmod is no barrier under root; a path through a *file* reliably
        # fails mkdir on every platform and uid.
        blocker = tmp_path / "file"
        blocker.write_text("")
        assert capture_bundle(
            "divergence", {"a": 1}, root=blocker / "sub"
        ) is None

    def test_disabled_by_env(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_BUNDLES", "0")
        assert not bundles_enabled()
        assert capture_bundle("divergence", {"a": 1}, root=tmp_path) is None
        assert list_bundles(tmp_path) == []


class TestRunContext:
    def test_context_is_merged_into_captures(self, tmp_path):
        set_run_context(benchmark="FIB", rep=3)
        path = capture_bundle("engine-exception", {"error": "boom"}, root=tmp_path)
        record = load_bundle(path)
        assert record["benchmark"] == "FIB"
        assert record["rep"] == 3

    def test_payload_beats_context(self, tmp_path):
        set_run_context(benchmark="FIB")
        path = capture_bundle(
            "engine-exception", {"benchmark": "DP", "error": "x"}, root=tmp_path
        )
        assert load_bundle(path)["benchmark"] == "DP"

    def test_clear_removes_only_named_keys(self, tmp_path):
        set_run_context(benchmark="FIB", rep=1)
        clear_run_context("rep")
        path = capture_bundle("engine-exception", {"error": "x"}, root=tmp_path)
        record = load_bundle(path)
        assert record["benchmark"] == "FIB"
        assert "rep" not in record


class TestSerializePlan:
    def test_none_plan(self):
        assert serialize_plan(None) is None

    def test_plan_round_trip_shape(self):
        from repro.resilience.faults import plan_for

        plan = plan_for("FIB", seed=7, iterations=20)
        record = serialize_plan(plan)
        assert record["benchmark"] == "FIB"
        assert record["seed"] == plan.seed
        for iteration, kind, salt in record["faults"]:
            assert isinstance(iteration, int)
            assert isinstance(kind, str)


class TestEngineExceptionCapture:
    def test_runner_failure_captures_bundle(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_BUNDLE_DIR", str(tmp_path))
        from repro.engine import EngineConfig
        from repro.suite.runner import BenchmarkRunner
        from repro.suite.spec import get_benchmark

        class Bomb:
            def before_iteration(self, engine, iteration):
                if iteration == 3:
                    raise RuntimeError("injected failure")

        runner = BenchmarkRunner(get_benchmark("FIB"), EngineConfig())
        with pytest.raises(RuntimeError):
            runner.run(iterations=6, injector=Bomb())
        bundles = [
            p for p in list_bundles(tmp_path)
            if p.name.startswith("engine-exception-")
        ]
        assert len(bundles) == 1
        record = load_bundle(bundles[0])
        assert record["benchmark"] == "FIB"
        assert "injected failure" in record["error"]
        assert "RuntimeError" in record["traceback"]
