"""The python -m repro.supervise CLI: list, replay, inject."""

import os

import pytest

from repro.supervise.__main__ import main


@pytest.fixture
def inject_env(tmp_path):
    """Sandbox the env mutations the inject subcommand makes.

    ``inject`` writes straight to ``os.environ`` (correct for a real CLI
    process, which exits afterwards); running it in-process would leak
    REPRO_AUDIT into later tests without the explicit restore here.
    """
    keys = ("REPRO_AUDIT", "REPRO_CHAOS_AUDIT", "REPRO_BUNDLE_DIR")
    saved = {key: os.environ.pop(key, None) for key in keys}
    yield tmp_path / "crashes"
    for key, value in saved.items():
        if value is None:
            os.environ.pop(key, None)
        else:
            os.environ[key] = value


def test_list_empty_dir(tmp_path, capsys):
    assert main(["list", "--bundle-dir", str(tmp_path)]) == 0
    assert "no crash bundles" in capsys.readouterr().out


def test_inject_then_list_then_replay(inject_env, capsys):
    bundle_dir = inject_env
    code = main([
        "inject", "FIB", "--iterations", "14", "--interval", "7",
        "--bundle-dir", str(bundle_dir),
    ])
    out = capsys.readouterr()
    assert code == 0, out.err
    bundle_path = out.out.strip().splitlines()[-1]
    assert "divergence-" in bundle_path
    assert "demoted" in out.err

    assert main(["list", "--bundle-dir", str(bundle_dir)]) == 0
    assert "divergence" in capsys.readouterr().out

    assert main(["replay", bundle_path]) == 0
    assert "REPRODUCED" in capsys.readouterr().out


def test_replay_missing_bundle(capsys):
    assert main(["replay", "no-such-bundle.json"]) == 2
    assert "no such bundle" in capsys.readouterr().err
