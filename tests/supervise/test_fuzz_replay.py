"""fuzz-divergence bundles: capture, deterministic replay, minimization."""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.fuzz.generator import fuzz_case_seed, generate_program
from repro.fuzz.oracle import run_fuzz_program, source_digest
from repro.supervise.bundles import load_bundle
from repro.supervise.replay import replay_bundle


@pytest.fixture
def divergence_bundle(monkeypatch) -> Path:
    """A real seeded divergence, captured through the live pipeline."""
    monkeypatch.setenv("REPRO_CHAOS_FUZZ", "flip:typed")
    program = generate_program(fuzz_case_seed(1, 0))
    verdict = run_fuzz_program(program, targets=("arm64",))
    assert not verdict.ok and verdict.bundle_paths
    return Path(verdict.bundle_paths[0])


def test_replay_reproduces_seeded_divergence(divergence_bundle, monkeypatch):
    # the ambient chaos env is gone; replay must restore it from the
    # bundle record to make the divergence recur
    monkeypatch.delenv("REPRO_CHAOS_FUZZ", raising=False)
    result = replay_bundle(divergence_bundle)
    assert result.reproduced
    assert "diverged across the tier matrix again" in result.detail


def test_replay_refuses_stale_generator(divergence_bundle, tmp_path,
                                        monkeypatch):
    monkeypatch.delenv("REPRO_CHAOS_FUZZ", raising=False)
    record = load_bundle(divergence_bundle)
    record["generator_version"] = 999
    stale = tmp_path / "stale.json"
    stale.write_text(json.dumps(record), encoding="utf-8")
    result = replay_bundle(stale)
    assert not result.reproduced


def test_replay_refuses_source_mismatch(divergence_bundle, tmp_path,
                                        monkeypatch):
    monkeypatch.delenv("REPRO_CHAOS_FUZZ", raising=False)
    record = load_bundle(divergence_bundle)
    record["source_sha256"] = "0" * 64
    forged = tmp_path / "forged.json"
    forged.write_text(json.dumps(record), encoding="utf-8")
    result = replay_bundle(forged)
    assert not result.reproduced


def test_minimized_bundle_replays_recorded_source(divergence_bundle,
                                                  tmp_path, monkeypatch):
    """A hand-shrunk record with ``minimized_from`` must replay the
    recorded source directly instead of regenerating from the seed."""
    monkeypatch.delenv("REPRO_CHAOS_FUZZ", raising=False)
    record = load_bundle(divergence_bundle)
    record["minimized_from"] = record.get("bundle_id", "orig")
    # keep the recorded source but break the seed linkage: if replay
    # regenerated instead of using the source, the sha check would fail
    record["generator_seed"] = 12345
    minimized = tmp_path / "minimized.json"
    minimized.write_text(json.dumps(record), encoding="utf-8")
    result = replay_bundle(minimized)
    assert result.reproduced


def test_clean_program_does_not_reproduce(tmp_path, monkeypatch):
    """A bundle whose program no longer diverges replays NOT REPRODUCED."""
    monkeypatch.setenv("REPRO_CHAOS_FUZZ", "flip:typed")
    program = generate_program(fuzz_case_seed(1, 0))
    verdict = run_fuzz_program(program, targets=("arm64",))
    record = load_bundle(verdict.bundle_paths[0])
    # drop the recorded chaos env: without the tamper the ladder agrees
    record["env"] = {}
    clean = tmp_path / "clean.json"
    clean.write_text(json.dumps(record), encoding="utf-8")
    monkeypatch.delenv("REPRO_CHAOS_FUZZ", raising=False)
    result = replay_bundle(clean)
    assert not result.reproduced


@pytest.mark.slow
def test_minimize_shrinks_program(divergence_bundle, monkeypatch):
    monkeypatch.delenv("REPRO_CHAOS_FUZZ", raising=False)
    original = load_bundle(divergence_bundle)
    result = replay_bundle(divergence_bundle, minimize=True)
    assert result.reproduced
    assert result.minimized is not None
    shrunk = load_bundle(result.minimized)
    assert shrunk["kind"] == "fuzz-divergence"
    assert shrunk["minimized_from"] == original["bundle_id"]
    assert shrunk["source_sha256"] == source_digest(str(shrunk["source"]))
    assert len(str(shrunk["source"]).splitlines()) <= len(
        str(original["source"]).splitlines()
    )
    # and the minimized bundle itself replays
    followup = replay_bundle(result.minimized)
    assert followup.reproduced
