"""Replayable forensics: bundles reproduce deterministically and minimize."""

import pytest

from repro.engine import EngineConfig
from repro.supervise.bundles import list_bundles, load_bundle
from repro.supervise.replay import replay_bundle
from repro.suite.runner import BenchmarkRunner
from repro.suite.spec import get_benchmark


def seed_divergence(tmp_path, monkeypatch, name="FIB", interval=7):
    """Provoke one fused-tier divergence via the chaos hook; return its
    bundle path."""
    monkeypatch.setenv("REPRO_BUNDLE_DIR", str(tmp_path))
    monkeypatch.setenv("REPRO_CHAOS_AUDIT", "corrupt")
    runner = BenchmarkRunner(get_benchmark(name), EngineConfig(audit=interval))
    runner.run(iterations=14)
    bundles = [
        p for p in list_bundles(tmp_path) if p.name.startswith("divergence-")
    ]
    assert len(bundles) == 1, "chaos hook failed to seed a divergence"
    return bundles[0]


class TestDivergenceReplay:
    def test_replay_reproduces(self, tmp_path, monkeypatch):
        bundle = seed_divergence(tmp_path, monkeypatch)
        # Replay must rebuild the recorded environment itself, no matter
        # what this process has exported since the capture.
        monkeypatch.delenv("REPRO_CHAOS_AUDIT", raising=False)
        result = replay_bundle(bundle)
        assert result.reproduced, result.detail

    def test_replay_with_minimize_shrinks_the_reproducer(
        self, tmp_path, monkeypatch
    ):
        bundle = seed_divergence(tmp_path, monkeypatch)
        monkeypatch.delenv("REPRO_CHAOS_AUDIT", raising=False)
        original = load_bundle(bundle)
        result = replay_bundle(bundle, minimize=True)
        assert result.reproduced
        assert result.minimized is not None
        minimized = load_bundle(result.minimized)
        assert minimized["iterations"] <= original["iterations"]
        assert minimized["minimized_from"] == original["bundle_id"]
        # The minimized bundle itself replays.
        assert replay_bundle(result.minimized).reproduced

    def test_unrelated_bundle_kind_is_rejected_gracefully(self, tmp_path):
        from repro.supervise.bundles import capture_bundle

        path = capture_bundle("mystery", {"benchmark": "FIB"}, root=tmp_path)
        result = replay_bundle(path)
        assert not result.reproduced
        assert "mystery" in result.detail


class TestEngineExceptionReplay:
    def test_injected_engine_exception_replays(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_BUNDLE_DIR", str(tmp_path))
        from repro.resilience.oracle import differential_run
        from repro.resilience.faults import FaultPlan

        # An empty benchmark name inside the plan is fine; what matters is
        # a real failing run.  Use a fault plan aggressive enough to be
        # recorded, then synthesize failure via a bogus benchmark instead:
        # simpler and fully deterministic — BenchmarkRunner raises KeyError.
        from repro.suite.runner import BenchmarkRunner
        from repro.suite.spec import get_benchmark

        class Bomb:
            def before_iteration(self, engine, iteration):
                if iteration == 2:
                    raise RuntimeError("deterministic boom")

        runner = BenchmarkRunner(get_benchmark("FIB"), EngineConfig())
        with pytest.raises(RuntimeError):
            runner.run(iterations=5, injector=Bomb())
        bundles = [
            p for p in list_bundles(tmp_path)
            if p.name.startswith("engine-exception-")
        ]
        assert len(bundles) == 1
        # An injector-driven failure cannot be replayed from the fault plan
        # alone (the Bomb object is not serializable state), so the replay
        # must come back clean — NOT reproduced — rather than crash.
        result = replay_bundle(bundles[0])
        assert not result.reproduced


class TestOracleFailureCapture:
    def test_oracle_mismatch_captures_bundle(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_BUNDLE_DIR", str(tmp_path))
        from repro.supervise.bundles import capture_bundle  # noqa: F401
        from repro.resilience import oracle

        oracle._capture_oracle_bundle(
            "FIB", "arm64",
            __import__("repro.resilience.faults", fromlist=["plan_for"])
            .plan_for("FIB", seed=3, iterations=10),
            10,
            mismatches=["iteration 4: optimized 5 != interpreter 8"],
        )
        bundles = [
            p for p in list_bundles(tmp_path)
            if p.name.startswith("oracle-failure-")
        ]
        assert len(bundles) == 1
        record = load_bundle(bundles[0])
        assert record["fault_plan"]["benchmark"] == "FIB"
        assert record["mismatches"]
