"""Online divergence sentinel: audit schedule, shadow identity, demotion."""

import pytest

from repro.engine import Engine, EngineConfig
from repro.supervise.sentinel import (
    DEFAULT_INTERVAL,
    DivergenceSentinel,
    resolve_audit_interval,
)
from repro.suite.runner import BenchmarkRunner
from repro.suite.spec import get_benchmark

SMOKE = ("FIB", "SPECTRAL", "JSONLIKE")


class TestResolveAuditInterval:
    def test_default_is_off(self, monkeypatch):
        monkeypatch.delenv("REPRO_AUDIT", raising=False)
        assert resolve_audit_interval(None) is None

    @pytest.mark.parametrize("value", ("", "0", "false", "off", "no"))
    def test_env_off_values(self, monkeypatch, value):
        monkeypatch.setenv("REPRO_AUDIT", value)
        assert resolve_audit_interval(None) is None

    @pytest.mark.parametrize("value", ("1", "true", "on", "yes"))
    def test_env_on_values_mean_default_interval(self, monkeypatch, value):
        monkeypatch.setenv("REPRO_AUDIT", value)
        assert resolve_audit_interval(None) == DEFAULT_INTERVAL

    def test_env_numeric_interval(self, monkeypatch):
        monkeypatch.setenv("REPRO_AUDIT", "123")
        assert resolve_audit_interval(None) == 123

    def test_config_beats_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_AUDIT", "123")
        assert resolve_audit_interval(False) is None
        assert resolve_audit_interval(7) == 7

    def test_true_means_default(self):
        assert resolve_audit_interval(True) == DEFAULT_INTERVAL

    def test_tiny_and_negative_clamp(self):
        assert resolve_audit_interval(1) == 2
        assert resolve_audit_interval(-5) is None
        assert resolve_audit_interval(0) is None


class TestAuditSchedule:
    def test_intervals_are_deterministic_for_a_seed(self):
        a = DivergenceSentinel(interval=50, seed=1234)
        b = DivergenceSentinel(interval=50, seed=1234)
        assert [a.next_interval() for _ in range(100)] == [
            b.next_interval() for _ in range(100)
        ]

    def test_intervals_cover_the_declared_range(self):
        sentinel = DivergenceSentinel(interval=10, seed=99)
        drawn = {sentinel.next_interval() for _ in range(2000)}
        assert min(drawn) >= 1
        assert max(drawn) <= 19  # 2*interval - 1
        mean = sum(drawn) / len(drawn)
        assert 5 < mean < 15  # centred on the configured interval

    def test_seed_defaults_to_engine_fingerprint(self):
        # Two default-seeded sentinels on the same engine build draw the
        # same schedule: that is what makes replay deterministic.
        assert [DivergenceSentinel(interval=9).next_interval() for _ in range(8)] \
            == [DivergenceSentinel(interval=9).next_interval() for _ in range(8)]


def audited_run(name, interval, iterations=14, chaos=None, monkeypatch=None):
    if chaos is not None:
        monkeypatch.setenv("REPRO_CHAOS_AUDIT", chaos)
    runner = BenchmarkRunner(
        get_benchmark(name), EngineConfig(audit=interval)
    )
    result = runner.run(iterations=iterations)
    engine = runner.last_engine
    return result, engine, engine.executor._audit


class TestCleanAudits:
    @pytest.mark.parametrize("name", SMOKE)
    def test_clean_run_audits_without_divergence(self, name):
        result, _engine, sentinel = audited_run(name, interval=5)
        assert sentinel is not None
        assert sentinel.audits > 0, "audit schedule never fired"
        assert sentinel.divergences == 0
        assert sentinel.demotions == []

    @pytest.mark.parametrize("name", SMOKE)
    def test_audited_run_is_bitwise_identical(self, name):
        plain = BenchmarkRunner(get_benchmark(name), EngineConfig()).run(
            iterations=14
        )
        audited, _engine, _sentinel = audited_run(name, interval=5)
        assert plain.cycles == audited.cycles  # bitwise: floats compare exact
        assert plain.result == audited.result
        assert plain.hw_stats == audited.hw_stats
        assert plain.deopts == audited.deopts

    def test_audit_off_leaves_executor_unarmed(self):
        engine = Engine(EngineConfig())
        assert engine.executor._audit is None

    def test_env_arming(self, monkeypatch):
        monkeypatch.setenv("REPRO_AUDIT", "31")
        engine = Engine(EngineConfig())
        if engine.executor.blockjit:
            assert engine.executor._audit is not None
            assert engine.executor._audit.interval == 31

    def test_audit_without_blockjit_is_a_noop(self):
        engine = Engine(EngineConfig(audit=5, blockjit=False))
        assert engine.executor._audit is None


class TestSeededDivergence:
    def test_corruption_demotes_and_keeps_running(self, monkeypatch):
        result, engine, sentinel = audited_run(
            "FIB", interval=7, chaos="corrupt", monkeypatch=monkeypatch
        )
        assert sentinel.divergences == 1
        assert len(sentinel.demotions) == 1
        # The run survived demotion and still computed the right answer.
        plain = BenchmarkRunner(get_benchmark("FIB"), EngineConfig()).run(
            iterations=14
        )
        assert result.result == plain.result

    def test_demotion_is_scoped_to_one_code_object(self, monkeypatch):
        _result, engine, sentinel = audited_run(
            "SPECTRAL", interval=7, chaos="corrupt", monkeypatch=monkeypatch
        )
        assert len(sentinel.demotions) == 1
        demoted = [
            shared.code
            for shared in engine.functions
            if shared.code is not None and shared.code._supervise_demoted
        ]
        healthy = [
            shared.code
            for shared in engine.functions
            if shared.code is not None and not shared.code._supervise_demoted
        ]
        assert len(demoted) == 1
        # Other compiled code objects keep their fast tier.
        for code in healthy:
            assert code._blocks is None or not code._blocks.demoted

    def test_divergence_captures_a_bundle(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_BUNDLE_DIR", str(tmp_path))
        from repro.supervise.bundles import list_bundles, load_bundle

        audited_run("FIB", interval=7, chaos="corrupt", monkeypatch=monkeypatch)
        bundles = [
            p for p in list_bundles(tmp_path) if p.name.startswith("divergence-")
        ]
        assert len(bundles) == 1
        record = load_bundle(bundles[0])
        assert record["kind"] == "divergence"
        assert record["benchmark"] == "FIB"
        assert record["mismatch"]  # names the diverging field(s)
        assert record["audit_interval"] == 7

    def test_chaos_env_without_audit_does_nothing(self, monkeypatch):
        monkeypatch.setenv("REPRO_CHAOS_AUDIT", "corrupt")
        plain = BenchmarkRunner(get_benchmark("FIB"), EngineConfig()).run(
            iterations=14
        )
        audited, _engine, sentinel = audited_run("FIB", interval=None)
        assert sentinel is None
        assert plain.cycles == audited.cycles


def traced_audited_run(name, interval, monkeypatch, chaos_trace=None,
                       iterations=14):
    """An audited run with the trace tier armed at low thresholds, so
    auditable (call-free) traces form and the sentinel probes them."""
    monkeypatch.setenv("REPRO_TRACEJIT_BUDGET", "400")
    monkeypatch.setenv("REPRO_TRACEJIT_HOT", "8")
    monkeypatch.setenv("REPRO_TRACEJIT_ENTRY", "8")
    if chaos_trace is not None:
        monkeypatch.setenv("REPRO_CHAOS_TRACE", chaos_trace)
    runner = BenchmarkRunner(
        get_benchmark(name), EngineConfig(audit=interval, tracejit=True)
    )
    result = runner.run(iterations=iterations)
    engine = runner.last_engine
    return result, engine, engine.executor._audit


class TestTraceAudits:
    @pytest.mark.parametrize("name", ("MANDEL", "SPECTRAL"))
    def test_clean_run_audits_traces_without_divergence(self, name,
                                                       monkeypatch):
        _result, engine, sentinel = traced_audited_run(
            name, interval=7, monkeypatch=monkeypatch
        )
        assert sentinel is not None
        assert sentinel.trace_audits > 0, (
            "no whole-trace audit ran; either no auditable trace formed "
            "or the trace-anchor audit path is dead"
        )
        assert sentinel.divergences == 0
        assert sentinel.demotions == []

    def test_trace_corruption_demotes_and_keeps_running(self, monkeypatch):
        result, engine, sentinel = traced_audited_run(
            "MANDEL", interval=7, monkeypatch=monkeypatch,
            chaos_trace="corrupt",
        )
        assert sentinel.divergences == 1
        assert len(sentinel.demotions) == 1
        # Demotion reroutes the whole code object: traces are disabled
        # along with the fused blocks they chain over.
        demoted = [
            shared.code
            for shared in engine.functions
            if shared.code is not None and shared.code._supervise_demoted
        ]
        assert len(demoted) == 1
        tt = demoted[0]._traces
        assert tt is not None and tt.disabled
        assert all(anchor is None for anchor in tt.anchors)
        # The run survived and still computed the right answer.
        plain = BenchmarkRunner(get_benchmark("MANDEL"), EngineConfig()).run(
            iterations=14
        )
        assert result.result == plain.result

    def test_trace_divergence_bundle_records_the_chain(self, monkeypatch,
                                                       tmp_path):
        monkeypatch.setenv("REPRO_BUNDLE_DIR", str(tmp_path))
        from repro.supervise.bundles import list_bundles, load_bundle

        traced_audited_run("MANDEL", interval=7, monkeypatch=monkeypatch,
                           chaos_trace="corrupt")
        bundles = [
            p for p in list_bundles(tmp_path)
            if p.name.startswith("divergence-")
        ]
        assert len(bundles) == 1
        record = load_bundle(bundles[0])
        assert record["kind"] == "divergence"
        assert record["mismatch"]
        trace = record["trace"]
        assert trace["head"] == record["block"]
        assert trace["head"] in trace["chain"]
        assert isinstance(trace["cyclic"], bool)
        # Replays restore the trace knobs from the recorded env.
        assert record["env"]["REPRO_CHAOS_TRACE"] == "corrupt"
        assert record["env"]["REPRO_TRACEJIT_HOT"] == "8"
