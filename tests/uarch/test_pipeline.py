"""Cache and pipeline-model tests."""

import pytest

from repro.engine import Engine, EngineConfig
from repro.isa.base import CC, MachineInstr, MOp
from repro.uarch.cache import Cache, CacheHierarchy
from repro.uarch.pipeline.common import decode
from repro.uarch.pipeline.configs import EXYNOS_BIG, GEM5_CPUS, INORDER_LITTLE, O3_KPG
from repro.uarch.pipeline.inorder import simulate, simulate_inorder
from repro.uarch.pipeline.o3 import simulate_o3


def I(op, **kw):  # noqa: E743
    return MachineInstr(op, **kw)


class TestCache:
    def test_miss_then_hit(self):
        cache = Cache(size_bytes=1024, ways=2)
        assert not cache.access(0)
        assert cache.access(0)
        assert cache.access(63)  # same line
        assert not cache.access(64)  # next line

    def test_lru_eviction(self):
        cache = Cache(size_bytes=2 * 64, ways=2)  # one set, two ways
        cache.access(0)
        cache.access(64 * 1)
        cache.access(0)  # refresh line 0
        cache.access(64 * 2)  # evicts line 1
        assert cache.access(0)
        assert not cache.access(64 * 1)

    def test_hierarchy_latencies_ordered(self):
        hierarchy = CacheHierarchy()
        cold = hierarchy.load_latency(0)
        warm = hierarchy.load_latency(0)
        assert cold == hierarchy.memory_latency
        assert warm == hierarchy.l1_latency
        assert hierarchy.stats()["l1_misses"] == 1


class TestDecode:
    def test_flags_dependency(self):
        cmp = decode(I(MOp.CMP, s1=1, s2=2))
        bcc = decode(I(MOp.BCC, cc=CC.EQ))
        assert set(cmp.writes) & set(bcc.reads)

    def test_float_registers_separate_space(self):
        fadd = decode(I(MOp.FADD, dst=1, s1=1, s2=2))
        add = decode(I(MOp.ADD, dst=1, s1=1, s2=2))
        assert set(fadd.writes).isdisjoint(set(add.writes))

    def test_load_classification(self):
        load = decode(I(MOp.LDR, dst=1, mem=(2, -1, 0, 0)))
        assert load.is_load and 2 in load.reads

    def test_store_has_no_register_writes(self):
        store = decode(I(MOp.STR, s1=1, mem=(2, -1, 0, 0)))
        assert store.is_store
        assert not any(w < 64 for w in store.writes)


def straightline_trace(n=2000):
    instrs = [
        I(MOp.MOVI, dst=1, imm=1),
        I(MOp.ADD, dst=2, s1=1, s2=1),
        I(MOp.ADD, dst=3, s1=1, s2=1),
        I(MOp.ADD, dst=4, s1=1, s2=1),
    ]
    return [(instrs[i % 4], False, -1) for i in range(n)]


def dependent_trace(n=2000):
    instr = I(MOp.ADD, dst=1, s1=1, s2=1)
    return [(instr, False, -1) for _ in range(n)]


class TestO3Model:
    def test_ilp_raises_ipc(self):
        independent = simulate_o3(straightline_trace(), O3_KPG)
        dependent = simulate_o3(dependent_trace(), O3_KPG)
        assert independent.ipc > dependent.ipc * 1.5

    def test_dependent_chain_is_one_per_cycle(self):
        stats = simulate_o3(dependent_trace(), O3_KPG)
        assert stats.ipc == pytest.approx(1.0, rel=0.1)

    def test_width_caps_ipc(self):
        stats = simulate_o3(straightline_trace(), O3_KPG)
        assert stats.ipc <= O3_KPG.width + 0.01

    def test_wider_core_is_faster(self):
        narrow = simulate_o3(straightline_trace(), O3_KPG)
        wide = simulate_o3(straightline_trace(), EXYNOS_BIG)
        assert wide.cycles < narrow.cycles

    def test_mispredicted_branches_cost_cycles(self):
        import random

        rng = random.Random(0)
        branch = I(MOp.BCC, cc=CC.EQ)
        predictable = [(branch, False, -1) for _ in range(2000)]
        noisy = [(branch, rng.random() < 0.5, -1) for _ in range(2000)]
        fast = simulate_o3(predictable, O3_KPG)
        slow = simulate_o3(noisy, O3_KPG)
        assert slow.cycles > fast.cycles * 2
        assert slow.mispredictions > fast.mispredictions

    def test_cold_loads_stall(self):
        load = I(MOp.LDR, dst=1, mem=(2, -1, 0, 0))
        use = I(MOp.ADD, dst=3, s1=1, s2=1)
        cold = [(load, False, i * 64) for i in range(500)]
        trace = []
        for entry in cold:
            trace.append(entry)
            trace.append((use, False, -1))
        cold_stats = simulate_o3(trace, O3_KPG)
        warm_trace = [(load, False, 0), (use, False, -1)] * 500
        warm_stats = simulate_o3(warm_trace, O3_KPG)
        assert cold_stats.cycles > warm_stats.cycles


class TestInorderModel:
    def test_slower_than_o3_on_ilp_code(self):
        inorder = simulate_inorder(straightline_trace(), INORDER_LITTLE)
        o3 = simulate_o3(straightline_trace(), O3_KPG)
        assert inorder.cycles > o3.cycles

    def test_dispatch_width_respected(self):
        stats = simulate_inorder(straightline_trace(), INORDER_LITTLE)
        assert stats.ipc <= INORDER_LITTLE.width + 0.01

    def test_simulate_dispatches_by_kind(self):
        trace = straightline_trace(100)
        assert simulate(trace, INORDER_LITTLE).instructions == 100
        assert simulate(trace, O3_KPG).instructions == 100


class TestEndToEndTraces:
    SOURCE = """
    var data = [1,2,3,4,5,6,7,8];
    function f() {
      var s = 0;
      for (var i = 0; i < 8; i++) { s = s + data[i]; }
      return s;
    }
    """

    def trace_for(self, target):
        engine = Engine(EngineConfig(target=target))
        engine.load(self.SOURCE)
        for _ in range(25):
            engine.call_global("f")
        engine.executor.trace = []
        for _ in range(3):
            engine.call_global("f")
        trace = engine.executor.trace
        engine.executor.trace = None
        return trace

    def test_smi_extension_reduces_instructions_and_cycles(self):
        base = self.trace_for("arm64")
        extended = self.trace_for("arm64+smi")
        assert len(extended) < len(base)
        for cpu in GEM5_CPUS:
            base_stats = simulate(base, cpu)
            ext_stats = simulate(extended, cpu)
            assert ext_stats.cycles <= base_stats.cycles * 1.02, cpu.name

    def test_serial_untag_ablation_costs_cycles(self):
        import dataclasses

        extended = self.trace_for("arm64+smi")
        parallel = simulate(extended, O3_KPG)
        serial = simulate(
            extended, dataclasses.replace(O3_KPG, smi_load_extra=1)
        )
        assert serial.cycles >= parallel.cycles
