"""Simulated-heap tests: allocation, object protocol, arrays, GC."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.values.heap import (
    JS_ARRAY_LENGTH_OFFSET,
    MAP_OFFSET,
    Heap,
    HeapError,
)
from repro.values.maps import ElementsKind, InstanceType
from repro.values.tagged import is_heap_pointer, is_smi, pointer_untag


@pytest.fixture
def heap():
    return Heap()


class TestBoxing:
    def test_small_int_becomes_smi(self, heap):
        assert is_smi(heap.to_word(1000))

    def test_large_int_becomes_heap_number(self, heap):
        word = heap.to_word(2**40)
        assert is_heap_pointer(word)
        assert heap.to_python(word) == float(2**40)

    def test_float_roundtrip(self, heap):
        assert heap.to_python(heap.to_word(3.5)) == 3.5

    def test_integral_float_becomes_smi(self, heap):
        assert is_smi(heap.number_from_float(7.0))

    def test_negative_zero_is_boxed(self, heap):
        word = heap.number_from_float(-0.0)
        assert is_heap_pointer(word)
        import math

        assert math.copysign(1.0, heap.number_to_float(word)) == -1.0

    def test_string_roundtrip(self, heap):
        assert heap.to_python(heap.to_word("hello")) == "hello"

    def test_bool_and_none(self, heap):
        assert heap.to_word(True) == heap.true_value
        assert heap.to_word(False) == heap.false_value
        assert heap.to_python(heap.undefined) is None

    def test_interned_strings_share_words(self, heap):
        a = heap.alloc_string("key", intern=True)
        b = heap.alloc_string("key", intern=True)
        assert a == b
        assert heap.alloc_string("key") != a  # non-interned is fresh

    @given(st.integers(min_value=-(2**30), max_value=2**30 - 1))
    @settings(max_examples=50)
    def test_int_roundtrip_property(self, value):
        heap = Heap()
        assert heap.to_python(heap.to_word(value)) == value

    @given(st.floats(allow_nan=False, allow_infinity=False))
    @settings(max_examples=50)
    def test_float_roundtrip_property(self, value):
        heap = Heap()
        assert heap.to_python(heap.to_word(value)) == pytest.approx(value, nan_ok=True)


class TestObjects:
    def test_property_set_get(self, heap):
        obj = heap.alloc_object()
        heap.object_set_property(obj, "x", heap.to_word(5))
        assert heap.to_python(heap.object_get_property(obj, "x")) == 5

    def test_missing_property_is_none(self, heap):
        obj = heap.alloc_object()
        assert heap.object_get_property(obj, "nope") is None

    def test_adding_property_transitions_map(self, heap):
        obj = heap.alloc_object()
        before = heap.map_of(pointer_untag(obj))
        heap.object_set_property(obj, "x", heap.to_word(1))
        after = heap.map_of(pointer_untag(obj))
        assert before is not after
        assert after.lookup("x") == 1

    def test_same_shape_shares_map(self, heap):
        a, b = heap.alloc_object(), heap.alloc_object()
        for obj in (a, b):
            heap.object_set_property(obj, "x", heap.to_word(1))
            heap.object_set_property(obj, "y", heap.to_word(2))
        assert heap.map_of(pointer_untag(a)) is heap.map_of(pointer_untag(b))

    def test_overwriting_keeps_map(self, heap):
        obj = heap.alloc_object()
        heap.object_set_property(obj, "x", heap.to_word(1))
        mid = heap.map_of(pointer_untag(obj))
        heap.object_set_property(obj, "x", heap.to_word(9))
        assert heap.map_of(pointer_untag(obj)) is mid

    def test_capacity_limit_enforced(self, heap):
        obj = heap.alloc_object(capacity=2)
        heap.object_set_property(obj, "a", heap.to_word(1))
        heap.object_set_property(obj, "b", heap.to_word(2))
        with pytest.raises(HeapError):
            heap.object_set_property(obj, "c", heap.to_word(3))

    def test_transition_destabilizes_source_map(self, heap):
        obj = heap.alloc_object()
        heap.object_set_property(obj, "x", heap.to_word(1))
        source = heap.map_of(pointer_untag(obj))
        fired = []
        source.add_dependent(fired.append)
        other = heap.alloc_object()
        heap.object_set_property(other, "x", heap.to_word(1))
        heap.object_set_property(other, "y", heap.to_word(2))
        assert fired  # lazy-deopt hook fired


class TestArrays:
    def test_literal_kinds(self, heap):
        smi = heap.to_word([1, 2, 3])
        dbl = heap.to_word([1.5, 2.5])
        mixed = heap.to_word([1, "s"])
        assert heap.map_of(pointer_untag(smi)).elements_kind == ElementsKind.PACKED_SMI
        assert heap.map_of(pointer_untag(dbl)).elements_kind == ElementsKind.PACKED_DOUBLE
        assert heap.map_of(pointer_untag(mixed)).elements_kind == ElementsKind.PACKED

    def test_store_double_transitions_smi_array(self, heap):
        arr = heap.to_word([1, 2, 3])
        heap.array_set(arr, 0, heap.to_word(1.5))
        assert (
            heap.map_of(pointer_untag(arr)).elements_kind
            == ElementsKind.PACKED_DOUBLE
        )
        assert heap.to_python(arr) == [1.5, 2.0, 3.0]

    def test_store_string_transitions_to_packed(self, heap):
        arr = heap.to_word([1.5])
        heap.array_set(arr, 0, heap.to_word("s"))
        assert heap.map_of(pointer_untag(arr)).elements_kind == ElementsKind.PACKED
        assert heap.to_python(arr) == ["s"]

    def test_out_of_bounds_read_is_undefined(self, heap):
        arr = heap.to_word([1, 2])
        assert heap.to_python(heap.array_get(arr, 5)) is None
        assert heap.to_python(heap.array_get(arr, -1)) is None

    def test_out_of_bounds_store_raises(self, heap):
        arr = heap.to_word([1, 2])
        with pytest.raises(HeapError):
            heap.array_set(arr, 7, heap.to_word(1))

    def test_push_grows_and_keeps_address(self, heap):
        arr = heap.to_word([])
        address_before = pointer_untag(arr)
        for i in range(20):
            assert heap.array_push(arr, heap.to_word(i)) == i + 1
        assert pointer_untag(arr) == address_before
        assert heap.to_python(arr) == list(range(20))

    def test_push_transitions_kind(self, heap):
        arr = heap.to_word([1])
        heap.array_push(arr, heap.to_word(2.5))
        assert (
            heap.map_of(pointer_untag(arr)).elements_kind
            == ElementsKind.PACKED_DOUBLE
        )
        assert heap.to_python(arr) == [1.0, 2.5]

    def test_transition_after_push_ignores_backing_slack(self, heap):
        # Regression (found by the fuzz corpus under chaos): a push that
        # grows the backing store leaves filler in the slack slots; a
        # later SMI->double transition must convert only the live
        # elements, not untag the filler — and must keep the capacity.
        arr = heap.to_word([1, 2, 3])
        heap.array_push(arr, heap.to_word(4))  # grows 3 -> capacity 6
        heap.array_set(arr, 0, heap.to_word(0.5))  # SMI -> double
        assert heap.to_python(arr) == [0.5, 2.0, 3.0, 4.0]
        assert heap.array_push(arr, heap.to_word(5)) == 5  # slack intact

    def test_double_to_tagged_after_push_ignores_slack(self, heap):
        arr = heap.to_word([1.5])
        heap.array_push(arr, heap.to_word(2.5))  # grows 1 -> capacity 4
        heap.array_set(arr, 0, heap.to_word("s"))  # double -> tagged
        assert heap.map_of(pointer_untag(arr)).elements_kind == ElementsKind.PACKED
        assert heap.to_python(arr) == ["s", 2.5]

    @given(st.lists(st.integers(min_value=-1000, max_value=1000), max_size=30))
    @settings(max_examples=40)
    def test_array_roundtrip_property(self, values):
        heap = Heap()
        assert heap.to_python(heap.to_word(values)) == values


class TestGC:
    def test_unreachable_is_freed_and_space_reused(self, heap):
        junk = [heap.alloc_number(1.5) for _ in range(50)]
        live = heap.to_word([1, 2, 3])
        words_before = len(heap.words)
        freed = heap.collect([live])
        assert freed >= 100
        # New allocations reuse the free list: heap does not grow.
        for _ in range(50):
            heap.alloc_number(2.5)
        assert len(heap.words) == words_before

    def test_live_graph_survives(self, heap):
        obj = heap.alloc_object()
        inner = heap.to_word([1, 2.5, "deep"])
        heap.object_set_property(obj, "inner", inner)
        heap.collect([obj])
        assert heap.to_python(obj) == {"inner": [1.0, 2.5, "deep"]}

    def test_oddballs_survive_without_roots(self, heap):
        heap.collect([])
        assert heap.to_python(heap.undefined) is None
        assert heap.to_python(heap.true_value) is True

    def test_interned_strings_survive(self, heap):
        word = heap.alloc_string("kept", intern=True)
        heap.collect([])
        assert heap.to_python(word) == "kept"

    def test_stats_updated(self, heap):
        heap.alloc_number(1.0)
        heap.collect([])
        assert heap.gc_stats.collections == 1
        assert heap.gc_stats.words_freed >= 2


class TestReserveRegion:
    def test_region_is_outside_allocator(self, heap):
        start = heap.reserve_region(64)
        heap.words[start] = 12345
        heap.collect([])
        assert heap.words[start] == 12345  # never swept
        fresh = heap.alloc_number(1.0)
        assert pointer_untag(fresh) >= start + 64  # never reused by alloc
