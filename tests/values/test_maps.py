"""Hidden-class (map) tests."""

import pytest

from repro.values.maps import ElementsKind, InstanceType, Map, MapRegistry


@pytest.fixture
def registry():
    return MapRegistry()


class TestTransitions:
    def test_add_property_assigns_sequential_offsets(self, registry):
        root = registry.create(InstanceType.JS_OBJECT)
        with_x = registry.transition_add_property(root, "x")
        with_xy = registry.transition_add_property(with_x, "y")
        assert with_x.lookup("x") == 1
        assert with_xy.lookup("x") == 1
        assert with_xy.lookup("y") == 2
        assert root.lookup("x") is None

    def test_transitions_are_shared(self, registry):
        """Objects built the same way share hidden classes — the property
        that makes monomorphic map checks effective."""
        root = registry.create(InstanceType.JS_OBJECT)
        a = registry.transition_add_property(root, "x")
        b = registry.transition_add_property(root, "x")
        assert a is b

    def test_different_orders_different_maps(self, registry):
        root = registry.create(InstanceType.JS_OBJECT)
        xy = registry.transition_add_property(
            registry.transition_add_property(root, "x"), "y"
        )
        yx = registry.transition_add_property(
            registry.transition_add_property(root, "y"), "x"
        )
        assert xy is not yx
        assert xy.lookup("x") == 1 and yx.lookup("x") == 2

    def test_parent_link(self, registry):
        root = registry.create(InstanceType.JS_OBJECT)
        child = registry.transition_add_property(root, "p")
        assert child.parent is root


class TestElementsKinds:
    def test_lattice_is_one_way(self):
        assert ElementsKind.PACKED_SMI.generalizes_to(ElementsKind.PACKED_DOUBLE)
        assert ElementsKind.PACKED_DOUBLE.generalizes_to(ElementsKind.PACKED)
        assert not ElementsKind.PACKED.generalizes_to(ElementsKind.PACKED_SMI)

    def test_illegal_transition_rejected(self, registry):
        packed = registry.create(InstanceType.JS_ARRAY, ElementsKind.PACKED)
        with pytest.raises(ValueError):
            registry.transition_elements_kind(packed, ElementsKind.PACKED_SMI)

    def test_same_kind_is_identity(self, registry):
        smi = registry.create(InstanceType.JS_ARRAY, ElementsKind.PACKED_SMI)
        assert registry.transition_elements_kind(smi, ElementsKind.PACKED_SMI) is smi

    def test_kind_transition_shared(self, registry):
        smi = registry.create(InstanceType.JS_ARRAY, ElementsKind.PACKED_SMI)
        a = registry.transition_elements_kind(smi, ElementsKind.PACKED_DOUBLE)
        b = registry.transition_elements_kind(smi, ElementsKind.PACKED_DOUBLE)
        assert a is b
        assert a.elements_kind == ElementsKind.PACKED_DOUBLE


class TestStability:
    def test_destabilize_notifies_dependents_once(self, registry):
        root = registry.create(InstanceType.JS_OBJECT)
        fired = []
        root.add_dependent(fired.append)
        root.destabilize()
        root.destabilize()
        assert len(fired) == 1
        assert not root.is_stable

    def test_dependents_cleared_after_firing(self, registry):
        root = registry.create(InstanceType.JS_OBJECT)
        fired = []
        root.add_dependent(fired.append)
        root.destabilize()
        root.add_dependent(fired.append)  # registered after; never fires again
        root.destabilize()
        assert len(fired) == 1


class TestRegistry:
    def test_address_lookup(self, registry):
        a_map = registry.create(InstanceType.HEAP_NUMBER)
        registry.register_address(a_map, 88)
        assert registry.by_address(88) is a_map
        assert a_map.address == 88

    def test_len_counts_maps(self, registry):
        registry.create(InstanceType.JS_OBJECT)
        registry.create(InstanceType.JS_ARRAY)
        assert len(registry) == 2
