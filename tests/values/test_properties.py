"""Property-based invariants on the core data structures."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.values.heap import Heap
from repro.values.maps import ElementsKind
from repro.values.tagged import is_heap_pointer, is_smi, pointer_untag


@st.composite
def js_value(draw, depth=0):
    base = st.one_of(
        st.integers(min_value=-(2**30), max_value=2**30 - 1),
        st.floats(allow_nan=False, allow_infinity=False, width=32),
        st.text(max_size=8),
        st.booleans(),
        st.none(),
    )
    if depth >= 2:
        return draw(base)
    return draw(
        st.one_of(
            base,
            st.lists(js_value(depth=depth + 1), max_size=4),
            st.dictionaries(
                st.text(alphabet="abcxyz", min_size=1, max_size=4),
                js_value(depth=depth + 1),
                max_size=4,
            ),
        )
    )


def normalize(value):
    """What JS storage does to a Python value (ints/floats unify)."""
    if isinstance(value, bool) or value is None or isinstance(value, str):
        return value
    if isinstance(value, (int, float)):
        return float(value)
    if isinstance(value, list):
        return [normalize(v) for v in value]
    if isinstance(value, dict):
        return {k: normalize(v) for k, v in value.items()}
    return value


class TestBoxingInvariants:
    @given(js_value())
    @settings(max_examples=60, deadline=None)
    def test_roundtrip(self, value):
        heap = Heap()
        assert normalize(heap.to_python(heap.to_word(value))) == normalize(value)

    @given(js_value())
    @settings(max_examples=60, deadline=None)
    def test_every_word_is_tagged(self, value):
        heap = Heap()
        word = heap.to_word(value)
        assert is_smi(word) != is_heap_pointer(word)

    @given(st.lists(js_value(), max_size=6))
    @settings(max_examples=40, deadline=None)
    def test_gc_preserves_rooted_values(self, values):
        heap = Heap()
        words = [heap.to_word(v) for v in values]
        junk = [heap.alloc_number(float(i)) for i in range(20)]
        del junk
        heap.collect(words)
        for word, value in zip(words, values):
            assert normalize(heap.to_python(word)) == normalize(value)


class TestArrayInvariants:
    @given(
        st.lists(st.integers(-(2**29), 2**29), min_size=1, max_size=12),
        st.data(),
    )
    @settings(max_examples=40, deadline=None)
    def test_element_kind_is_an_upper_bound(self, values, data):
        """After arbitrary stores, the array's elements kind is always
        general enough for every element it holds."""
        heap = Heap()
        word = heap.to_word(values)
        for _ in range(4):
            index = data.draw(st.integers(0, len(values) - 1))
            store = data.draw(
                st.one_of(
                    st.integers(-(2**29), 2**29),
                    st.floats(allow_nan=False, allow_infinity=False, width=16),
                    st.text(max_size=3),
                )
            )
            heap.array_set(word, index, heap.to_word(store))
            kind = heap.map_of(pointer_untag(word)).elements_kind
            contents = heap.to_python(word)
            if kind == ElementsKind.PACKED_SMI:
                assert all(isinstance(v, int) for v in contents)
            elif kind == ElementsKind.PACKED_DOUBLE:
                assert all(isinstance(v, (int, float)) for v in contents)

    @given(st.lists(st.integers(-100, 100), max_size=20))
    @settings(max_examples=40, deadline=None)
    def test_push_preserves_prefix(self, values):
        heap = Heap()
        word = heap.to_word([])
        for i, value in enumerate(values):
            heap.array_push(word, heap.to_word(value))
            assert heap.array_length(word) == i + 1
        assert heap.to_python(word) == values
