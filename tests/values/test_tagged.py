"""Tagged-word encoding tests."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.values.tagged import (
    DEFAULT_TAG_CONFIG,
    SMI_MAX,
    SMI_MIN,
    TagConfig,
    is_heap_pointer,
    is_smi,
    pointer_tag,
    pointer_untag,
    smi_tag,
    smi_untag,
)


class TestTagConfig:
    def test_default_is_31_bit(self):
        assert DEFAULT_TAG_CONFIG.smi_bits == 31
        assert SMI_MAX == 2**30 - 1
        assert SMI_MIN == -(2**30)

    def test_32_bit_config(self):
        config = TagConfig(smi_bits=32)
        assert config.smi_max == 2**31 - 1
        assert config.smi_min == -(2**31)

    def test_invalid_width_rejected(self):
        with pytest.raises(ValueError):
            TagConfig(smi_bits=16)

    def test_fits_smi_boundaries(self):
        config = TagConfig(31)
        assert config.fits_smi(config.smi_max)
        assert config.fits_smi(config.smi_min)
        assert not config.fits_smi(config.smi_max + 1)
        assert not config.fits_smi(config.smi_min - 1)


class TestSmiEncoding:
    def test_roundtrip_simple(self):
        assert smi_untag(smi_tag(42)) == 42
        assert smi_untag(smi_tag(-42)) == -42
        assert smi_untag(smi_tag(0)) == 0

    def test_lsb_is_clear(self):
        assert smi_tag(7) & 1 == 0
        assert is_smi(smi_tag(7))
        assert not is_heap_pointer(smi_tag(7))

    def test_overflow_raises(self):
        with pytest.raises(OverflowError):
            smi_tag(SMI_MAX + 1)
        with pytest.raises(OverflowError):
            smi_tag(SMI_MIN - 1)

    def test_untag_of_pointer_raises(self):
        with pytest.raises(ValueError):
            smi_untag(pointer_tag(10))

    @given(st.integers(min_value=SMI_MIN, max_value=SMI_MAX))
    def test_roundtrip_property(self, value):
        word = smi_tag(value)
        assert is_smi(word)
        assert smi_untag(word) == value

    @given(st.integers(min_value=SMI_MIN, max_value=SMI_MAX))
    def test_untag_is_arithmetic_shift(self, value):
        # The untagging right-shift is exactly the operation the paper's
        # jsldrsmi folds into the load.
        assert smi_tag(value) >> 1 == value


class TestPointerEncoding:
    def test_roundtrip(self):
        assert pointer_untag(pointer_tag(1234)) == 1234

    def test_lsb_is_set(self):
        assert pointer_tag(10) & 1 == 1
        assert is_heap_pointer(pointer_tag(10))
        assert not is_smi(pointer_tag(10))

    def test_negative_address_rejected(self):
        with pytest.raises(ValueError):
            pointer_tag(-1)

    def test_untag_of_smi_raises(self):
        with pytest.raises(ValueError):
            pointer_untag(smi_tag(8))

    @given(st.integers(min_value=0, max_value=2**28))
    def test_pointer_roundtrip_property(self, address):
        assert pointer_untag(pointer_tag(address)) == address

    @given(st.integers(min_value=0, max_value=2**28))
    def test_smi_and_pointer_spaces_disjoint(self, address):
        assert not is_smi(pointer_tag(address))
